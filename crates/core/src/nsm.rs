//! The normalized storage model **NSM** (§3.3), with its optional in-memory
//! index ("NSM+index").
//!
//! The complex object is unnested into four flat relations (Figure 3),
//! with foreign-key attributes added to preserve the object structure
//! (superfluous keys omitted exactly as in the paper):
//!
//! ```text
//! NSM-Station     [ Key | NoPlatform | NoSeeing | Name ]
//! NSM-Platform    [ RootKey | OwnKey | PlatformNr | NoLine | TicketCode | Information ]
//! NSM-Connection  [ RootKey | ParentKey | LineNr | KeyConnection | OidConnection | DepartureTimes ]
//! NSM-Sightseeing [ RootKey | SeeingNr | Description | Location | History | Remarks ]
//! ```
//!
//! Pure NSM has "no efficient addressing mechanism": every lookup is a
//! set-oriented relation scan, and object reassembly joins in main memory
//! (the paper's explicit best-case assumption). With the index enabled, a
//! memory-resident map `key → RIDs` lets NSM read a page "then and only then
//! if a tuple it stores is requested" (§4).

use crate::placement::{self, ObjectHeat, PlacementStats, ReorgReport};
use crate::traits::{
    apply_station_proj, avg, key_of_oid, per_object, ComplexObjectStore, ObjRef, RelationInfo,
    RootPatch,
};
use crate::{CoreError, ModelKind, Result, StoreConfig};
use starfish_nf2::station::Station;
use starfish_nf2::{
    decode, encode, AttrDef, AttrType, Key, Oid, Projection, RelSchema, Tuple, Value,
};
use starfish_pagestore::{
    BufferPool, BufferStats, HeapFile, IoSnapshot, LatchMode, PageCache, PageId, Rid,
    SharedPoolHandle, SimDisk,
};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, RwLock};

/// Flat schema of `NSM-Station`.
pub fn nsm_station_schema() -> RelSchema {
    RelSchema::new(
        "NSM-Station",
        vec![
            AttrDef::new("Key", AttrType::Int),
            AttrDef::new("NoPlatform", AttrType::Int),
            AttrDef::new("NoSeeing", AttrType::Int),
            AttrDef::new("Name", AttrType::Str),
        ],
    )
}

/// Flat schema of `NSM-Platform`.
pub fn nsm_platform_schema() -> RelSchema {
    RelSchema::new(
        "NSM-Platform",
        vec![
            AttrDef::new("RootKey", AttrType::Int),
            AttrDef::new("OwnKey", AttrType::Int),
            AttrDef::new("PlatformNr", AttrType::Int),
            AttrDef::new("NoLine", AttrType::Int),
            AttrDef::new("TicketCode", AttrType::Int),
            AttrDef::new("Information", AttrType::Str),
        ],
    )
}

/// Flat schema of `NSM-Connection`.
pub fn nsm_connection_schema() -> RelSchema {
    RelSchema::new(
        "NSM-Connection",
        vec![
            AttrDef::new("RootKey", AttrType::Int),
            AttrDef::new("ParentKey", AttrType::Int),
            AttrDef::new("LineNr", AttrType::Int),
            AttrDef::new("KeyConnection", AttrType::Int),
            AttrDef::new("OidConnection", AttrType::Link),
            AttrDef::new("DepartureTimes", AttrType::Str),
        ],
    )
}

/// Flat schema of `NSM-Sightseeing`.
pub fn nsm_sightseeing_schema() -> RelSchema {
    RelSchema::new(
        "NSM-Sightseeing",
        vec![
            AttrDef::new("RootKey", AttrType::Int),
            AttrDef::new("SeeingNr", AttrType::Int),
            AttrDef::new("Description", AttrType::Str),
            AttrDef::new("Location", AttrType::Str),
            AttrDef::new("History", AttrType::Str),
            AttrDef::new("Remarks", AttrType::Str),
        ],
    )
}

/// Per-object RIDs kept by the NSM+index variant.
#[derive(Clone, Debug, Default)]
struct ObjRids {
    station: Option<Rid>,
    platforms: Vec<Rid>,
    connections: Vec<Rid>,
    sightseeings: Vec<Rid>,
}

struct RelationBytes {
    total_bytes: u64,
    count: u64,
}

/// Everything a reorganization replaces in one shot: the four heap files
/// plus the address tables that point into them. Bundled behind one
/// `Arc` so the adaptive-placement pass can build a fresh copy off to the
/// side and publish it atomically (racing readers keep their old `Arc`;
/// the old extents stay on disk, merely orphaned).
struct NsmState {
    station: HeapFile,
    platform: HeapFile,
    connection: HeapFile,
    sightseeing: HeapFile,
    /// Memory-resident addresses of root tuples, kept so updates can write
    /// back the tuples just read without a second scan (matching the paper's
    /// measured query-3 overheads); never used for *read* paths in pure NSM.
    station_rids: HashMap<Key, Rid>,
    /// NSM+index only: `key → RIDs of all the object's tuples`.
    index: HashMap<Key, ObjRids>,
}

/// The NSM store (pure or indexed), generic over the buffer pool it runs
/// on ([`BufferPool`] by default; [`SharedPoolHandle`] for concurrent
/// serving via [`crate::make_shared_store`]).
pub struct NsmStore<P: PageCache = BufferPool> {
    indexed: bool,
    pool: P,
    /// Snapshot-swapped by `reorganize`; every op clones the `Arc` out once
    /// and works against that consistent placement.
    state: RwLock<Option<Arc<NsmState>>>,
    refs: Vec<ObjRef>,
    sizes: Vec<RelationBytes>,
}

/// Immutable borrows of everything the NSM read paths need besides the
/// pool — split out so the same code serves the exclusive (`&mut self`)
/// and concurrent (`&self` plus a cloned pool handle) surfaces.
struct NsmParts<'a> {
    indexed: bool,
    station: &'a HeapFile,
    platform: &'a HeapFile,
    connection: &'a HeapFile,
    sightseeing: &'a HeapFile,
    index: &'a HashMap<Key, ObjRids>,
}

/// Builds [`NsmParts`] over one placement snapshot.
fn nsm_parts(indexed: bool, state: &NsmState) -> NsmParts<'_> {
    NsmParts {
        indexed,
        station: &state.station,
        platform: &state.platform,
        connection: &state.connection,
        sightseeing: &state.sightseeing,
        index: &state.index,
    }
}

impl NsmStore {
    /// Creates an empty NSM store; `indexed` selects the NSM+index variant.
    pub fn new(indexed: bool, config: StoreConfig) -> Self {
        let pool = config.buffer.build(SimDisk::new());
        Self::with_pool(indexed, &config, pool)
    }
}

impl<P: PageCache> NsmStore<P> {
    /// Creates an empty NSM store over an externally built pool.
    pub fn with_pool(indexed: bool, _config: &StoreConfig, pool: P) -> Self {
        NsmStore {
            indexed,
            pool,
            state: RwLock::new(None),
            refs: Vec::new(),
            sizes: Vec::new(),
        }
    }

    /// The current placement snapshot (cheap `Arc` clone), or the
    /// empty-database error.
    fn state(&self) -> Result<Arc<NsmState>> {
        placement::read_lock(&self.state)
            .clone()
            .ok_or_else(|| CoreError::NotFound {
                what: "empty database".into(),
            })
    }
}

/// The NSM root update over `refs` — the one write primitive both the
/// exclusive (`&mut`) and the concurrent (`&self`) surfaces run. Each root
/// record's read-modify-write happens under an **exclusive latch** on its
/// page, so concurrent writers on root records sharing a page serialize and
/// never lose updates (root tuples are small — "there are many on a single
/// page", §5.3).
fn update_roots_in(
    station: &HeapFile,
    station_rids: &HashMap<Key, Rid>,
    pool: &mut impl PageCache,
    refs: &[ObjRef],
    patch: &RootPatch,
) -> Result<()> {
    let schema = nsm_station_schema();
    for r in refs {
        let rid = *station_rids
            .get(&r.key)
            .ok_or_else(|| CoreError::NotFound {
                what: format!("key {}", r.key),
            })?;
        let res = pool.with_latched(&[rid.page], LatchMode::Exclusive, |pool| {
            let bytes = station.read(pool, rid)?;
            let mut t = decode(&bytes, &schema)?;
            let old = t.values[3].as_str().map(str::len).unwrap_or(0);
            if old != patch.new_name.len() {
                return Err(CoreError::Store(
                    starfish_pagestore::StoreError::SizeChanged {
                        old,
                        new: patch.new_name.len(),
                    },
                ));
            }
            t.values[3] = Value::Str(patch.new_name.clone());
            Ok(station.update(pool, rid, &encode(&t, &schema)?)?)
        });
        // Each root RMW is one op: commit (durable on WAL pools) or drop
        // its buffered images.
        match res {
            Ok(()) => pool.log_commit()?,
            Err(e) => {
                pool.log_abort();
                return Err(e);
            }
        }
    }
    Ok(())
}

/// Assembles the nested `Station` tuple for `key` from flat parts.
fn assemble(
    key: Key,
    station: &Tuple,
    platforms: &[Tuple],
    connections: &[Tuple],
    sightseeings: &[Tuple],
) -> Tuple {
    let mut conns_by_parent: HashMap<i32, Vec<Tuple>> = HashMap::new();
    for c in connections {
        let parent = c.attr(1).and_then(Value::as_int).unwrap_or(0);
        // Strip RootKey + ParentKey: (LineNr, KeyConnection, Oid, Times).
        conns_by_parent
            .entry(parent)
            .or_default()
            .push(Tuple::new(c.values[2..].to_vec()));
    }
    let platform_tuples: Vec<Tuple> = platforms
        .iter()
        .map(|p| {
            let own = p.attr(1).and_then(Value::as_int).unwrap_or(0);
            let mut vals = p.values[2..].to_vec(); // PNr, NoLine, TCode, Inform
            vals.push(Value::Rel(conns_by_parent.remove(&own).unwrap_or_default()));
            Tuple::new(vals)
        })
        .collect();
    let seeing_tuples: Vec<Tuple> = sightseeings
        .iter()
        .map(|s| Tuple::new(s.values[1..].to_vec()))
        .collect();
    let _ = key;
    Tuple::new(vec![
        station.values[0].clone(),
        station.values[1].clone(),
        station.values[2].clone(),
        station.values[3].clone(),
        Value::Rel(platform_tuples),
        Value::Rel(seeing_tuples),
    ])
}

/// Scans a relation, decoding tuples whose `RootKey` (attribute 0) is in
/// `keys`, grouped per key in encounter order. Always reads the whole
/// relation (set-oriented selection).
fn scan_matching(
    pool: &mut impl PageCache,
    file: &HeapFile,
    schema: &RelSchema,
    keys: &HashSet<Key>,
) -> Result<HashMap<Key, Vec<Tuple>>> {
    let mut out: HashMap<Key, Vec<Tuple>> = HashMap::new();
    let mut err = None;
    file.scan(pool, |_, bytes| {
        if err.is_some() {
            return;
        }
        match peek_root_key(bytes) {
            Ok(k) if keys.contains(&k) => match decode(bytes, schema) {
                Ok(t) => out.entry(k).or_default().push(t),
                Err(e) => err = Some(CoreError::from(e)),
            },
            Ok(_) => {}
            Err(e) => err = Some(e),
        }
    })?;
    match err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Reads tuples by RID (NSM+index path): a page is fixed iff a tuple on
/// it is requested.
fn read_rids(
    pool: &mut impl PageCache,
    file: &HeapFile,
    schema: &RelSchema,
    rids: &[Rid],
) -> Result<Vec<Tuple>> {
    rids.iter()
        .map(|rid| {
            let bytes = file.read(pool, *rid)?;
            Ok(decode(&bytes, schema)?)
        })
        .collect()
}

impl<P: PageCache> NsmStore<P> {
    /// Materializes one full object by key: pure NSM scans all relations,
    /// NSM+index reads the root by scan/index depending on `root_by_scan`
    /// and the sub-tuples by RID.
    fn materialize(&mut self, key: Key, root_by_scan: bool) -> Result<Tuple> {
        let state = self.state()?;
        let parts = nsm_parts(self.indexed, &state);
        materialize_in(&parts, &mut self.pool, key, root_by_scan)
    }
}

/// [`NsmStore::materialize`] over explicit parts and pool — the shape both
/// the exclusive and the concurrent surfaces share.
fn materialize_in(
    parts: &NsmParts<'_>,
    pool: &mut impl PageCache,
    key: Key,
    root_by_scan: bool,
) -> Result<Tuple> {
    let station_schema = nsm_station_schema();
    let root = if root_by_scan {
        let keys: HashSet<Key> = [key].into();
        let found = scan_matching(pool, parts.station, &station_schema, &keys)?;
        found
            .get(&key)
            .and_then(|v| v.first())
            .cloned()
            .ok_or_else(|| CoreError::NotFound {
                what: format!("key {key}"),
            })?
    } else {
        let rid = parts
            .index
            .get(&key)
            .and_then(|r| r.station)
            .ok_or_else(|| CoreError::NotFound {
                what: format!("key {key}"),
            })?;
        let bytes = parts.station.read(pool, rid)?;
        decode(&bytes, &station_schema)?
    };
    let (platforms, connections, sightseeings) = if parts.indexed {
        let rids = parts.index.get(&key).cloned().unwrap_or_default();
        (
            read_rids(
                pool,
                parts.platform,
                &nsm_platform_schema(),
                &rids.platforms,
            )?,
            read_rids(
                pool,
                parts.connection,
                &nsm_connection_schema(),
                &rids.connections,
            )?,
            read_rids(
                pool,
                parts.sightseeing,
                &nsm_sightseeing_schema(),
                &rids.sightseeings,
            )?,
        )
    } else {
        let keys: HashSet<Key> = [key].into();
        let mut p = scan_matching(pool, parts.platform, &nsm_platform_schema(), &keys)?;
        let mut c = scan_matching(pool, parts.connection, &nsm_connection_schema(), &keys)?;
        let mut s = scan_matching(pool, parts.sightseeing, &nsm_sightseeing_schema(), &keys)?;
        (
            p.remove(&key).unwrap_or_default(),
            c.remove(&key).unwrap_or_default(),
            s.remove(&key).unwrap_or_default(),
        )
    };
    Ok(assemble(
        key,
        &root,
        &platforms,
        &connections,
        &sightseeings,
    ))
}

/// The NSM full scan over explicit parts and pool: one set-oriented pass
/// over each of the four relations, objects reassembled in `refs` (OID)
/// order — the one scan primitive both surfaces run.
fn scan_all_in(
    parts: &NsmParts<'_>,
    pool: &mut impl PageCache,
    refs: &[ObjRef],
    f: &mut dyn FnMut(&Tuple),
) -> Result<()> {
    let keys: HashSet<Key> = refs.iter().map(|r| r.key).collect();
    let roots = scan_matching(pool, parts.station, &nsm_station_schema(), &keys)?;
    let mut platforms = scan_matching(pool, parts.platform, &nsm_platform_schema(), &keys)?;
    let mut connections = scan_matching(pool, parts.connection, &nsm_connection_schema(), &keys)?;
    let mut sightseeings =
        scan_matching(pool, parts.sightseeing, &nsm_sightseeing_schema(), &keys)?;
    for r in refs {
        let root =
            roots
                .get(&r.key)
                .and_then(|v| v.first())
                .ok_or_else(|| CoreError::NotFound {
                    what: format!("key {}", r.key),
                })?;
        let t = assemble(
            r.key,
            root,
            &platforms.remove(&r.key).unwrap_or_default(),
            &connections.remove(&r.key).unwrap_or_default(),
            &sightseeings.remove(&r.key).unwrap_or_default(),
        );
        f(&t);
    }
    Ok(())
}

/// The NSM navigation step over explicit parts and pool.
fn children_of_in(
    parts: &NsmParts<'_>,
    pool: &mut impl PageCache,
    refs: &[ObjRef],
) -> Result<Vec<ObjRef>> {
    let schema = nsm_connection_schema();
    let to_ref = |c: &Tuple| ObjRef {
        key: c.attr(3).and_then(Value::as_int).unwrap_or(0),
        oid: c.attr(4).and_then(Value::as_link).unwrap_or(Oid(0)),
    };
    if parts.indexed {
        let mut out = Vec::new();
        for r in refs {
            let rids = parts
                .index
                .get(&r.key)
                .map(|x| x.connections.clone())
                .unwrap_or_default();
            let tuples = read_rids(pool, parts.connection, &schema, &rids)?;
            out.extend(tuples.iter().map(to_ref));
        }
        Ok(out)
    } else {
        // One set-oriented scan of NSM-Connection for the whole ref set.
        let keys: HashSet<Key> = refs.iter().map(|r| r.key).collect();
        let mut by_key = scan_matching(pool, parts.connection, &schema, &keys)?;
        // Preserve per-ref order (and duplicate refs duplicate output).
        let mut out = Vec::new();
        for r in refs {
            if let Some(ts) = by_key.get(&r.key) {
                out.extend(ts.iter().map(to_ref));
            }
        }
        let _ = by_key.drain();
        Ok(out)
    }
}

/// The NSM root-record read over explicit parts and pool.
fn root_records_in(
    parts: &NsmParts<'_>,
    pool: &mut impl PageCache,
    refs: &[ObjRef],
) -> Result<Vec<Tuple>> {
    let schema = nsm_station_schema();
    let to_root = |t: &Tuple| {
        Tuple::new(vec![
            t.values[0].clone(),
            t.values[1].clone(),
            t.values[2].clone(),
            t.values[3].clone(),
            Value::Rel(vec![]),
            Value::Rel(vec![]),
        ])
    };
    if parts.indexed {
        refs.iter()
            .map(|r| {
                let rid = parts
                    .index
                    .get(&r.key)
                    .and_then(|x| x.station)
                    .ok_or_else(|| CoreError::NotFound {
                        what: format!("key {}", r.key),
                    })?;
                let bytes = parts.station.read(pool, rid)?;
                Ok(to_root(&decode(&bytes, &schema)?))
            })
            .collect()
    } else {
        let keys: HashSet<Key> = refs.iter().map(|r| r.key).collect();
        let by_key = scan_matching(pool, parts.station, &schema, &keys)?;
        refs.iter()
            .map(|r| {
                by_key
                    .get(&r.key)
                    .and_then(|v| v.first())
                    .map(to_root)
                    .ok_or_else(|| CoreError::NotFound {
                        what: format!("key {}", r.key),
                    })
            })
            .collect()
    }
}

/// Decodes attribute 0 (`Key`/`RootKey`, always an INT at a fixed offset) of
/// a flat NSM tuple without decoding the rest.
fn peek_root_key(bytes: &[u8]) -> Result<Key> {
    match starfish_nf2::decode_attr(bytes, &AttrType::Int, root_key_offset(bytes)?)? {
        Value::Int(k) => Ok(k),
        _ => unreachable!("decode_attr(Int) yields Int"),
    }
}

fn root_key_offset(bytes: &[u8]) -> Result<usize> {
    // Attribute offsets start right after the 20-byte tuple header; offset 0
    // entry is little-endian u32 relative to the tuple start.
    let raw = bytes
        .get(20..24)
        .ok_or(CoreError::Nf2(starfish_nf2::Nf2Error::Corrupt {
            offset: 20,
            detail: "flat tuple too short".into(),
        }))?;
    Ok(u32::from_le_bytes(raw.try_into().expect("4 bytes")) as usize)
}

/// Rebuilds the NSM+index map from per-relation `(owner key, RID)` pairs —
/// shared by `load` and the reorganization pass so the two can never drift.
/// Empty for pure NSM.
fn build_index(
    indexed: bool,
    owners: [&Vec<Key>; 4],
    rids: [&Vec<Rid>; 4],
) -> HashMap<Key, ObjRids> {
    let mut index: HashMap<Key, ObjRids> = HashMap::new();
    if indexed {
        for (k, rid) in owners[0].iter().zip(rids[0]) {
            index.entry(*k).or_default().station = Some(*rid);
        }
        for (k, rid) in owners[1].iter().zip(rids[1]) {
            index.entry(*k).or_default().platforms.push(*rid);
        }
        for (k, rid) in owners[2].iter().zip(rids[2]) {
            index.entry(*k).or_default().connections.push(*rid);
        }
        for (k, rid) in owners[3].iter().zip(rids[3]) {
            index.entry(*k).or_default().sightseeings.push(*rid);
        }
    }
    index
}

/// One relation's raw records grouped per root key (encounter order within
/// a key), plus the pages each key's records sit on — the reorganization's
/// working set, collected in one counted sequential scan.
#[derive(Default)]
struct GroupedRelation {
    recs: HashMap<Key, Vec<Vec<u8>>>,
    pages: HashMap<Key, Vec<PageId>>,
}

fn scan_grouped(pool: &mut impl PageCache, file: &HeapFile) -> Result<GroupedRelation> {
    let mut g = GroupedRelation::default();
    let mut err = None;
    file.scan(pool, |rid, bytes| {
        if err.is_some() {
            return;
        }
        match peek_root_key(bytes) {
            Ok(k) => {
                g.recs.entry(k).or_default().push(bytes.to_vec());
                g.pages.entry(k).or_default().push(rid.page);
            }
            Err(e) => err = Some(e),
        }
    })?;
    match err {
        Some(e) => Err(e),
        None => Ok(g),
    }
}

/// Current pages-per-tuple density of each relation — what one tuple costs
/// inside a packed region (`1/k` of a page for these page-sharing tuples).
fn densities(state: &NsmState, sizes: &[RelationBytes]) -> [f64; 4] {
    let files = [
        &state.station,
        &state.platform,
        &state.connection,
        &state.sightseeing,
    ];
    std::array::from_fn(|i| match sizes.get(i) {
        Some(sz) if sz.count > 0 => files[i].page_count() as f64 / sz.count as f64,
        _ => 0.0,
    })
}

/// Per-object heat from the memory-resident index alone (NSM+index): no
/// I/O, the addresses already name every page each object touches.
fn object_heats_indexed(
    state: &NsmState,
    refs: &[ObjRef],
    dens: [f64; 4],
    heat: &HashMap<PageId, u64>,
) -> Vec<ObjectHeat> {
    refs.iter()
        .enumerate()
        .map(|(ord, r)| {
            let rids = state.index.get(&r.key).cloned().unwrap_or_default();
            let mut pages: Vec<PageId> = Vec::new();
            pages.extend(rids.station.iter().map(|x| x.page));
            pages.extend(rids.platforms.iter().map(|x| x.page));
            pages.extend(rids.connections.iter().map(|x| x.page));
            pages.extend(rids.sightseeings.iter().map(|x| x.page));
            let packed = dens[0]
                + dens[1] * rids.platforms.len() as f64
                + dens[2] * rids.connections.len() as f64
                + dens[3] * rids.sightseeings.len() as f64;
            ObjectHeat::new(ord, pages, heat, packed)
        })
        .collect()
}

/// Per-object heat from grouped relation scans (pure NSM has no addresses,
/// so locating tuples costs the usual counted relation scans).
fn object_heats_grouped(
    groups: &[GroupedRelation; 4],
    refs: &[ObjRef],
    dens: [f64; 4],
    heat: &HashMap<PageId, u64>,
) -> Vec<ObjectHeat> {
    refs.iter()
        .enumerate()
        .map(|(ord, r)| {
            let mut pages: Vec<PageId> = Vec::new();
            let mut packed = 0.0;
            for (g, d) in groups.iter().zip(dens) {
                if let Some(ps) = g.pages.get(&r.key) {
                    pages.extend(ps.iter().copied());
                }
                packed += d * g.recs.get(&r.key).map(Vec::len).unwrap_or(0) as f64;
            }
            ObjectHeat::new(ord, pages, heat, packed)
        })
        .collect()
}

/// The adaptive-placement rewrite: scans all four relations (counted I/O),
/// ranks objects by tracked heat, bulk-loads fresh extents with the hot set
/// first, and rebuilds the address tables. Logically invisible — within an
/// object every record keeps its encounter order, so grouped answers are
/// bit-for-bit what they were; only the page placement changes. The old
/// extents stay on disk, orphaned, so concurrent readers holding the old
/// [`NsmState`] snapshot stay correct.
fn rebuild_nsm(
    indexed: bool,
    state: &NsmState,
    refs: &[ObjRef],
    sizes: &[RelationBytes],
    pool: &mut impl PageCache,
) -> Result<(NsmState, ReorgReport)> {
    let before = pool.snapshot();
    let heat = placement::heat_map(pool.page_heat());
    let dens = densities(state, sizes);
    let files = [
        &state.station,
        &state.platform,
        &state.connection,
        &state.sightseeing,
    ];
    let mut groups: [GroupedRelation; 4] = Default::default();
    for (g, f) in groups.iter_mut().zip(files) {
        *g = scan_grouped(pool, f)?;
    }
    let heats = object_heats_grouped(&groups, refs, dens, &heat);
    let ranking = placement::rank(&heats);

    // Re-emit every relation with whole objects in heat order.
    let mut recs: [Vec<Vec<u8>>; 4] = Default::default();
    let mut owners: [Vec<Key>; 4] = Default::default();
    for &ord in &ranking.order {
        let key = refs[ord].key;
        for ((g, out), own) in groups.iter().zip(recs.iter_mut()).zip(owners.iter_mut()) {
            if let Some(rs) = g.recs.get(&key) {
                out.extend(rs.iter().cloned());
                own.extend(std::iter::repeat_n(key, rs.len()));
            }
        }
    }
    let (st, st_rids) = HeapFile::bulk_load(pool, "NSM-Station", &recs[0])?;
    let (pl, pl_rids) = HeapFile::bulk_load(pool, "NSM-Platform", &recs[1])?;
    let (co, co_rids) = HeapFile::bulk_load(pool, "NSM-Connection", &recs[2])?;
    let (se, se_rids) = HeapFile::bulk_load(pool, "NSM-Sightseeing", &recs[3])?;
    pool.flush_all()?;
    let spent = pool.snapshot() - before;

    let new_rids = [&st_rids, &pl_rids, &co_rids, &se_rids];
    let mut pages_after: HashMap<Key, Vec<PageId>> = HashMap::new();
    for (own, rids) in owners.iter().zip(new_rids) {
        for (k, rid) in own.iter().zip(rids) {
            pages_after.entry(*k).or_default().push(rid.page);
        }
    }
    let hot_pages_after = placement::distinct_pages(ranking.hot_ordinals().iter().map(|&o| {
        pages_after
            .get(&refs[o].key)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }));
    let report = ReorgReport {
        objects: refs.len(),
        moved: ranking
            .order
            .iter()
            .enumerate()
            .filter(|&(i, &o)| i != o)
            .count(),
        heat_total: ranking.stats.heat_total,
        hot_objects: ranking.stats.hot_objects,
        hot_pages_before: ranking.stats.hot_pages,
        hot_pages_after,
        pages_read: spent.pages_read,
        pages_written: spent.pages_written,
    };
    let station_rids: HashMap<Key, Rid> = owners[0]
        .iter()
        .zip(&st_rids)
        .map(|(k, r)| (*k, *r))
        .collect();
    let index = build_index(
        indexed,
        [&owners[0], &owners[1], &owners[2], &owners[3]],
        [&st_rids, &pl_rids, &co_rids, &se_rids],
    );
    Ok((
        NsmState {
            station: st,
            platform: pl,
            connection: co,
            sightseeing: se,
            station_rids,
            index,
        },
        report,
    ))
}

impl<P: PageCache> ComplexObjectStore for NsmStore<P> {
    fn model(&self) -> ModelKind {
        if self.indexed {
            ModelKind::NsmIndexed
        } else {
            ModelKind::Nsm
        }
    }

    fn load(&mut self, stations: &[Station]) -> Result<Vec<ObjRef>> {
        let mut st_recs = Vec::new();
        let mut pl_recs = Vec::new();
        let mut co_recs = Vec::new();
        let mut se_recs = Vec::new();
        // Bookkeeping to map bulk-load RIDs back to objects.
        let mut pl_owner: Vec<Key> = Vec::new();
        let mut co_owner: Vec<Key> = Vec::new();
        let mut se_owner: Vec<Key> = Vec::new();
        self.refs.clear();
        for (i, s) in stations.iter().enumerate() {
            self.refs.push(ObjRef {
                oid: Oid(i as u32),
                key: s.key,
            });
            st_recs.push(encode(
                &Tuple::new(vec![
                    Value::Int(s.key),
                    Value::Int(s.platforms.len() as i32),
                    Value::Int(s.sightseeings.len() as i32),
                    Value::Str(s.name.clone()),
                ]),
                &nsm_station_schema(),
            )?);
            for (pi, p) in s.platforms.iter().enumerate() {
                pl_owner.push(s.key);
                pl_recs.push(encode(
                    &Tuple::new(vec![
                        Value::Int(s.key),
                        Value::Int(pi as i32),
                        Value::Int(p.platform_nr),
                        Value::Int(p.no_line),
                        Value::Int(p.ticket_code),
                        Value::Str(p.information.clone()),
                    ]),
                    &nsm_platform_schema(),
                )?);
                for c in &p.connections {
                    co_owner.push(s.key);
                    co_recs.push(encode(
                        &Tuple::new(vec![
                            Value::Int(s.key),
                            Value::Int(pi as i32),
                            Value::Int(c.line_nr),
                            Value::Int(c.key_connection),
                            Value::Link(c.oid_connection),
                            Value::Str(c.departure_times.clone()),
                        ]),
                        &nsm_connection_schema(),
                    )?);
                }
            }
            for g in &s.sightseeings {
                se_owner.push(s.key);
                se_recs.push(encode(
                    &Tuple::new(vec![
                        Value::Int(s.key),
                        Value::Int(g.seeing_nr),
                        Value::Str(g.description.clone()),
                        Value::Str(g.location.clone()),
                        Value::Str(g.history.clone()),
                        Value::Str(g.remarks.clone()),
                    ]),
                    &nsm_sightseeing_schema(),
                )?);
            }
        }
        let (st, st_rids) = HeapFile::bulk_load(&mut self.pool, "NSM-Station", &st_recs)?;
        let (pl, pl_rids) = HeapFile::bulk_load(&mut self.pool, "NSM-Platform", &pl_recs)?;
        let (co, co_rids) = HeapFile::bulk_load(&mut self.pool, "NSM-Connection", &co_recs)?;
        let (se, se_rids) = HeapFile::bulk_load(&mut self.pool, "NSM-Sightseeing", &se_recs)?;
        let station_rids: HashMap<Key, Rid> = stations
            .iter()
            .zip(&st_rids)
            .map(|(s, r)| (s.key, *r))
            .collect();
        let owner_keys: Vec<Key> = stations.iter().map(|s| s.key).collect();
        let index = build_index(
            self.indexed,
            [&owner_keys, &pl_owner, &co_owner, &se_owner],
            [&st_rids, &pl_rids, &co_rids, &se_rids],
        );
        self.sizes = [&st_recs, &pl_recs, &co_recs, &se_recs]
            .iter()
            .map(|recs| RelationBytes {
                total_bytes: recs.iter().map(|r| r.len() as u64).sum(),
                count: recs.len() as u64,
            })
            .collect();
        *placement::write_lock(&self.state) = Some(Arc::new(NsmState {
            station: st,
            platform: pl,
            connection: co,
            sightseeing: se,
            station_rids,
            index,
        }));
        self.pool.clear_cache()?;
        self.pool.reset_stats();
        Ok(self.refs.clone())
    }

    fn object_count(&self) -> usize {
        self.refs.len()
    }

    fn get_by_oid(&mut self, oid: Oid, proj: &Projection) -> Result<Tuple> {
        if !self.indexed {
            // "With NSM we have no identifiers, so query 1a is not relevant."
            return Err(CoreError::Unsupported {
                model: "NSM",
                op: "access by OID (query 1a)",
            });
        }
        let key = key_of_oid(&self.refs, oid)?;
        let t = self.materialize(key, false)?;
        Ok(apply_station_proj(t, proj))
    }

    fn get_by_key(&mut self, key: Key, proj: &Projection) -> Result<Tuple> {
        // Value selection: the root relation is always scanned; the
        // sub-relations are scanned (pure) or read by RID (indexed).
        let t = self.materialize(key, true)?;
        Ok(apply_station_proj(t, proj))
    }

    fn scan_all(&mut self, f: &mut dyn FnMut(&Tuple)) -> Result<()> {
        let refs = self.refs.clone();
        let state = self.state()?;
        let parts = nsm_parts(self.indexed, &state);
        scan_all_in(&parts, &mut self.pool, &refs, f)
    }

    fn children_of(&mut self, refs: &[ObjRef]) -> Result<Vec<ObjRef>> {
        let state = self.state()?;
        let parts = nsm_parts(self.indexed, &state);
        children_of_in(&parts, &mut self.pool, refs)
    }

    fn root_records(&mut self, refs: &[ObjRef]) -> Result<Vec<Tuple>> {
        let state = self.state()?;
        let parts = nsm_parts(self.indexed, &state);
        root_records_in(&parts, &mut self.pool, refs)
    }

    fn update_roots(&mut self, refs: &[ObjRef], patch: &RootPatch) -> Result<()> {
        let state = self.state()?;
        update_roots_in(
            &state.station,
            &state.station_rids,
            &mut self.pool,
            refs,
            patch,
        )
    }

    fn flush(&mut self) -> Result<()> {
        self.pool.flush_all().map_err(Into::into)
    }

    fn clear_cache(&mut self) -> Result<()> {
        self.pool.clear_cache().map_err(Into::into)
    }

    fn reset_stats(&mut self) {
        self.pool.reset_stats();
    }

    fn snapshot(&self) -> IoSnapshot {
        self.pool.snapshot()
    }

    fn buffer_stats(&self) -> BufferStats {
        self.pool.buffer_stats()
    }

    fn relation_info(&self) -> Vec<RelationInfo> {
        let Ok(state) = self.state() else {
            return Vec::new();
        };
        let files = [
            &state.station,
            &state.platform,
            &state.connection,
            &state.sightseeing,
        ];
        let objects = self.refs.len();
        files
            .iter()
            .zip(&self.sizes)
            .map(|(f, sz)| {
                let s_tuple =
                    avg(sz.total_bytes, sz.count) + starfish_pagestore::SLOT_ENTRY_SIZE as f64;
                RelationInfo {
                    name: f.name().trim_end_matches("-heap").to_string(),
                    tuples_per_object: per_object(sz.count, objects),
                    total_tuples: sz.count,
                    avg_tuple_bytes: s_tuple,
                    k: if sz.count > 0 {
                        Some((starfish_pagestore::EFFECTIVE_PAGE_SIZE as f64 / s_tuple) as u32)
                    } else {
                        None
                    },
                    p: None,
                    m: f.page_count(),
                }
            })
            .collect()
    }

    fn database_pages(&self) -> u32 {
        self.pool.database_pages()
    }

    fn disk_checksum(&self) -> u64 {
        self.pool.disk_checksum()
    }

    fn placement_stats(&mut self) -> Result<PlacementStats> {
        let state = self.state()?;
        let heat = placement::heat_map(self.pool.page_heat());
        let dens = densities(&state, &self.sizes);
        let heats = if self.indexed {
            // The memory-resident index names every page: metadata only.
            object_heats_indexed(&state, &self.refs, dens, &heat)
        } else {
            // Pure NSM has no addresses: locating tuples costs the usual
            // counted relation scans.
            let files = [
                &state.station,
                &state.platform,
                &state.connection,
                &state.sightseeing,
            ];
            let mut groups: [GroupedRelation; 4] = Default::default();
            for (g, f) in groups.iter_mut().zip(files) {
                *g = scan_grouped(&mut self.pool, f)?;
            }
            object_heats_grouped(&groups, &self.refs, dens, &heat)
        };
        Ok(placement::rank(&heats).stats)
    }

    fn reorganize(&mut self) -> Result<ReorgReport> {
        let state = self.state()?;
        let (new_state, report) = rebuild_nsm(
            self.indexed,
            &state,
            &self.refs,
            &self.sizes,
            &mut self.pool,
        )?;
        *placement::write_lock(&self.state) = Some(Arc::new(new_state));
        Ok(report)
    }
}

impl NsmStore<SharedPoolHandle> {
    /// State snapshot plus a cloned pool handle, for `&self` read paths.
    fn parts_and_handle(&self) -> Result<(Arc<NsmState>, SharedPoolHandle)> {
        Ok((self.state()?, self.pool.clone()))
    }
}

impl crate::ConcurrentObjectStore for NsmStore<SharedPoolHandle> {
    fn shared_get_by_oid(&self, oid: Oid, proj: &Projection) -> Result<Tuple> {
        if !self.indexed {
            // "With NSM we have no identifiers, so query 1a is not relevant."
            return Err(CoreError::Unsupported {
                model: "NSM",
                op: "access by OID (query 1a)",
            });
        }
        let key = key_of_oid(&self.refs, oid)?;
        let (state, mut pool) = self.parts_and_handle()?;
        let parts = nsm_parts(self.indexed, &state);
        let t = materialize_in(&parts, &mut pool, key, false)?;
        Ok(apply_station_proj(t, proj))
    }

    fn shared_get_by_key(&self, key: Key, proj: &Projection) -> Result<Tuple> {
        let (state, mut pool) = self.parts_and_handle()?;
        let parts = nsm_parts(self.indexed, &state);
        let t = materialize_in(&parts, &mut pool, key, true)?;
        Ok(apply_station_proj(t, proj))
    }

    fn shared_scan_all(&self, f: &mut dyn FnMut(&Tuple)) -> Result<()> {
        let (state, mut pool) = self.parts_and_handle()?;
        let parts = nsm_parts(self.indexed, &state);
        scan_all_in(&parts, &mut pool, &self.refs, f)
    }

    fn shared_children_of(&self, refs: &[ObjRef]) -> Result<Vec<ObjRef>> {
        let (state, mut pool) = self.parts_and_handle()?;
        let parts = nsm_parts(self.indexed, &state);
        children_of_in(&parts, &mut pool, refs)
    }

    fn shared_root_records(&self, refs: &[ObjRef]) -> Result<Vec<Tuple>> {
        let (state, mut pool) = self.parts_and_handle()?;
        let parts = nsm_parts(self.indexed, &state);
        root_records_in(&parts, &mut pool, refs)
    }

    fn shared_update_roots(&self, refs: &[ObjRef], patch: &RootPatch) -> Result<()> {
        let (state, mut pool) = self.parts_and_handle()?;
        update_roots_in(&state.station, &state.station_rids, &mut pool, refs, patch)
    }

    fn shared_flush(&self) -> Result<()> {
        self.pool.pool().flush_all().map_err(Into::into)
    }

    fn shared_clear_cache(&self) -> Result<()> {
        self.pool.pool().clear_cache().map_err(Into::into)
    }

    fn shard_stats(&self) -> Vec<BufferStats> {
        self.pool.pool().shard_stats()
    }

    fn simulate_crash(&self) {
        self.pool.pool().crash_volatile()
    }

    fn recover(&self) -> Result<usize> {
        self.pool.pool().recover().map_err(Into::into)
    }

    fn damage_log_tail(&self, bytes: u32) {
        self.pool.pool().truncate_log_tail(bytes)
    }

    fn shared_reorganize(&self) -> Result<ReorgReport> {
        let (state, mut pool) = self.parts_and_handle()?;
        // Copy + swap under the writer gate: no root update can slip in
        // between scanning a relation and publishing its new extents.
        // Readers race on the old snapshot (scans are plain fixes and pass
        // the gate); the pass takes no exclusive latch group (see the
        // trait's lock-order note).
        self.pool.pool().with_writers_quiesced(|| {
            let (new_state, report) =
                rebuild_nsm(self.indexed, &state, &self.refs, &self.sizes, &mut pool)?;
            *placement::write_lock(&self.state) = Some(Arc::new(new_state));
            Ok(report)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starfish_nf2::station::{attr, Connection, Platform, Sightseeing};

    fn station(key: i32, children: &[(Key, u32)]) -> Station {
        Station {
            key,
            name: format!("{key:0100}"),
            platforms: children
                .chunks(2)
                .enumerate()
                .map(|(i, chunk)| Platform {
                    platform_nr: i as i32,
                    no_line: 2,
                    ticket_code: 3,
                    information: "i".repeat(100),
                    connections: chunk
                        .iter()
                        .map(|&(k, o)| Connection {
                            line_nr: 7,
                            key_connection: k,
                            oid_connection: Oid(o),
                            departure_times: "t".repeat(100),
                        })
                        .collect(),
                })
                .collect(),
            sightseeings: (0..(key % 4))
                .map(|i| Sightseeing {
                    seeing_nr: i,
                    description: "d".repeat(100),
                    location: "l".repeat(100),
                    history: "h".repeat(100),
                    remarks: "r".repeat(100),
                })
                .collect(),
        }
    }

    fn db() -> Vec<Station> {
        vec![
            station(10, &[(11, 1), (12, 2), (13, 3)]),
            station(11, &[(12, 2)]),
            station(12, &[(10, 0), (13, 3)]),
            station(13, &[]),
        ]
    }

    fn make(indexed: bool) -> NsmStore {
        let mut s = NsmStore::new(indexed, StoreConfig::default());
        s.load(&db()).unwrap();
        s
    }

    #[test]
    fn pure_nsm_rejects_oid_access() {
        let mut s = make(false);
        assert!(matches!(
            s.get_by_oid(Oid(0), &Projection::All),
            Err(CoreError::Unsupported { .. })
        ));
    }

    #[test]
    fn get_by_key_reassembles_object() {
        for indexed in [false, true] {
            let mut s = make(indexed);
            let t = s.get_by_key(10, &Projection::All).unwrap();
            let back = Station::from_tuple(&t).unwrap();
            assert_eq!(back, db()[0], "indexed={indexed}");
        }
    }

    #[test]
    fn indexed_get_by_oid_reassembles() {
        let mut s = make(true);
        let t = s.get_by_oid(Oid(2), &Projection::All).unwrap();
        assert_eq!(Station::from_tuple(&t).unwrap(), db()[2]);
    }

    #[test]
    fn scan_all_rebuilds_every_object_in_oid_order() {
        let mut s = make(false);
        let mut seen = Vec::new();
        s.scan_all(&mut |t| seen.push(Station::from_tuple(t).unwrap()))
            .unwrap();
        assert_eq!(seen, db());
    }

    #[test]
    fn children_of_matches_object_structure() {
        for indexed in [false, true] {
            let mut s = make(indexed);
            let out = s
                .children_of(&[
                    ObjRef {
                        oid: Oid(0),
                        key: 10,
                    },
                    ObjRef {
                        oid: Oid(1),
                        key: 11,
                    },
                ])
                .unwrap();
            let expect: Vec<ObjRef> = db()[0]
                .child_refs()
                .into_iter()
                .chain(db()[1].child_refs())
                .map(|(key, oid)| ObjRef { oid, key })
                .collect();
            assert_eq!(out, expect, "indexed={indexed}");
        }
    }

    #[test]
    fn duplicate_refs_duplicate_children() {
        let mut s = make(false);
        let r = ObjRef {
            oid: Oid(1),
            key: 11,
        };
        let out = s.children_of(&[r, r]).unwrap();
        assert_eq!(out.len(), 2 * db()[1].child_refs().len());
    }

    #[test]
    fn pure_children_of_costs_one_relation_scan() {
        let mut s = make(false);
        s.clear_cache().unwrap();
        s.reset_stats();
        s.children_of(&[ObjRef {
            oid: Oid(0),
            key: 10,
        }])
        .unwrap();
        let m = s.state().unwrap().connection.page_count() as u64;
        let snap = s.snapshot();
        assert_eq!(snap.pages_read, m, "whole connection relation scanned");
        assert_eq!(snap.fixes, m);
    }

    #[test]
    fn indexed_children_of_reads_only_needed_pages() {
        let mut s = make(true);
        s.clear_cache().unwrap();
        s.reset_stats();
        s.children_of(&[ObjRef {
            oid: Oid(0),
            key: 10,
        }])
        .unwrap();
        let m = s.state().unwrap().connection.page_count() as u64;
        let snap = s.snapshot();
        assert!(snap.pages_read <= m);
        assert!(snap.pages_read >= 1);
        assert!(snap.fixes >= 3, "one fix per requested tuple");
    }

    #[test]
    fn root_records_and_update() {
        for indexed in [false, true] {
            let mut s = make(indexed);
            let refs = [ObjRef {
                oid: Oid(3),
                key: 13,
            }];
            let recs = s.root_records(&refs).unwrap();
            assert_eq!(recs[0].attr(attr::KEY).unwrap().as_int(), Some(13));
            let new_name = "Q".repeat(100);
            s.update_roots(
                &refs,
                &RootPatch {
                    new_name: new_name.clone(),
                },
            )
            .unwrap();
            s.clear_cache().unwrap();
            let t = s.get_by_key(13, &Projection::All).unwrap();
            assert_eq!(
                t.attr(attr::NAME).unwrap().as_str(),
                Some(new_name.as_str())
            );
        }
    }

    #[test]
    fn update_rejects_wrong_length() {
        let mut s = make(false);
        assert!(s
            .update_roots(
                &[ObjRef {
                    oid: Oid(0),
                    key: 10
                }],
                &RootPatch {
                    new_name: "tiny".into()
                }
            )
            .is_err());
    }

    #[test]
    fn relation_info_reports_four_relations() {
        let s = make(false);
        let info = s.relation_info();
        assert_eq!(info.len(), 4);
        assert_eq!(info[0].name, "NSM-Station");
        assert_eq!(info[0].total_tuples, 4);
        assert_eq!(info[2].name, "NSM-Connection");
        assert_eq!(info[2].total_tuples, 6);
        // Station tuple: 150 encoded + 4 slot = 154 ⇒ k = 13 (Table 2).
        assert_eq!(info[0].k, Some(13));
        assert!((info[0].avg_tuple_bytes - 154.0).abs() < 1e-9);
        // Connection tuple: 166 + 4 = 170 ⇒ k = 11 (Table 2, exact).
        assert_eq!(info[2].k, Some(11));
        assert!((info[2].avg_tuple_bytes - 170.0).abs() < 1e-9);
    }

    #[test]
    fn missing_key_errors() {
        let mut s = make(false);
        assert!(matches!(
            s.get_by_key(999, &Projection::All),
            Err(CoreError::NotFound { .. })
        ));
    }

    #[test]
    fn reorganize_is_logically_invisible() {
        for indexed in [false, true] {
            let mut s = NsmStore::new(
                indexed,
                StoreConfig::default().heat(starfish_pagestore::HeatConfig::enabled()),
            );
            s.load(&db()).unwrap();
            // Skew the heat towards one object, then reorganize.
            for _ in 0..8 {
                s.get_by_key(12, &Projection::All).unwrap();
            }
            let stats = s.placement_stats().unwrap();
            assert!(stats.heat_total > 0, "indexed={indexed}: heat tracked");
            assert!(stats.hot_objects >= 1);
            let report = s.reorganize().unwrap();
            assert_eq!(report.objects, 4);
            assert!(report.pages_written > 0, "fresh extents were written");
            // Same answers, same OIDs, same keys, after the rewrite.
            let mut seen = Vec::new();
            s.scan_all(&mut |t| seen.push(Station::from_tuple(t).unwrap()))
                .unwrap();
            assert_eq!(seen, db(), "indexed={indexed}");
            let t = s.get_by_key(12, &Projection::All).unwrap();
            assert_eq!(Station::from_tuple(&t).unwrap(), db()[2]);
            if indexed {
                let t = s.get_by_oid(Oid(1), &Projection::All).unwrap();
                assert_eq!(Station::from_tuple(&t).unwrap(), db()[1]);
            }
        }
    }

    #[test]
    fn reorganize_without_heat_is_identity_rewrite() {
        let mut s = make(true);
        let report = s.reorganize().unwrap();
        assert_eq!(report.moved, 0, "no heat: placement order is unchanged");
        assert_eq!(report.heat_total, 0);
        assert_eq!(report.hot_objects, 0);
        let mut seen = Vec::new();
        s.scan_all(&mut |t| seen.push(Station::from_tuple(t).unwrap()))
            .unwrap();
        assert_eq!(seen, db());
    }
}
