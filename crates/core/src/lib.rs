//! # starfish-core — the four complex-object storage models
//!
//! Implements §3 of the ICDE 1993 paper behind one trait,
//! [`ComplexObjectStore`]:
//!
//! | Model | Paper § | Type | Idea |
//! |-------|---------|------|------|
//! | [`ModelKind::Dsm`] | §3.1 | direct | whole nested tuple stored contiguously; every access reads the whole object |
//! | [`ModelKind::DasdbsDsm`] | §3.2 | direct | same layout, but an *object header* enables fetching only the pages a query's projection needs |
//! | [`ModelKind::Nsm`] | §3.3 | normalized | four flat relations with foreign keys; no addresses, so lookups scan; joins in memory |
//! | [`ModelKind::NsmIndexed`] | §3.3 | normalized | NSM plus a memory-resident index `key → RIDs`: a page is read iff a tuple on it is requested |
//! | [`ModelKind::DasdbsNsm`] | §3.4 | normalized | relations nested on the foreign keys (one tuple per relation per object) plus the in-memory *transformation table* `key → addresses` |
//!
//! All models store the same logical objects and answer the same queries;
//! they differ exactly where the paper says they do — in which pages they
//! touch. The substrate ([`starfish_pagestore`]) counts pages, I/O calls and
//! buffer fixes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod concurrent;
mod dasdbs_nsm;
mod direct;
mod error;
mod nsm;
mod object_file;
mod partitioned;
mod placement;
mod traits;

pub use concurrent::{
    make_shared_store, with_reactor, ConcurrentObjectStore, QueryRequest, QueryResponse, Reactor,
    Ticket,
};
pub use dasdbs_nsm::DasdbsNsmStore;
pub use direct::DirectStore;
pub use error::CoreError;
pub use nsm::NsmStore;
pub use object_file::{subtuple_page_plan, ObjAddr, ObjectFile, ReadPayload};
pub use partitioned::{
    with_cluster_router, ClusterRouter, ClusterTicket, PartitionedStore, Placement,
};
pub use placement::{PlacementStats, ReorgReport};
pub use traits::{ComplexObjectStore, ObjRef, RelationInfo, RootPatch};

// Buffer construction knobs and the counter snapshot, re-exported so
// higher layers (harness, repro binary) can select a replacement policy
// and consume measurements without depending on the substrate crate
// directly.
pub use starfish_pagestore::{
    BufferConfig, FsyncMode, HeatConfig, IoEngineConfig, IoSnapshot, PolicyKind, SharedPoolHandle,
    WalConfig,
};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Which storage model a store implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Direct storage model (§3.1).
    Dsm,
    /// Direct model with DASDBS object headers and partial reads (§3.2).
    DasdbsDsm,
    /// Normalized storage model, pure (§3.3).
    Nsm,
    /// Normalized storage model with the in-memory index (§3.3, "NSM+index").
    NsmIndexed,
    /// Normalized model with nesting on foreign keys and the transformation
    /// table (§3.4).
    DasdbsNsm,
}

impl ModelKind {
    /// The paper's name for the model.
    pub fn paper_name(self) -> &'static str {
        match self {
            ModelKind::Dsm => "DSM",
            ModelKind::DasdbsDsm => "DASDBS-DSM",
            ModelKind::Nsm => "NSM",
            ModelKind::NsmIndexed => "NSM+index",
            ModelKind::DasdbsNsm => "DASDBS-NSM",
        }
    }

    /// The four models measured in the paper's Tables 4–6 (NSM+index only
    /// appears in the analytical Table 3).
    pub fn measured_models() -> [ModelKind; 4] {
        [
            ModelKind::Dsm,
            ModelKind::DasdbsDsm,
            ModelKind::Nsm,
            ModelKind::DasdbsNsm,
        ]
    }

    /// All five model variants.
    pub fn all() -> [ModelKind; 5] {
        [
            ModelKind::Dsm,
            ModelKind::DasdbsDsm,
            ModelKind::Nsm,
            ModelKind::NsmIndexed,
            ModelKind::DasdbsNsm,
        ]
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// Store construction parameters.
#[derive(Clone, Debug, Default)]
pub struct StoreConfig {
    /// Buffer-pool configuration: capacity in pages (paper: 1200) plus
    /// replacement policy (paper: LRU).
    pub buffer: BufferConfig,
    /// Direct models only: keep sub-tuples whole on data pages (DASDBS's
    /// layout, which produces alignment waste — the "unprimed" behaviour of
    /// the paper's Tables 2/3). Default `false` = packed pages, the paper's
    /// primed variants.
    pub aligned_subtuples: bool,
}

impl StoreConfig {
    /// Config with a specific buffer capacity (and the default LRU policy).
    pub fn with_buffer_pages(buffer_pages: usize) -> Self {
        Self::with_buffer(BufferConfig::with_pages(buffer_pages))
    }

    /// Config with an explicit buffer configuration.
    pub fn with_buffer(buffer: BufferConfig) -> Self {
        StoreConfig {
            buffer,
            ..Default::default()
        }
    }

    /// Sets the buffer-replacement policy.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.buffer.policy = policy;
        self
    }

    /// Enables the sub-tuple-aligned (wasteful, DASDBS-faithful) layout.
    pub fn aligned(mut self) -> Self {
        self.aligned_subtuples = true;
        self
    }

    /// Sets the write-ahead-log configuration. Only shared pools
    /// ([`make_shared_store`]) act on it; the exclusive [`make_store`]
    /// surface never logs, keeping the serial measurements byte-identical.
    pub fn wal(mut self, wal: WalConfig) -> Self {
        self.buffer.wal = wal;
        self
    }

    /// Sets the batched-I/O-engine configuration. Like the WAL, only
    /// shared pools ([`make_shared_store`]) act on it; disabled (the
    /// default) every miss stays on the synchronous path and all engine
    /// counters read zero.
    pub fn io_engine(mut self, io: IoEngineConfig) -> Self {
        self.buffer.io = io;
        self
    }

    /// Sets the page-heat tracking configuration (adaptive placement's
    /// access signal). Off by default: every golden counter stays
    /// byte-identical and [`ComplexObjectStore::reorganize`] degenerates to
    /// an identity rewrite.
    pub fn heat(mut self, heat: HeatConfig) -> Self {
        self.buffer.heat = heat;
        self
    }
}

/// Builds an empty store of the given model.
///
/// ```
/// use starfish_core::{make_store, ComplexObjectStore, ModelKind, StoreConfig};
/// use starfish_nf2::{station::Station, Projection};
///
/// let mut store = make_store(ModelKind::DasdbsNsm, StoreConfig::default());
/// let db = vec![Station { key: 1, name: "A".into(), platforms: vec![], sightseeings: vec![] }];
/// let refs = store.load(&db)?;
/// let tuple = store.get_by_oid(refs[0].oid, &Projection::All)?;
/// assert_eq!(Station::from_tuple(&tuple).unwrap(), db[0]);
/// // Every page the lookup touched was counted:
/// assert!(store.snapshot().fixes > 0);
/// # Ok::<(), starfish_core::CoreError>(())
/// ```
pub fn make_store(kind: ModelKind, config: StoreConfig) -> Box<dyn ComplexObjectStore> {
    match kind {
        ModelKind::Dsm => Box::new(DirectStore::new(false, config)),
        ModelKind::DasdbsDsm => Box::new(DirectStore::new(true, config)),
        ModelKind::Nsm => Box::new(NsmStore::new(false, config)),
        ModelKind::NsmIndexed => Box::new(NsmStore::new(true, config)),
        ModelKind::DasdbsNsm => Box::new(DasdbsNsmStore::new(config)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_names_match_paper() {
        assert_eq!(ModelKind::Dsm.paper_name(), "DSM");
        assert_eq!(ModelKind::DasdbsDsm.paper_name(), "DASDBS-DSM");
        assert_eq!(ModelKind::Nsm.paper_name(), "NSM");
        assert_eq!(ModelKind::NsmIndexed.paper_name(), "NSM+index");
        assert_eq!(ModelKind::DasdbsNsm.paper_name(), "DASDBS-NSM");
        assert_eq!(format!("{}", ModelKind::DasdbsNsm), "DASDBS-NSM");
    }

    #[test]
    fn factory_builds_every_model() {
        for kind in ModelKind::all() {
            let store = make_store(kind, StoreConfig::default());
            assert_eq!(store.model(), kind);
            assert_eq!(store.object_count(), 0);
        }
    }
}
