//! The **DASDBS-NSM** storage model (§3.4).
//!
//! The flat NSM relations are re-nested on the foreign keys (Figure 4), so
//! every object has **exactly one tuple per relation**:
//!
//! ```text
//! DASDBS-NSM-Station     [ Key | NoPlatform | NoSeeing | Name ]               (flat)
//! DASDBS-NSM-Platform    [ RootKey | {( OwnKey, PlatformNr, NoLine, TicketCode, Information )} ]
//! DASDBS-NSM-Connection  [ RootKey | {( ParentKey, {( LineNr, KeyConnection,
//!                                                     OidConnection, DepartureTimes )} )} ]
//! DASDBS-NSM-Sightseeing [ RootKey | {( SeeingNr, Description, Location, History, Remarks )} ]
//! ```
//!
//! Nesting removes the foreign-key replication and makes it "efficient to
//! keep an additional table (index) with a single entry per object and a
//! fixed and limited number of addresses": the **transformation table**,
//! kept memory-resident here exactly as the paper keeps it (its accesses are
//! not counted — §5.1 excludes the address tables from the I/O counts).

use crate::object_file::{ObjAddr, ObjectFile};
use crate::placement::{self, ObjectHeat, PlacementStats, ReorgReport};
use crate::traits::{
    apply_station_proj, avg, key_of_oid, per_object, ComplexObjectStore, ObjRef, RelationInfo,
    RootPatch,
};
use crate::{CoreError, ModelKind, Result, StoreConfig};
use starfish_nf2::station::Station;
use starfish_nf2::{
    decode, encode, encode_with_layout, AttrDef, AttrType, Key, Oid, Projection, RelSchema, Tuple,
    Value,
};
use starfish_pagestore::{
    BufferPool, BufferStats, HeapFile, IoSnapshot, LatchMode, PageCache, PageId, Rid,
    SharedPoolHandle, SimDisk,
};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Schema of the flat `DASDBS-NSM-Station` relation.
pub fn dnsm_station_schema() -> RelSchema {
    RelSchema::new(
        "DASDBS-NSM-Station",
        vec![
            AttrDef::new("Key", AttrType::Int),
            AttrDef::new("NoPlatform", AttrType::Int),
            AttrDef::new("NoSeeing", AttrType::Int),
            AttrDef::new("Name", AttrType::Str),
        ],
    )
}

/// Schema of the nested `DASDBS-NSM-Platform` relation.
pub fn dnsm_platform_schema() -> RelSchema {
    RelSchema::new(
        "DASDBS-NSM-Platform",
        vec![
            AttrDef::new("RootKey", AttrType::Int),
            AttrDef::new(
                "Platforms",
                AttrType::Rel(Box::new(RelSchema::new(
                    "PlatformsOfStation",
                    vec![
                        AttrDef::new("OwnKey", AttrType::Int),
                        AttrDef::new("PlatformNr", AttrType::Int),
                        AttrDef::new("NoLine", AttrType::Int),
                        AttrDef::new("TicketCode", AttrType::Int),
                        AttrDef::new("Information", AttrType::Str),
                    ],
                ))),
            ),
        ],
    )
}

/// Schema of the doubly-nested `DASDBS-NSM-Connection` relation.
pub fn dnsm_connection_schema() -> RelSchema {
    RelSchema::new(
        "DASDBS-NSM-Connection",
        vec![
            AttrDef::new("RootKey", AttrType::Int),
            AttrDef::new(
                "ConnectionsOfStation",
                AttrType::Rel(Box::new(RelSchema::new(
                    "ConnectionsOfPlatform",
                    vec![
                        AttrDef::new("ParentKey", AttrType::Int),
                        AttrDef::new(
                            "Connections",
                            AttrType::Rel(Box::new(RelSchema::new(
                                "Connection",
                                vec![
                                    AttrDef::new("LineNr", AttrType::Int),
                                    AttrDef::new("KeyConnection", AttrType::Int),
                                    AttrDef::new("OidConnection", AttrType::Link),
                                    AttrDef::new("DepartureTimes", AttrType::Str),
                                ],
                            ))),
                        ),
                    ],
                ))),
            ),
        ],
    )
}

/// Schema of the nested `DASDBS-NSM-Sightseeing` relation.
pub fn dnsm_sightseeing_schema() -> RelSchema {
    RelSchema::new(
        "DASDBS-NSM-Sightseeing",
        vec![
            AttrDef::new("RootKey", AttrType::Int),
            AttrDef::new(
                "Sightseeings",
                AttrType::Rel(Box::new(RelSchema::new(
                    "SightseeingsOfStation",
                    vec![
                        AttrDef::new("SeeingNr", AttrType::Int),
                        AttrDef::new("Description", AttrType::Str),
                        AttrDef::new("Location", AttrType::Str),
                        AttrDef::new("History", AttrType::Str),
                        AttrDef::new("Remarks", AttrType::Str),
                    ],
                ))),
            ),
        ],
    )
}

/// The transformation-table entry: the addresses of the (up to) four tuples
/// that together store one object. Ordinals index the [`ObjectFile`]s.
#[derive(Clone, Copy, Debug)]
struct TransEntry {
    station: Rid,
    ordinal: usize,
}

/// Everything a reorganization replaces in one shot: the root heap, the
/// three nested object files and the transformation table that points into
/// them. Bundled behind one `Arc` so the adaptive-placement pass can build
/// a fresh copy off to the side and publish it atomically (racing readers
/// keep their old `Arc`; the old extents stay on disk, merely orphaned).
struct DnsmState {
    station: HeapFile,
    platform: ObjectFile,
    connection: ObjectFile,
    sightseeing: ObjectFile,
    /// The transformation table: `key → tuple addresses` (memory-resident,
    /// uncounted, exactly like the paper's).
    trans: HashMap<Key, TransEntry>,
}

/// The DASDBS-NSM store, generic over the buffer pool it runs on
/// ([`BufferPool`] by default; [`SharedPoolHandle`] for concurrent serving
/// via [`crate::make_shared_store`]).
pub struct DasdbsNsmStore<P: PageCache = BufferPool> {
    pool: P,
    /// Snapshot-swapped by `reorganize`; every op clones the `Arc` out once
    /// and works against that consistent placement.
    state: RwLock<Option<Arc<DnsmState>>>,
    refs: Vec<ObjRef>,
    station_bytes: u64,
}

/// Immutable borrows of everything the DASDBS-NSM read paths need besides
/// the pool (see [`NsmParts`](crate::nsm) for the idea).
struct DnsmParts<'a> {
    station: &'a HeapFile,
    platform: &'a ObjectFile,
    connection: &'a ObjectFile,
    sightseeing: &'a ObjectFile,
    trans: &'a HashMap<Key, TransEntry>,
}

impl DnsmParts<'_> {
    fn entry(&self, key: Key) -> Result<TransEntry> {
        self.trans
            .get(&key)
            .copied()
            .ok_or_else(|| CoreError::NotFound {
                what: format!("key {key}"),
            })
    }
}

/// Builds [`DnsmParts`] over one placement snapshot.
fn dnsm_parts(state: &DnsmState) -> DnsmParts<'_> {
    DnsmParts {
        station: &state.station,
        platform: &state.platform,
        connection: &state.connection,
        sightseeing: &state.sightseeing,
        trans: &state.trans,
    }
}

/// Reads and reassembles one full object through the transformation table:
/// four addressed tuple reads (the paper's query-1a path).
fn materialize_in(parts: &DnsmParts<'_>, pool: &mut impl PageCache, key: Key) -> Result<Tuple> {
    let e = parts.entry(key)?;
    let root_bytes = parts.station.read(pool, e.station)?;
    let root = decode(&root_bytes, &dnsm_station_schema())?;
    let p_bytes = parts.platform.read_full(pool, e.ordinal)?;
    let platforms = decode(&p_bytes, &dnsm_platform_schema())?;
    let c_bytes = parts.connection.read_full(pool, e.ordinal)?;
    let connections = decode(&c_bytes, &dnsm_connection_schema())?;
    let s_bytes = parts.sightseeing.read_full(pool, e.ordinal)?;
    let seeings = decode(&s_bytes, &dnsm_sightseeing_schema())?;
    Ok(DasdbsNsmStore::<BufferPool>::assemble(
        &root,
        &platforms,
        &connections,
        &seeings,
    ))
}

/// Query 1b: "only the root tuple of the object is selected based on a
/// value selection, whereupon we use the addresses in the index table to
/// retrieve all other data by address" (§4) — the one key-lookup primitive
/// behind both surfaces.
fn get_by_key_in(
    parts: &DnsmParts<'_>,
    pool: &mut impl PageCache,
    key: Key,
    proj: &Projection,
) -> Result<Tuple> {
    let mut found = false;
    parts.station.scan(pool, |_, bytes| {
        if let Ok(t) = decode(bytes, &dnsm_station_schema()) {
            if t.attr(0).and_then(Value::as_int) == Some(key) {
                found = true;
            }
        }
    })?;
    if !found {
        return Err(CoreError::NotFound {
            what: format!("key {key}"),
        });
    }
    let t = materialize_in(parts, pool, key)?;
    Ok(apply_station_proj(t, proj))
}

/// Full scan: materialize every object through the transformation table in
/// `refs` (OID) order — the one scan primitive behind both surfaces.
fn scan_all_in(
    parts: &DnsmParts<'_>,
    pool: &mut impl PageCache,
    refs: &[ObjRef],
    f: &mut dyn FnMut(&Tuple),
) -> Result<()> {
    for r in refs {
        let t = materialize_in(parts, pool, r.key)?;
        f(&t);
    }
    Ok(())
}

/// The DASDBS-NSM navigation step: one nested connection tuple per ref.
fn children_of_in(
    parts: &DnsmParts<'_>,
    pool: &mut impl PageCache,
    refs: &[ObjRef],
) -> Result<Vec<ObjRef>> {
    let schema = dnsm_connection_schema();
    let mut out = Vec::new();
    for r in refs {
        let e = parts.entry(r.key)?;
        let bytes = parts.connection.read_full(pool, e.ordinal)?;
        let t = decode(&bytes, &schema)?;
        if let Some(Value::Rel(groups)) = t.attr(1) {
            for g in groups {
                if let Some(Value::Rel(cs)) = g.attr(1) {
                    for c in cs {
                        out.push(ObjRef {
                            key: c.attr(1).and_then(Value::as_int).unwrap_or(0),
                            oid: c.attr(2).and_then(Value::as_link).unwrap_or(Oid(0)),
                        });
                    }
                }
            }
        }
    }
    Ok(out)
}

/// The DASDBS-NSM root update over `refs` — shared by the exclusive
/// (`&mut`) and concurrent (`&self`) surfaces. "With DASDBS-NSM only small
/// root tuples in the DASDBS-NSM-Station relation are updated, of which
/// there are many on a single page" (§5.3): each read-modify-write runs
/// under an exclusive latch on the root tuple's page so concurrent writers
/// sharing a page serialize without lost updates.
fn update_roots_in(
    parts: &DnsmParts<'_>,
    pool: &mut impl PageCache,
    refs: &[ObjRef],
    patch: &RootPatch,
) -> Result<()> {
    let schema = dnsm_station_schema();
    for r in refs {
        let e = parts.entry(r.key)?;
        let res = pool.with_latched(&[e.station.page], LatchMode::Exclusive, |pool| {
            let bytes = parts.station.read(pool, e.station)?;
            let mut t = decode(&bytes, &schema)?;
            let old = t.values[3].as_str().map(str::len).unwrap_or(0);
            if old != patch.new_name.len() {
                return Err(CoreError::Store(
                    starfish_pagestore::StoreError::SizeChanged {
                        old,
                        new: patch.new_name.len(),
                    },
                ));
            }
            t.values[3] = Value::Str(patch.new_name.clone());
            Ok(parts
                .station
                .update(pool, e.station, &encode(&t, &schema)?)?)
        });
        // Each root RMW is one op: commit (durable on WAL pools) or drop
        // its buffered images.
        match res {
            Ok(()) => pool.log_commit()?,
            Err(e) => {
                pool.log_abort();
                return Err(e);
            }
        }
    }
    Ok(())
}

/// The DASDBS-NSM root-record read: one addressed root tuple per ref.
fn root_records_in(
    parts: &DnsmParts<'_>,
    pool: &mut impl PageCache,
    refs: &[ObjRef],
) -> Result<Vec<Tuple>> {
    let schema = dnsm_station_schema();
    refs.iter()
        .map(|r| {
            let e = parts.entry(r.key)?;
            let bytes = parts.station.read(pool, e.station)?;
            let t = decode(&bytes, &schema)?;
            Ok(Tuple::new(vec![
                t.values[0].clone(),
                t.values[1].clone(),
                t.values[2].clone(),
                t.values[3].clone(),
                Value::Rel(vec![]),
                Value::Rel(vec![]),
            ]))
        })
        .collect()
}

impl DasdbsNsmStore {
    /// Creates an empty DASDBS-NSM store.
    pub fn new(config: StoreConfig) -> Self {
        let pool = config.buffer.build(SimDisk::new());
        Self::with_pool(&config, pool)
    }
}

impl<P: PageCache> DasdbsNsmStore<P> {
    /// Creates an empty DASDBS-NSM store over an externally built pool.
    pub fn with_pool(_config: &StoreConfig, pool: P) -> Self {
        DasdbsNsmStore {
            pool,
            state: RwLock::new(None),
            refs: Vec::new(),
            station_bytes: 0,
        }
    }

    /// The current placement snapshot (cheap `Arc` clone), or the
    /// empty-database error.
    fn state(&self) -> Result<Arc<DnsmState>> {
        placement::read_lock(&self.state)
            .clone()
            .ok_or_else(|| CoreError::NotFound {
                what: "empty database".into(),
            })
    }

    /// Builds the per-relation nested tuples for one station.
    fn nested_tuples(s: &Station) -> (Tuple, Tuple, Tuple, Tuple) {
        let root = Tuple::new(vec![
            Value::Int(s.key),
            Value::Int(s.platforms.len() as i32),
            Value::Int(s.sightseeings.len() as i32),
            Value::Str(s.name.clone()),
        ]);
        let platforms = Tuple::new(vec![
            Value::Int(s.key),
            Value::Rel(
                s.platforms
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        Tuple::new(vec![
                            Value::Int(i as i32),
                            Value::Int(p.platform_nr),
                            Value::Int(p.no_line),
                            Value::Int(p.ticket_code),
                            Value::Str(p.information.clone()),
                        ])
                    })
                    .collect(),
            ),
        ]);
        let connections = Tuple::new(vec![
            Value::Int(s.key),
            Value::Rel(
                s.platforms
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        Tuple::new(vec![
                            Value::Int(i as i32),
                            Value::Rel(
                                p.connections
                                    .iter()
                                    .map(|c| {
                                        Tuple::new(vec![
                                            Value::Int(c.line_nr),
                                            Value::Int(c.key_connection),
                                            Value::Link(c.oid_connection),
                                            Value::Str(c.departure_times.clone()),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ]);
        let sightseeings = Tuple::new(vec![
            Value::Int(s.key),
            Value::Rel(
                s.sightseeings
                    .iter()
                    .map(|g| {
                        Tuple::new(vec![
                            Value::Int(g.seeing_nr),
                            Value::Str(g.description.clone()),
                            Value::Str(g.location.clone()),
                            Value::Str(g.history.clone()),
                            Value::Str(g.remarks.clone()),
                        ])
                    })
                    .collect(),
            ),
        ]);
        (root, platforms, connections, sightseeings)
    }

    /// Reassembles the original nested `Station` tuple from the four
    /// relation tuples (the join, executed in memory with the addresses from
    /// the transformation table "to efficiently support the join execution").
    fn assemble(root: &Tuple, platforms: &Tuple, connections: &Tuple, seeings: &Tuple) -> Tuple {
        let mut conns_by_parent: HashMap<i32, Vec<Tuple>> = HashMap::new();
        if let Some(Value::Rel(groups)) = connections.attr(1) {
            for g in groups {
                let parent = g.attr(0).and_then(Value::as_int).unwrap_or(0);
                if let Some(Value::Rel(cs)) = g.attr(1) {
                    conns_by_parent
                        .entry(parent)
                        .or_default()
                        .extend(cs.iter().cloned());
                }
            }
        }
        let platform_tuples: Vec<Tuple> = platforms
            .attr(1)
            .and_then(Value::as_rel)
            .unwrap_or(&[])
            .iter()
            .map(|p| {
                let own = p.attr(0).and_then(Value::as_int).unwrap_or(0);
                let mut vals = p.values[1..].to_vec();
                vals.push(Value::Rel(conns_by_parent.remove(&own).unwrap_or_default()));
                Tuple::new(vals)
            })
            .collect();
        let seeing_tuples: Vec<Tuple> = seeings
            .attr(1)
            .and_then(Value::as_rel)
            .unwrap_or(&[])
            .to_vec();
        Tuple::new(vec![
            root.values[0].clone(),
            root.values[1].clone(),
            root.values[2].clone(),
            root.values[3].clone(),
            Value::Rel(platform_tuples),
            Value::Rel(seeing_tuples),
        ])
    }

    /// Reads and reassembles one full object through the transformation
    /// table: four addressed tuple reads (the paper's query-1a path).
    fn materialize(&mut self, key: Key) -> Result<Tuple> {
        let state = self.state()?;
        materialize_in(&dnsm_parts(&state), &mut self.pool, key)
    }
}

/// Per-object heat from the memory-resident transformation table alone: no
/// I/O, the addresses already name every page each object touches. Packed
/// cost: page-sharing tuples at their relation's current density, spanned
/// tuples keeping their extents.
fn dnsm_object_heats(
    state: &DnsmState,
    refs: &[ObjRef],
    heat: &HashMap<PageId, u64>,
) -> Result<Vec<ObjectHeat>> {
    let st_density = if refs.is_empty() {
        0.0
    } else {
        f64::from(state.station.page_count()) / refs.len() as f64
    };
    let files = [&state.platform, &state.connection, &state.sightseeing];
    let heap_shares: Vec<f64> = files
        .iter()
        .map(|f| {
            let residents = f.heap_resident_count();
            if residents > 0 {
                f64::from(f.heap_pages()) / residents as f64
            } else {
                0.0
            }
        })
        .collect();
    refs.iter()
        .enumerate()
        .map(|(ord, r)| {
            let e = state
                .trans
                .get(&r.key)
                .copied()
                .ok_or_else(|| CoreError::NotFound {
                    what: format!("key {}", r.key),
                })?;
            let mut pages = vec![e.station.page];
            let mut packed = st_density;
            for (f, share) in files.iter().zip(&heap_shares) {
                pages.extend(f.latch_pages_of(e.ordinal)?);
                packed += match f.addr(e.ordinal)? {
                    ObjAddr::Heap(_) => *share,
                    ObjAddr::Spanned(rec) => f64::from(rec.total_pages()),
                };
            }
            Ok(ObjectHeat::new(ord, pages, heat, packed))
        })
        .collect()
}

/// The adaptive-placement rewrite: materializes every object's four tuples
/// through the transformation table (counted reads), bulk-loads fresh
/// extents with the hot set first, and rebuilds the table. The object
/// files restore ordinal addressing afterwards, so old ordinals — and the
/// `TransEntry` values racing readers hold — stay valid; the old extents
/// stay on disk, orphaned.
fn rebuild_dnsm(
    state: &DnsmState,
    refs: &[ObjRef],
    pool: &mut impl PageCache,
) -> Result<(DnsmState, ReorgReport)> {
    let heat = placement::heat_map(pool.page_heat());
    let objs = dnsm_object_heats(state, refs, &heat)?;
    let ranking = placement::rank(&objs);
    let before = pool.snapshot();
    let mut st_recs = Vec::with_capacity(refs.len());
    let mut pl_objs = Vec::with_capacity(refs.len());
    let mut co_objs = Vec::with_capacity(refs.len());
    let mut se_objs = Vec::with_capacity(refs.len());
    for &ord in &ranking.order {
        let e = state.trans[&refs[ord].key];
        st_recs.push(state.station.read(pool, e.station)?);
        for (file, schema, out) in [
            (&state.platform, dnsm_platform_schema(), &mut pl_objs),
            (&state.connection, dnsm_connection_schema(), &mut co_objs),
            (&state.sightseeing, dnsm_sightseeing_schema(), &mut se_objs),
        ] {
            let bytes = file.read_full(pool, e.ordinal)?;
            out.push(encode_with_layout(&decode(&bytes, &schema)?, &schema)?);
        }
    }
    let (st, st_rids) = HeapFile::bulk_load(pool, "DASDBS-NSM-Station", &st_recs)?;
    let mut pl = ObjectFile::bulk_load(pool, "DASDBS-NSM-Platform", &pl_objs)?;
    let mut co = ObjectFile::bulk_load(pool, "DASDBS-NSM-Connection", &co_objs)?;
    let mut se = ObjectFile::bulk_load(pool, "DASDBS-NSM-Sightseeing", &se_objs)?;
    pl.restore_input_order(&ranking.order);
    co.restore_input_order(&ranking.order);
    se.restore_input_order(&ranking.order);
    // Position i of the bulk load holds the object of (old) ordinal
    // `order[i]`; the object files restored ordinal addressing above, so
    // every entry keeps its old ordinal and only the station RID changes.
    let trans: HashMap<Key, TransEntry> = ranking
        .order
        .iter()
        .zip(&st_rids)
        .map(|(&ord, rid)| {
            (
                refs[ord].key,
                TransEntry {
                    station: *rid,
                    ordinal: ord,
                },
            )
        })
        .collect();
    pool.flush_all()?;
    let spent = pool.snapshot() - before;
    let hot_after = {
        let mut pages: Vec<Vec<PageId>> = Vec::new();
        for &ord in ranking.hot_ordinals() {
            let mut ps = vec![trans[&refs[ord].key].station.page];
            ps.extend(pl.latch_pages_of(ord)?);
            ps.extend(co.latch_pages_of(ord)?);
            ps.extend(se.latch_pages_of(ord)?);
            pages.push(ps);
        }
        placement::distinct_pages(pages.iter().map(Vec::as_slice))
    };
    let report = ReorgReport {
        objects: refs.len(),
        moved: ranking
            .order
            .iter()
            .enumerate()
            .filter(|&(i, &ord)| i != ord)
            .count(),
        heat_total: ranking.stats.heat_total,
        hot_objects: ranking.stats.hot_objects,
        hot_pages_before: ranking.stats.hot_pages,
        hot_pages_after: hot_after,
        pages_read: spent.pages_read,
        pages_written: spent.pages_written,
    };
    Ok((
        DnsmState {
            station: st,
            platform: pl,
            connection: co,
            sightseeing: se,
            trans,
        },
        report,
    ))
}

impl<P: PageCache> ComplexObjectStore for DasdbsNsmStore<P> {
    fn model(&self) -> ModelKind {
        ModelKind::DasdbsNsm
    }

    fn load(&mut self, stations: &[Station]) -> Result<Vec<ObjRef>> {
        let mut st_recs = Vec::with_capacity(stations.len());
        let mut pl_objs = Vec::with_capacity(stations.len());
        let mut co_objs = Vec::with_capacity(stations.len());
        let mut se_objs = Vec::with_capacity(stations.len());
        self.refs.clear();
        for (i, s) in stations.iter().enumerate() {
            self.refs.push(ObjRef {
                oid: Oid(i as u32),
                key: s.key,
            });
            let (root, platforms, connections, seeings) = Self::nested_tuples(s);
            st_recs.push(encode(&root, &dnsm_station_schema())?);
            pl_objs.push(encode_with_layout(&platforms, &dnsm_platform_schema())?);
            co_objs.push(encode_with_layout(&connections, &dnsm_connection_schema())?);
            se_objs.push(encode_with_layout(&seeings, &dnsm_sightseeing_schema())?);
        }
        self.station_bytes = st_recs.iter().map(|r| r.len() as u64).sum();
        let (st, st_rids) = HeapFile::bulk_load(&mut self.pool, "DASDBS-NSM-Station", &st_recs)?;
        let pl = ObjectFile::bulk_load(&mut self.pool, "DASDBS-NSM-Platform", &pl_objs)?;
        let co = ObjectFile::bulk_load(&mut self.pool, "DASDBS-NSM-Connection", &co_objs)?;
        let se = ObjectFile::bulk_load(&mut self.pool, "DASDBS-NSM-Sightseeing", &se_objs)?;
        let trans = stations
            .iter()
            .enumerate()
            .zip(&st_rids)
            .map(|((i, s), rid)| {
                (
                    s.key,
                    TransEntry {
                        station: *rid,
                        ordinal: i,
                    },
                )
            })
            .collect();
        *placement::write_lock(&self.state) = Some(Arc::new(DnsmState {
            station: st,
            platform: pl,
            connection: co,
            sightseeing: se,
            trans,
        }));
        self.pool.clear_cache()?;
        self.pool.reset_stats();
        Ok(self.refs.clone())
    }

    fn object_count(&self) -> usize {
        self.refs.len()
    }

    fn get_by_oid(&mut self, oid: Oid, proj: &Projection) -> Result<Tuple> {
        let key = key_of_oid(&self.refs, oid)?;
        let t = self.materialize(key)?;
        Ok(apply_station_proj(t, proj))
    }

    fn get_by_key(&mut self, key: Key, proj: &Projection) -> Result<Tuple> {
        let state = self.state()?;
        get_by_key_in(&dnsm_parts(&state), &mut self.pool, key, proj)
    }

    fn scan_all(&mut self, f: &mut dyn FnMut(&Tuple)) -> Result<()> {
        let refs = self.refs.clone();
        let state = self.state()?;
        scan_all_in(&dnsm_parts(&state), &mut self.pool, &refs, f)
    }

    fn children_of(&mut self, refs: &[ObjRef]) -> Result<Vec<ObjRef>> {
        let state = self.state()?;
        children_of_in(&dnsm_parts(&state), &mut self.pool, refs)
    }

    fn root_records(&mut self, refs: &[ObjRef]) -> Result<Vec<Tuple>> {
        let state = self.state()?;
        root_records_in(&dnsm_parts(&state), &mut self.pool, refs)
    }

    fn update_roots(&mut self, refs: &[ObjRef], patch: &RootPatch) -> Result<()> {
        // The replace-tuple path on the root relation only (§5.3).
        let state = self.state()?;
        update_roots_in(&dnsm_parts(&state), &mut self.pool, refs, patch)
    }

    fn flush(&mut self) -> Result<()> {
        self.pool.flush_all().map_err(Into::into)
    }

    fn clear_cache(&mut self) -> Result<()> {
        self.pool.clear_cache().map_err(Into::into)
    }

    fn reset_stats(&mut self) {
        self.pool.reset_stats();
    }

    fn snapshot(&self) -> IoSnapshot {
        self.pool.snapshot()
    }

    fn buffer_stats(&self) -> BufferStats {
        self.pool.buffer_stats()
    }

    fn relation_info(&self) -> Vec<RelationInfo> {
        let Ok(state) = self.state() else {
            return Vec::new();
        };
        let objects = self.refs.len();
        let mut out = Vec::new();
        {
            let s_tuple = avg(self.station_bytes, objects as u64)
                + starfish_pagestore::SLOT_ENTRY_SIZE as f64;
            out.push(RelationInfo {
                name: "DASDBS-NSM-Station".into(),
                tuples_per_object: 1.0,
                total_tuples: objects as u64,
                avg_tuple_bytes: s_tuple,
                k: Some((starfish_pagestore::EFFECTIVE_PAGE_SIZE as f64 / s_tuple) as u32),
                p: None,
                m: state.station.page_count(),
            });
        }
        for file in [&state.platform, &state.connection, &state.sightseeing] {
            out.push(RelationInfo {
                name: file.name().to_string(),
                tuples_per_object: per_object(file.len() as u64, objects),
                total_tuples: file.len() as u64,
                avg_tuple_bytes: file.avg_stored_bytes(),
                k: if file.heap_resident_count() == file.len() && !file.is_empty() {
                    Some(
                        (starfish_pagestore::EFFECTIVE_PAGE_SIZE as f64 / file.avg_stored_bytes())
                            as u32,
                    )
                } else {
                    None
                },
                p: file.avg_spanned_pages(),
                m: file.total_pages(),
            });
        }
        out
    }

    fn database_pages(&self) -> u32 {
        self.pool.database_pages()
    }

    fn disk_checksum(&self) -> u64 {
        self.pool.disk_checksum()
    }

    fn placement_stats(&mut self) -> Result<PlacementStats> {
        // The transformation table names every page: metadata only, no I/O.
        let state = self.state()?;
        let heat = placement::heat_map(self.pool.page_heat());
        Ok(placement::rank(&dnsm_object_heats(&state, &self.refs, &heat)?).stats)
    }

    fn reorganize(&mut self) -> Result<ReorgReport> {
        let state = self.state()?;
        let (new_state, report) = rebuild_dnsm(&state, &self.refs, &mut self.pool)?;
        *placement::write_lock(&self.state) = Some(Arc::new(new_state));
        Ok(report)
    }
}

impl DasdbsNsmStore<SharedPoolHandle> {
    /// State snapshot plus a cloned pool handle, for `&self` read paths.
    fn parts_and_handle(&self) -> Result<(Arc<DnsmState>, SharedPoolHandle)> {
        Ok((self.state()?, self.pool.clone()))
    }
}

impl crate::ConcurrentObjectStore for DasdbsNsmStore<SharedPoolHandle> {
    fn shared_get_by_oid(&self, oid: Oid, proj: &Projection) -> Result<Tuple> {
        let key = key_of_oid(&self.refs, oid)?;
        let (state, mut pool) = self.parts_and_handle()?;
        let t = materialize_in(&dnsm_parts(&state), &mut pool, key)?;
        Ok(apply_station_proj(t, proj))
    }

    fn shared_get_by_key(&self, key: Key, proj: &Projection) -> Result<Tuple> {
        let (state, mut pool) = self.parts_and_handle()?;
        get_by_key_in(&dnsm_parts(&state), &mut pool, key, proj)
    }

    fn shared_scan_all(&self, f: &mut dyn FnMut(&Tuple)) -> Result<()> {
        let (state, mut pool) = self.parts_and_handle()?;
        scan_all_in(&dnsm_parts(&state), &mut pool, &self.refs, f)
    }

    fn shared_children_of(&self, refs: &[ObjRef]) -> Result<Vec<ObjRef>> {
        let (state, mut pool) = self.parts_and_handle()?;
        children_of_in(&dnsm_parts(&state), &mut pool, refs)
    }

    fn shared_root_records(&self, refs: &[ObjRef]) -> Result<Vec<Tuple>> {
        let (state, mut pool) = self.parts_and_handle()?;
        root_records_in(&dnsm_parts(&state), &mut pool, refs)
    }

    fn shared_update_roots(&self, refs: &[ObjRef], patch: &RootPatch) -> Result<()> {
        let (state, mut pool) = self.parts_and_handle()?;
        update_roots_in(&dnsm_parts(&state), &mut pool, refs, patch)
    }

    fn shared_flush(&self) -> Result<()> {
        self.pool.pool().flush_all().map_err(Into::into)
    }

    fn shared_clear_cache(&self) -> Result<()> {
        self.pool.pool().clear_cache().map_err(Into::into)
    }

    fn shard_stats(&self) -> Vec<BufferStats> {
        self.pool.pool().shard_stats()
    }

    fn simulate_crash(&self) {
        self.pool.pool().crash_volatile()
    }

    fn recover(&self) -> Result<usize> {
        self.pool.pool().recover().map_err(Into::into)
    }

    fn damage_log_tail(&self, bytes: u32) {
        self.pool.pool().truncate_log_tail(bytes)
    }

    fn shared_reorganize(&self) -> Result<ReorgReport> {
        let (state, mut pool) = self.parts_and_handle()?;
        // Copy + swap under the writer gate: no root update can slip in
        // between materializing an object and publishing its new home.
        // Readers race on the old snapshot (addressed reads are plain fixes
        // and pass the gate); the pass takes no exclusive latch group (see
        // the trait's lock-order note).
        self.pool.pool().with_writers_quiesced(|| {
            let (new_state, report) = rebuild_dnsm(&state, &self.refs, &mut pool)?;
            *placement::write_lock(&self.state) = Some(Arc::new(new_state));
            Ok(report)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starfish_nf2::station::{attr, Connection, Platform, Sightseeing};

    fn station(key: i32, n_seeing: usize, children: &[(Key, u32)]) -> Station {
        Station {
            key,
            name: format!("{key:0100}"),
            platforms: children
                .chunks(2)
                .enumerate()
                .map(|(i, chunk)| Platform {
                    platform_nr: i as i32,
                    no_line: 2,
                    ticket_code: 3,
                    information: "i".repeat(100),
                    connections: chunk
                        .iter()
                        .map(|&(k, o)| Connection {
                            line_nr: 7,
                            key_connection: k,
                            oid_connection: Oid(o),
                            departure_times: "t".repeat(100),
                        })
                        .collect(),
                })
                .collect(),
            sightseeings: (0..n_seeing)
                .map(|i| Sightseeing {
                    seeing_nr: i as i32,
                    description: "d".repeat(100),
                    location: "l".repeat(100),
                    history: "h".repeat(100),
                    remarks: "r".repeat(100),
                })
                .collect(),
        }
    }

    fn db() -> Vec<Station> {
        vec![
            station(20, 12, &[(21, 1), (22, 2), (23, 3)]), // sightseeing spans pages
            station(21, 0, &[(22, 2)]),
            station(22, 3, &[(20, 0), (23, 3)]),
            station(23, 1, &[]),
        ]
    }

    fn make() -> DasdbsNsmStore {
        let mut s = DasdbsNsmStore::new(StoreConfig::default());
        s.load(&db()).unwrap();
        s
    }

    #[test]
    fn get_by_oid_reassembles_exactly() {
        let mut s = make();
        for (i, expect) in db().iter().enumerate() {
            let t = s.get_by_oid(Oid(i as u32), &Projection::All).unwrap();
            assert_eq!(&Station::from_tuple(&t).unwrap(), expect);
        }
    }

    #[test]
    fn get_by_key_scans_root_then_uses_addresses() {
        let mut s = make();
        s.clear_cache().unwrap();
        s.reset_stats();
        let t = s.get_by_key(22, &Projection::All).unwrap();
        assert_eq!(Station::from_tuple(&t).unwrap(), db()[2]);
        let snap = s.snapshot();
        let root_m = s.state().unwrap().station.page_count() as u64;
        // Scan of the root relation + a handful of addressed reads.
        assert!(snap.pages_read >= root_m);
        assert!(snap.pages_read <= root_m + 8);
    }

    #[test]
    fn children_of_reads_connection_tuple_only() {
        let mut s = make();
        s.clear_cache().unwrap();
        s.reset_stats();
        let out = s
            .children_of(&[ObjRef {
                oid: Oid(0),
                key: 20,
            }])
            .unwrap();
        let expect: Vec<ObjRef> = db()[0]
            .child_refs()
            .into_iter()
            .map(|(key, oid)| ObjRef { oid, key })
            .collect();
        assert_eq!(out, expect);
        // One small nested tuple: a page or two, never a scan.
        assert!(s.snapshot().pages_read <= 3);
    }

    #[test]
    fn root_records_read_one_page_per_object() {
        let mut s = make();
        s.clear_cache().unwrap();
        s.reset_stats();
        let refs: Vec<ObjRef> = s.refs.clone();
        let recs = s.root_records(&refs).unwrap();
        assert_eq!(recs.len(), 4);
        // All 4 root tuples share the single station page here.
        assert_eq!(s.snapshot().pages_read, 1);
        assert_eq!(s.snapshot().fixes, 4);
    }

    #[test]
    fn update_roots_touches_only_station_relation() {
        let mut s = make();
        let refs = [ObjRef {
            oid: Oid(1),
            key: 21,
        }];
        s.root_records(&refs).unwrap();
        s.reset_stats();
        let new_name = "W".repeat(100);
        s.update_roots(
            &refs,
            &RootPatch {
                new_name: new_name.clone(),
            },
        )
        .unwrap();
        s.flush().unwrap();
        assert_eq!(s.snapshot().pages_written, 1, "one small root page");
        s.clear_cache().unwrap();
        let t = s.get_by_key(21, &Projection::All).unwrap();
        assert_eq!(
            t.attr(attr::NAME).unwrap().as_str(),
            Some(new_name.as_str())
        );
        // Structure untouched.
        assert_eq!(
            Station::from_tuple(&t).unwrap().platforms,
            db()[1].platforms
        );
    }

    #[test]
    fn scan_all_materializes_everything() {
        let mut s = make();
        let mut seen = Vec::new();
        s.scan_all(&mut |t| seen.push(Station::from_tuple(t).unwrap()))
            .unwrap();
        assert_eq!(seen, db());
    }

    #[test]
    fn relation_info_has_four_relations_one_tuple_per_object() {
        let s = make();
        let info = s.relation_info();
        assert_eq!(info.len(), 4);
        for ri in &info {
            assert!((ri.tuples_per_object - 1.0).abs() < 1e-9, "{}", ri.name);
            assert_eq!(ri.total_tuples, 4);
        }
        // The big sightseeing tuple must be page-spanning.
        let se = &info[3];
        assert_eq!(se.name, "DASDBS-NSM-Sightseeing");
        assert!(se.p.is_some(), "spanned sightseeing tuples report p");
    }

    #[test]
    fn missing_key_and_oid_error() {
        let mut s = make();
        assert!(matches!(
            s.get_by_key(999, &Projection::All),
            Err(CoreError::NotFound { .. })
        ));
        assert!(matches!(
            s.get_by_oid(Oid(44), &Projection::All),
            Err(CoreError::NotFound { .. })
        ));
    }

    #[test]
    fn reorganize_is_logically_invisible() {
        let mut s = DasdbsNsmStore::new(
            StoreConfig::default().heat(starfish_pagestore::HeatConfig::enabled()),
        );
        s.load(&db()).unwrap();
        // Skew the heat, check the stats are metadata-only, reorganize.
        for _ in 0..8 {
            s.get_by_oid(Oid(2), &Projection::All).unwrap();
        }
        s.reset_stats();
        let stats = s.placement_stats().unwrap();
        assert_eq!(s.snapshot().fixes, 0, "stats come from the table alone");
        assert!(stats.heat_total > 0);
        assert!(stats.hot_objects >= 1);
        let report = s.reorganize().unwrap();
        assert_eq!(report.objects, 4);
        assert!(report.pages_written > 0, "fresh extents were written");
        // Same answers, same OIDs, same keys, after the rewrite.
        for (i, expect) in db().iter().enumerate() {
            let t = s.get_by_oid(Oid(i as u32), &Projection::All).unwrap();
            assert_eq!(&Station::from_tuple(&t).unwrap(), expect);
        }
        let t = s.get_by_key(22, &Projection::All).unwrap();
        assert_eq!(Station::from_tuple(&t).unwrap(), db()[2]);
    }
}
