use starfish_nf2::Nf2Error;
use starfish_pagestore::StoreError;
use std::fmt;

/// Errors produced by the storage models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Data-model error (encoding, schema, projection).
    Nf2(Nf2Error),
    /// Substrate error (pages, slots, buffer).
    Store(StoreError),
    /// The operation is not supported by this storage model — e.g. query 1a
    /// (access by OID/address) under pure NSM: "With NSM we have no
    /// identifiers, so query 1a is not relevant" (§3.3).
    Unsupported {
        /// The model's paper name.
        model: &'static str,
        /// What was attempted.
        op: &'static str,
    },
    /// No object with the given OID or key exists.
    NotFound {
        /// Human-readable description of the missing object.
        what: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Nf2(e) => write!(f, "data model: {e}"),
            CoreError::Store(e) => write!(f, "storage: {e}"),
            CoreError::Unsupported { model, op } => {
                write!(f, "{model} does not support {op}")
            }
            CoreError::NotFound { what } => write!(f, "not found: {what}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Nf2(e) => Some(e),
            CoreError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<Nf2Error> for CoreError {
    fn from(e: Nf2Error) -> Self {
        CoreError::Nf2(e)
    }
}

impl From<StoreError> for CoreError {
    fn from(e: StoreError) -> Self {
        CoreError::Store(e)
    }
}
