//! Multi-node partitioning: the paper's closing hypothesis, §5.5.
//!
//! > "Notice, however, that in a distributed system the data skew might
//! > cause more effects, which could possibly be distinguishing for the
//! > storage models as well. For, with data skew the disk I/Os are likely
//! > to be less equally distributed over the nodes if we store a single
//! > object on a single node."
//!
//! [`PartitionedStore`] implements exactly that setup: a shared-nothing
//! cluster of `n` nodes, each running its own store of the same model over
//! its own disk and buffer, with **every object placed whole on one node**.
//! Navigation routes each object access to its owner; per-node I/O counters
//! expose the load distribution the paper speculates about (see the
//! `ext_distributed` harness experiment).
//!
//! # Concurrent serving
//!
//! Every node is a [`ConcurrentObjectStore`] over its own sharded
//! [`SharedBufferPool`](starfish_pagestore::SharedBufferPool) (optionally
//! with a per-node WAL and batched I/O engine — whatever the
//! [`StoreConfig`] carries applies to each node). The cluster itself
//! implements both surfaces:
//!
//! * the serial [`ComplexObjectStore`] methods route each op to its owner
//!   and run it to completion — with one shard per node this replays the
//!   paper's serial measurements counter for counter;
//! * the `&self` [`ConcurrentObjectStore`] methods do the same routing but
//!   are callable from N client threads at once; cross-node ops (scans,
//!   flushes) fan out and merge in ascending node order, so answers are
//!   deterministic.
//!
//! [`with_cluster_router`] adds the serving topology on top: one
//! [`Reactor`] worker pool **per node**, with [`ClusterRouter`] mapping
//! each request to its owning node's queue by [`PartitionedStore::node_of`]
//! — the shared-nothing analogue of the single-store reactor. Lock order is
//! unchanged (gate → shards ascending → disk → log, per node); the router
//! and reactor mutexes are client-side and are never held across a store
//! call, so they sit outside (above) the per-node order and cannot
//! participate in a cycle.

use crate::concurrent::{
    make_shared_store, ConcurrentObjectStore, QueryRequest, QueryResponse, Reactor, ShutdownGuard,
    Ticket,
};
use crate::traits::{ComplexObjectStore, ObjRef, RelationInfo, RootPatch};
use crate::{CoreError, ModelKind, Result, StoreConfig};
use starfish_nf2::station::Station;
use starfish_nf2::{Key, Oid, Projection, Tuple};
use starfish_pagestore::{BufferStats, IoSnapshot};
use std::collections::HashMap;

/// Object-to-node placement policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Object `i` goes to node `i mod n` (the balanced baseline).
    RoundRobin,
    /// Object goes to node `hash(key) mod n` (placement by key).
    HashKey,
}

impl Placement {
    fn node_of(&self, ordinal: usize, key: Key, nodes: usize) -> usize {
        match self {
            Placement::RoundRobin => ordinal % nodes,
            Placement::HashKey => {
                // FNV-1a over the key bytes: deterministic and spread-out.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in key.to_le_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
                (h % nodes as u64) as usize
            }
        }
    }
}

/// A shared-nothing cluster of single-model stores with whole-object
/// placement. Each node serves concurrently from its own sharded pool; see
/// the [module docs](self).
pub struct PartitionedStore {
    kind: ModelKind,
    placement: Placement,
    nodes: Vec<Box<dyn ConcurrentObjectStore>>,
    /// Global ordinal → (node, node-local ref).
    locate: Vec<(usize, ObjRef)>,
    key_to_global: HashMap<Key, usize>,
    refs: Vec<ObjRef>,
}

impl PartitionedStore {
    /// Builds an empty cluster of `n_nodes` stores of `kind`, one pool
    /// shard per node — the configuration that replays serial measurements
    /// counter for counter. Each node gets its own buffer of
    /// `config.buffer.pages` pages — pass a per-node budget (e.g. total/n)
    /// for memory-fair comparisons against a single node.
    pub fn new(kind: ModelKind, n_nodes: usize, placement: Placement, config: StoreConfig) -> Self {
        Self::with_shards(kind, n_nodes, placement, config, 1)
    }

    /// Builds an empty cluster whose nodes each run `shards_per_node`
    /// lock-striped pool shards — the concurrent-serving configuration.
    /// Whatever `config` enables (WAL, batched I/O engine) applies to
    /// every node independently.
    pub fn with_shards(
        kind: ModelKind,
        n_nodes: usize,
        placement: Placement,
        config: StoreConfig,
        shards_per_node: usize,
    ) -> Self {
        assert!(n_nodes > 0, "need at least one node");
        PartitionedStore {
            kind,
            placement,
            nodes: (0..n_nodes)
                .map(|_| make_shared_store(kind, config.clone(), shards_per_node.max(1)))
                .collect(),
            locate: Vec::new(),
            key_to_global: HashMap::new(),
            refs: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Which node owns global object `oid`.
    pub fn node_of(&self, oid: Oid) -> Result<usize> {
        self.locate
            .get(oid.0 as usize)
            .map(|(n, _)| *n)
            .ok_or_else(|| self.unknown_object(oid))
    }

    /// Per-node I/O snapshots — the load-distribution view of §5.5.
    pub fn node_snapshots(&self) -> Vec<IoSnapshot> {
        self.nodes.iter().map(|n| n.snapshot()).collect()
    }

    /// Per-node on-disk fingerprints, for byte-identity checks against a
    /// serially-driven oracle cluster (node order is placement order, so
    /// two equally-configured clusters compare element for element).
    pub fn node_checksums(&self) -> Vec<u64> {
        self.nodes.iter().map(|n| n.disk_checksum()).collect()
    }

    /// The out-of-range error for `oid`, naming the cluster shape so a
    /// mis-routed request is debuggable from the message alone.
    fn unknown_object(&self, oid: Oid) -> CoreError {
        CoreError::NotFound {
            what: format!(
                "object {oid}: cluster of {} nodes holds {} objects (#0..#{})",
                self.nodes.len(),
                self.locate.len(),
                self.locate.len().saturating_sub(1),
            ),
        }
    }

    fn local(&self, r: &ObjRef) -> Result<(usize, ObjRef)> {
        self.locate
            .get(r.oid.0 as usize)
            .copied()
            .ok_or_else(|| self.unknown_object(r.oid))
    }
}

impl ComplexObjectStore for PartitionedStore {
    fn model(&self) -> ModelKind {
        self.kind
    }

    fn load(&mut self, stations: &[Station]) -> Result<Vec<ObjRef>> {
        let n = self.nodes.len();
        let mut per_node: Vec<Vec<Station>> = vec![Vec::new(); n];
        let mut node_and_local_ordinal = Vec::with_capacity(stations.len());
        self.key_to_global.clear();
        self.refs.clear();
        for (i, s) in stations.iter().enumerate() {
            let node = self.placement.node_of(i, s.key, n);
            node_and_local_ordinal.push((node, per_node[node].len()));
            per_node[node].push(s.clone());
            self.key_to_global.insert(s.key, i);
            self.refs.push(ObjRef {
                oid: Oid(i as u32),
                key: s.key,
            });
        }
        let mut local_refs: Vec<Vec<ObjRef>> = Vec::with_capacity(n);
        for (node, store) in self.nodes.iter_mut().enumerate() {
            local_refs.push(store.load(&per_node[node])?);
        }
        self.locate = node_and_local_ordinal
            .iter()
            .map(|&(node, ord)| (node, local_refs[node][ord]))
            .collect();
        Ok(self.refs.clone())
    }

    fn object_count(&self) -> usize {
        self.refs.len()
    }

    // The serial surface routes exactly like the shared one — one code
    // path, so serial runs and 1-client routed runs are the same ops in
    // the same order.

    fn get_by_oid(&mut self, oid: Oid, proj: &Projection) -> Result<Tuple> {
        self.shared_get_by_oid(oid, proj)
    }

    fn get_by_key(&mut self, key: Key, proj: &Projection) -> Result<Tuple> {
        self.shared_get_by_key(key, proj)
    }

    fn scan_all(&mut self, f: &mut dyn FnMut(&Tuple)) -> Result<()> {
        self.shared_scan_all(f)
    }

    fn children_of(&mut self, refs: &[ObjRef]) -> Result<Vec<ObjRef>> {
        self.shared_children_of(refs)
    }

    fn root_records(&mut self, refs: &[ObjRef]) -> Result<Vec<Tuple>> {
        self.shared_root_records(refs)
    }

    fn update_roots(&mut self, refs: &[ObjRef], patch: &RootPatch) -> Result<()> {
        self.shared_update_roots(refs, patch)
    }

    fn flush(&mut self) -> Result<()> {
        self.shared_flush()
    }

    fn clear_cache(&mut self) -> Result<()> {
        self.shared_clear_cache()
    }

    fn reset_stats(&mut self) {
        for n in self.nodes.iter_mut() {
            n.reset_stats();
        }
    }

    fn snapshot(&self) -> IoSnapshot {
        // Every counter folds (WAL and engine counters included); the
        // queue-depth high-water keeps the max across nodes.
        self.nodes
            .iter()
            .map(|n| n.snapshot())
            .fold(IoSnapshot::default(), |mut acc, s| {
                acc.accumulate(&s);
                acc
            })
    }

    fn buffer_stats(&self) -> BufferStats {
        self.nodes
            .iter()
            .map(|n| n.buffer_stats())
            .fold(BufferStats::default(), |mut acc, s| {
                acc.accumulate(&s);
                acc
            })
    }

    fn relation_info(&self) -> Vec<RelationInfo> {
        self.nodes
            .iter()
            .enumerate()
            .flat_map(|(i, n)| {
                n.relation_info().into_iter().map(move |mut ri| {
                    ri.name = format!("node{i}/{}", ri.name);
                    ri
                })
            })
            .collect()
    }

    fn database_pages(&self) -> u32 {
        self.nodes.iter().map(|n| n.database_pages()).sum()
    }

    fn disk_checksum(&self) -> u64 {
        // Order-sensitive combination of the per-node fingerprints.
        self.nodes
            .iter()
            .fold(0u64, |acc, n| acc.rotate_left(1) ^ n.disk_checksum())
    }
}

impl ConcurrentObjectStore for PartitionedStore {
    fn shared_get_by_oid(&self, oid: Oid, proj: &Projection) -> Result<Tuple> {
        let (node, local) = self.local(&ObjRef { oid, key: 0 })?;
        self.nodes[node].shared_get_by_oid(local.oid, proj)
    }

    fn shared_get_by_key(&self, key: Key, proj: &Projection) -> Result<Tuple> {
        // A global catalog (uncounted, like the paper's address tables)
        // routes the value selection to the owning node; the node still
        // pays its model's local lookup cost.
        let global = *self
            .key_to_global
            .get(&key)
            .ok_or_else(|| CoreError::NotFound {
                what: format!("key {key}"),
            })?;
        let (node, _) = self.locate[global];
        self.nodes[node].shared_get_by_key(key, proj)
    }

    fn shared_scan_all(&self, f: &mut dyn FnMut(&Tuple)) -> Result<()> {
        // Fan out (each node scans once, ascending node order), then emit
        // in global object order — the deterministic cross-node merge.
        let n = self.nodes.len();
        let mut per_node: Vec<Vec<Tuple>> = Vec::with_capacity(n);
        for store in &self.nodes {
            let mut acc = Vec::new();
            store.shared_scan_all(&mut |t| acc.push(t.clone()))?;
            per_node.push(acc);
        }
        let mut cursors = vec![0usize; n];
        for &(node, _) in &self.locate {
            let t = &per_node[node][cursors[node]];
            cursors[node] += 1;
            f(t);
        }
        Ok(())
    }

    fn shared_children_of(&self, refs: &[ObjRef]) -> Result<Vec<ObjRef>> {
        // Route each object to its owner, preserving input order — in a
        // shared-nothing cluster every object access is a per-node request.
        let mut out = Vec::new();
        for r in refs {
            let (node, local) = self.local(r)?;
            out.extend(self.nodes[node].shared_children_of(&[local])?);
        }
        Ok(out)
    }

    fn shared_root_records(&self, refs: &[ObjRef]) -> Result<Vec<Tuple>> {
        refs.iter()
            .map(|r| {
                let (node, local) = self.local(r)?;
                let mut rec = self.nodes[node].shared_root_records(&[local])?;
                rec.pop().ok_or_else(|| self.unknown_object(r.oid))
            })
            .collect()
    }

    fn shared_update_roots(&self, refs: &[ObjRef], patch: &RootPatch) -> Result<()> {
        for r in refs {
            let (node, local) = self.local(r)?;
            self.nodes[node].shared_update_roots(&[local], patch)?;
        }
        Ok(())
    }

    fn shared_flush(&self) -> Result<()> {
        for n in &self.nodes {
            n.shared_flush()?;
        }
        Ok(())
    }

    fn shared_clear_cache(&self) -> Result<()> {
        for n in &self.nodes {
            n.shared_clear_cache()?;
        }
        Ok(())
    }

    fn shard_stats(&self) -> Vec<BufferStats> {
        // Ascending node order, each node's shards in shard order.
        self.nodes.iter().flat_map(|n| n.shard_stats()).collect()
    }

    fn simulate_crash(&self) {
        for n in &self.nodes {
            n.simulate_crash();
        }
    }

    fn recover(&self) -> Result<usize> {
        let mut replayed = 0;
        for n in &self.nodes {
            replayed += n.recover()?;
        }
        Ok(replayed)
    }

    fn damage_log_tail(&self, bytes: u32) {
        for n in &self.nodes {
            n.damage_log_tail(bytes);
        }
    }
}

// ---------------------------------------------------------------------------
// The cluster router: per-node reactor pools behind one dispatch surface
// ---------------------------------------------------------------------------

/// A completion token from [`ClusterRouter::submit`]-style calls: which
/// node's reactor holds the completion, plus its local ticket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClusterTicket {
    node: usize,
    ticket: Ticket,
}

impl ClusterTicket {
    /// The node whose reactor will complete this request.
    pub fn node(&self) -> usize {
        self.node
    }
}

/// The routed request-dispatch front-end over a [`PartitionedStore`]: one
/// [`Reactor`] (with its own worker pool) per node, requests mapped to
/// their owning node by [`PartitionedStore::node_of`] and translated into
/// node-local refs on the way in. Cross-node operations (scans, flushes,
/// grouped updates) fan out one ticket per node; waiting on the returned
/// tickets in order merges completions in ascending node order, which
/// keeps the answers deterministic.
///
/// Built by [`with_cluster_router`], which owns the worker lifetimes.
pub struct ClusterRouter<'a> {
    cluster: &'a PartitionedStore,
    reactors: Vec<Reactor<'a>>,
}

impl ClusterRouter<'_> {
    /// Number of nodes (= per-node reactors).
    pub fn node_count(&self) -> usize {
        self.reactors.len()
    }

    /// Submits a query-1a retrieval to the owning node.
    pub fn submit_get_by_oid(&self, oid: Oid, proj: Projection) -> Result<ClusterTicket> {
        let (node, local) = self.cluster.local(&ObjRef { oid, key: 0 })?;
        Ok(self.submit_to(
            node,
            QueryRequest::GetByOid {
                oid: local.oid,
                proj,
            },
        ))
    }

    /// Submits a query-1b retrieval to the owning node (global catalog
    /// lookup, like [`PartitionedStore::get_by_key`]).
    pub fn submit_get_by_key(&self, key: Key, proj: Projection) -> Result<ClusterTicket> {
        let global = *self
            .cluster
            .key_to_global
            .get(&key)
            .ok_or_else(|| CoreError::NotFound {
                what: format!("key {key}"),
            })?;
        let (node, _) = self.cluster.locate[global];
        Ok(self.submit_to(node, QueryRequest::GetByKey { key, proj }))
    }

    /// Submits one navigation step for `r` to its owning node. The
    /// completed [`QueryResponse::Refs`] are **global** refs (connection
    /// OIDs live in the global space), directly submittable for the next
    /// hop.
    pub fn submit_children_of(&self, r: ObjRef) -> Result<ClusterTicket> {
        let (node, local) = self.cluster.local(&r)?;
        Ok(self.submit_to(node, QueryRequest::ChildrenOf { refs: vec![local] }))
    }

    /// Submits the root-record fetch for `r` to its owning node.
    pub fn submit_root_record(&self, r: ObjRef) -> Result<ClusterTicket> {
        let (node, local) = self.cluster.local(&r)?;
        Ok(self.submit_to(node, QueryRequest::RootRecords { refs: vec![local] }))
    }

    /// Groups `refs` by owning node (preserving relative order) and
    /// submits one `UpdateRoots` per involved node. Wait on every returned
    /// ticket before depending on the patch.
    pub fn submit_update_roots(
        &self,
        refs: &[ObjRef],
        patch: &RootPatch,
    ) -> Result<Vec<ClusterTicket>> {
        let mut per_node: Vec<Vec<ObjRef>> = vec![Vec::new(); self.reactors.len()];
        for r in refs {
            let (node, local) = self.cluster.local(r)?;
            per_node[node].push(local);
        }
        Ok(per_node
            .into_iter()
            .enumerate()
            .filter(|(_, refs)| !refs.is_empty())
            .map(|(node, refs)| {
                self.submit_to(
                    node,
                    QueryRequest::UpdateRoots {
                        refs,
                        patch: patch.clone(),
                    },
                )
            })
            .collect())
    }

    /// Fans a full scan out to every node (one ticket per node, ascending
    /// node order). Each completes with its node-local
    /// [`QueryResponse::ScanCount`]; the cluster count is their sum.
    pub fn submit_scan_all(&self) -> Vec<ClusterTicket> {
        (0..self.reactors.len())
            .map(|node| self.submit_to(node, QueryRequest::ScanAll))
            .collect()
    }

    /// Fans a disconnect flush out to every node, ascending node order.
    pub fn submit_flush(&self) -> Vec<ClusterTicket> {
        (0..self.reactors.len())
            .map(|node| self.submit_to(node, QueryRequest::Flush))
            .collect()
    }

    /// Cold restart across the cluster, bypassing the queues: each node's
    /// pool quiesces its own writers, so this is safe while requests are
    /// in flight — they just go cold.
    pub fn clear_cache_all(&self) -> Result<()> {
        self.cluster.shared_clear_cache()
    }

    /// Redeems `t` if completed (`None` while queued or executing).
    pub fn poll_complete(&self, t: ClusterTicket) -> Option<Result<QueryResponse>> {
        self.reactors[t.node].poll_complete(t.ticket)
    }

    /// Blocks until `t` completes and redeems it.
    pub fn wait(&self, t: ClusterTicket) -> Result<QueryResponse> {
        self.reactors[t.node].wait(t.ticket)
    }

    /// Per-node submission-queue high-water marks (ascending node order) —
    /// how far clients ran ahead of each node's worker pool.
    pub fn queue_high_water(&self) -> Vec<u64> {
        self.reactors.iter().map(|r| r.queue_high_water()).collect()
    }

    fn submit_to(&self, node: usize, req: QueryRequest) -> ClusterTicket {
        ClusterTicket {
            node,
            ticket: self.reactors[node].submit(req),
        }
    }
}

/// Runs `f` against a [`ClusterRouter`] serving `cluster` with
/// `workers_per_node` event-loop threads **per node** (at least one each).
/// Requests still queued when `f` returns are drained before teardown;
/// unredeemed completions are dropped.
///
/// ```
/// use starfish_core::{
///     with_cluster_router, ComplexObjectStore, ModelKind, PartitionedStore, Placement,
///     QueryResponse, StoreConfig,
/// };
/// use starfish_nf2::{station::Station, Projection};
///
/// let mut cluster = PartitionedStore::new(
///     ModelKind::DasdbsNsm, 2, Placement::RoundRobin, StoreConfig::default(),
/// );
/// let db: Vec<Station> = (0..4)
///     .map(|k| Station { key: k, name: format!("S{k}"), platforms: vec![], sightseeings: vec![] })
///     .collect();
/// let refs = cluster.load(&db)?;
/// let answer = with_cluster_router(&cluster, 2, |router| {
///     let t = router.submit_get_by_oid(refs[3].oid, Projection::All)?;
///     router.wait(t)
/// })?;
/// assert!(matches!(answer, QueryResponse::Tuple(_)));
/// # Ok::<(), starfish_core::CoreError>(())
/// ```
pub fn with_cluster_router<R>(
    cluster: &PartitionedStore,
    workers_per_node: usize,
    f: impl FnOnce(&ClusterRouter<'_>) -> R,
) -> R {
    let router = ClusterRouter {
        cluster,
        reactors: cluster
            .nodes
            .iter()
            .map(|n| Reactor::new(n.as_ref()))
            .collect(),
    };
    std::thread::scope(|s| {
        for r in &router.reactors {
            for _ in 0..workers_per_node.max(1) {
                s.spawn(move || r.worker());
            }
        }
        let guards: Vec<_> = router.reactors.iter().map(ShutdownGuard).collect();
        let out = f(&router);
        drop(guards);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::make_store;
    use starfish_nf2::station::{Connection, Platform};

    fn station(key: Key, children: &[u32]) -> Station {
        Station {
            key,
            name: format!("{key:0100}"),
            platforms: vec![Platform {
                platform_nr: 1,
                no_line: 1,
                ticket_code: 0,
                information: "i".repeat(100),
                connections: children
                    .iter()
                    .map(|&c| Connection {
                        line_nr: 1,
                        key_connection: 100 + c as i32,
                        oid_connection: Oid(c),
                        departure_times: "t".repeat(100),
                    })
                    .collect(),
            }],
            sightseeings: vec![],
        }
    }

    fn db() -> Vec<Station> {
        (0..10)
            .map(|i| station(100 + i, &[(i as u32 + 1) % 10, (i as u32 + 5) % 10]))
            .collect()
    }

    fn cluster(kind: ModelKind, nodes: usize) -> PartitionedStore {
        let mut s = PartitionedStore::new(
            kind,
            nodes,
            Placement::RoundRobin,
            StoreConfig::with_buffer_pages(256),
        );
        s.load(&db()).unwrap();
        s
    }

    #[test]
    fn round_robin_places_evenly() {
        let s = cluster(ModelKind::DasdbsNsm, 3);
        let mut counts = [0usize; 3];
        for i in 0..10 {
            counts[s.node_of(Oid(i)).unwrap()] += 1;
        }
        assert_eq!(counts, [4, 3, 3]);
    }

    #[test]
    fn behaves_like_a_single_store_logically() {
        for kind in [ModelKind::Dsm, ModelKind::DasdbsDsm, ModelKind::DasdbsNsm] {
            let mut part = cluster(kind, 3);
            let mut single = make_store(kind, StoreConfig::with_buffer_pages(256));
            let refs = single.load(&db()).unwrap();
            // Same objects by OID and by key.
            for r in &refs {
                let a = part.get_by_oid(r.oid, &Projection::All).unwrap();
                let b = single.get_by_oid(r.oid, &Projection::All).unwrap();
                assert_eq!(a, b, "{kind} oid {}", r.oid);
                let a = part.get_by_key(r.key, &Projection::All).unwrap();
                assert_eq!(a, b, "{kind} key {}", r.key);
            }
            // Same navigation.
            let a = part.children_of(&refs).unwrap();
            let b = single.children_of(&refs).unwrap();
            assert_eq!(a, b, "{kind}");
            // Same root records.
            let a = part.root_records(&refs[..4]).unwrap();
            let b = single.root_records(&refs[..4]).unwrap();
            assert_eq!(a, b, "{kind}");
            // Same scan order.
            let mut sa = Vec::new();
            part.scan_all(&mut |t| sa.push(t.clone())).unwrap();
            let mut sb = Vec::new();
            single.scan_all(&mut |t| sb.push(t.clone())).unwrap();
            assert_eq!(sa, sb, "{kind}");
        }
    }

    #[test]
    fn updates_route_to_owners_and_persist() {
        let mut part = cluster(ModelKind::DasdbsNsm, 4);
        let refs = part.refs.clone();
        let new_name = "Z".repeat(100);
        part.update_roots(
            &refs[..5],
            &RootPatch {
                new_name: new_name.clone(),
            },
        )
        .unwrap();
        part.clear_cache().unwrap();
        for r in &refs[..5] {
            let t = part.get_by_oid(r.oid, &Projection::All).unwrap();
            assert_eq!(
                Station::from_tuple(&t).unwrap().name,
                new_name,
                "object {}",
                r.oid
            );
        }
    }

    #[test]
    fn per_node_counters_sum_to_the_aggregate() {
        let mut part = cluster(ModelKind::Dsm, 3);
        let refs = part.refs.clone();
        part.clear_cache().unwrap();
        part.reset_stats();
        part.children_of(&refs).unwrap();
        let per_node = part.node_snapshots();
        let total = part.snapshot();
        assert_eq!(
            per_node.iter().map(|s| s.pages_read).sum::<u64>(),
            total.pages_read
        );
        assert_eq!(per_node.iter().map(|s| s.fixes).sum::<u64>(), total.fixes);
        assert!(per_node.iter().filter(|s| s.pages_read > 0).count() >= 2);
    }

    #[test]
    fn hash_placement_is_deterministic_and_complete() {
        let mut a = PartitionedStore::new(
            ModelKind::DasdbsNsm,
            5,
            Placement::HashKey,
            StoreConfig::with_buffer_pages(128),
        );
        a.load(&db()).unwrap();
        let mut b = PartitionedStore::new(
            ModelKind::DasdbsNsm,
            5,
            Placement::HashKey,
            StoreConfig::with_buffer_pages(128),
        );
        b.load(&db()).unwrap();
        for i in 0..10 {
            assert_eq!(a.node_of(Oid(i)).unwrap(), b.node_of(Oid(i)).unwrap());
        }
        // Every object is reachable.
        for r in a.refs.clone() {
            a.get_by_oid(r.oid, &Projection::All).unwrap();
        }
    }

    #[test]
    fn single_node_cluster_degenerates_cleanly() {
        let mut part = cluster(ModelKind::DasdbsDsm, 1);
        assert_eq!(part.node_count(), 1);
        let refs = part.refs.clone();
        assert_eq!(part.children_of(&refs[..1]).unwrap().len(), 2);
        assert!(part.database_pages() > 0);
    }

    #[test]
    fn missing_objects_error() {
        let mut part = cluster(ModelKind::DasdbsNsm, 2);
        assert!(matches!(
            part.get_by_oid(Oid(99), &Projection::All),
            Err(CoreError::NotFound { .. })
        ));
        assert!(matches!(
            part.get_by_key(9999, &Projection::All),
            Err(CoreError::NotFound { .. })
        ));
    }

    /// The out-of-range message names the offending OID *and* the cluster
    /// shape, so a mis-routed request is debuggable from the error alone.
    #[test]
    fn node_of_error_names_oid_and_cluster_shape() {
        let part = cluster(ModelKind::DasdbsNsm, 3);
        let msg = part.node_of(Oid(99)).unwrap_err().to_string();
        assert!(msg.contains("object #99"), "missing oid: {msg}");
        assert!(msg.contains("3 nodes"), "missing node count: {msg}");
        assert!(msg.contains("10 objects"), "missing object count: {msg}");
    }

    /// The shared surface answers exactly like the serial one, from plain
    /// `&self` (as N client threads would call it).
    #[test]
    fn shared_surface_matches_serial_routing() {
        let mut part = cluster(ModelKind::DasdbsNsm, 3);
        let refs = part.refs.clone();
        let serial_children = part.children_of(&refs).unwrap();
        let serial_roots = part.root_records(&refs).unwrap();
        let shared = &part;
        assert_eq!(shared.shared_children_of(&refs).unwrap(), serial_children);
        assert_eq!(shared.shared_root_records(&refs).unwrap(), serial_roots);
        let mut n = 0usize;
        shared.shared_scan_all(&mut |_| n += 1).unwrap();
        assert_eq!(n, 10);
    }

    /// Routed dispatch: answers come back from the owning nodes, global
    /// refs stay valid across hops, fan-outs merge deterministically, and
    /// the per-node queue high-water is populated.
    #[test]
    fn router_matches_serial_cluster() {
        let mut part = cluster(ModelKind::DasdbsNsm, 3);
        let refs = part.refs.clone();
        let want_children = part.children_of(&refs).unwrap();
        let want_tuples: Vec<Tuple> = refs
            .iter()
            .map(|r| part.get_by_oid(r.oid, &Projection::All).unwrap())
            .collect();
        with_cluster_router(&part, 2, |router| {
            assert_eq!(router.node_count(), 3);
            // Retrieval by OID, many in flight at once.
            let tickets: Vec<ClusterTicket> = refs
                .iter()
                .map(|r| router.submit_get_by_oid(r.oid, Projection::All).unwrap())
                .collect();
            for (t, want) in tickets.into_iter().zip(&want_tuples) {
                assert_eq!(router.wait(t).unwrap(), QueryResponse::Tuple(want.clone()));
            }
            // Navigation: per-ref tickets waited in input order rebuild the
            // serial answer; the refs that come back are global.
            let mut got = Vec::new();
            let hops: Vec<ClusterTicket> = refs
                .iter()
                .map(|r| router.submit_children_of(*r).unwrap())
                .collect();
            for t in hops {
                match router.wait(t).unwrap() {
                    QueryResponse::Refs(r) => got.extend(r),
                    other => panic!("unexpected response {other:?}"),
                }
            }
            assert_eq!(got, want_children);
            // Cross-node scan fan-out sums to the cluster count.
            let mut scanned = 0usize;
            for t in router.submit_scan_all() {
                match router.wait(t).unwrap() {
                    QueryResponse::ScanCount(n) => scanned += n,
                    other => panic!("unexpected response {other:?}"),
                }
            }
            assert_eq!(scanned, 10);
            let hw = router.queue_high_water();
            assert_eq!(hw.len(), 3);
            assert!(hw.iter().any(|&d| d >= 1));
        });
    }

    /// Routed updates group by owning node, persist, and survive a flush —
    /// and an out-of-range submission fails fast with the shaped error.
    #[test]
    fn router_updates_and_errors() {
        let mut part = cluster(ModelKind::DasdbsNsm, 4);
        let refs = part.refs.clone();
        let new_name = "Y".repeat(100);
        with_cluster_router(&part, 1, |router| {
            let tickets = router
                .submit_update_roots(
                    &refs[..6],
                    &RootPatch {
                        new_name: new_name.clone(),
                    },
                )
                .unwrap();
            assert!(tickets.len() >= 2, "6 round-robin refs span >= 2 nodes");
            for t in tickets {
                assert_eq!(router.wait(t).unwrap(), QueryResponse::Done);
            }
            for t in router.submit_flush() {
                assert_eq!(router.wait(t).unwrap(), QueryResponse::Done);
            }
            let err = router.submit_children_of(ObjRef {
                oid: Oid(99),
                key: 0,
            });
            assert!(err.is_err());
        });
        part.clear_cache().unwrap();
        for r in &refs[..6] {
            let t = part.get_by_oid(r.oid, &Projection::All).unwrap();
            assert_eq!(Station::from_tuple(&t).unwrap().name, new_name);
        }
    }

    /// A concurrently-served cluster (N shards per node) leaves every node
    /// disk byte-identical to the serially-driven single-shard cluster.
    #[test]
    fn sharded_nodes_leave_disks_byte_identical() {
        let config = StoreConfig::with_buffer_pages(256);
        let mut serial = PartitionedStore::new(
            ModelKind::DasdbsNsm,
            3,
            Placement::RoundRobin,
            config.clone(),
        );
        serial.load(&db()).unwrap();
        let mut sharded = PartitionedStore::with_shards(
            ModelKind::DasdbsNsm,
            3,
            Placement::RoundRobin,
            config,
            4,
        );
        sharded.load(&db()).unwrap();
        let refs = serial.refs.clone();
        let patch = RootPatch {
            new_name: "W".repeat(100),
        };
        serial.update_roots(&refs[..7], &patch).unwrap();
        serial.flush().unwrap();
        sharded.update_roots(&refs[..7], &patch).unwrap();
        sharded.flush().unwrap();
        assert_eq!(serial.node_checksums(), sharded.node_checksums());
        assert_eq!(serial.node_checksums().len(), 3);
    }
}
