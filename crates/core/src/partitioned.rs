//! Multi-node partitioning: the paper's closing hypothesis, §5.5.
//!
//! > "Notice, however, that in a distributed system the data skew might
//! > cause more effects, which could possibly be distinguishing for the
//! > storage models as well. For, with data skew the disk I/Os are likely
//! > to be less equally distributed over the nodes if we store a single
//! > object on a single node."
//!
//! [`PartitionedStore`] implements exactly that setup: a shared-nothing
//! cluster of `n` nodes, each running its own store of the same model over
//! its own disk and buffer, with **every object placed whole on one node**.
//! Navigation routes each object access to its owner; per-node I/O counters
//! expose the load distribution the paper speculates about (see the
//! `ext_distributed` harness experiment).

use crate::traits::{ComplexObjectStore, ObjRef, RelationInfo, RootPatch};
use crate::{make_store, CoreError, ModelKind, Result, StoreConfig};
use starfish_nf2::station::Station;
use starfish_nf2::{Key, Oid, Projection, Tuple};
use starfish_pagestore::{BufferStats, IoSnapshot};
use std::collections::HashMap;

/// Object-to-node placement policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Object `i` goes to node `i mod n` (the balanced baseline).
    RoundRobin,
    /// Object goes to node `hash(key) mod n` (placement by key).
    HashKey,
}

impl Placement {
    fn node_of(&self, ordinal: usize, key: Key, nodes: usize) -> usize {
        match self {
            Placement::RoundRobin => ordinal % nodes,
            Placement::HashKey => {
                // FNV-1a over the key bytes: deterministic and spread-out.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in key.to_le_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
                (h % nodes as u64) as usize
            }
        }
    }
}

/// A shared-nothing cluster of single-model stores with whole-object
/// placement.
pub struct PartitionedStore {
    kind: ModelKind,
    placement: Placement,
    nodes: Vec<Box<dyn ComplexObjectStore>>,
    /// Global ordinal → (node, node-local ref).
    locate: Vec<(usize, ObjRef)>,
    key_to_global: HashMap<Key, usize>,
    refs: Vec<ObjRef>,
}

impl PartitionedStore {
    /// Builds an empty cluster of `n_nodes` stores of `kind`. Each node gets
    /// its own buffer of `config.buffer.pages` pages — pass a per-node
    /// budget (e.g. total/n) for memory-fair comparisons against a single
    /// node.
    pub fn new(kind: ModelKind, n_nodes: usize, placement: Placement, config: StoreConfig) -> Self {
        assert!(n_nodes > 0, "need at least one node");
        PartitionedStore {
            kind,
            placement,
            nodes: (0..n_nodes)
                .map(|_| make_store(kind, config.clone()))
                .collect(),
            locate: Vec::new(),
            key_to_global: HashMap::new(),
            refs: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Which node owns global object `oid`.
    pub fn node_of(&self, oid: Oid) -> Result<usize> {
        self.locate
            .get(oid.0 as usize)
            .map(|(n, _)| *n)
            .ok_or_else(|| CoreError::NotFound {
                what: format!("object {oid}"),
            })
    }

    /// Per-node I/O snapshots — the load-distribution view of §5.5.
    pub fn node_snapshots(&self) -> Vec<IoSnapshot> {
        self.nodes.iter().map(|n| n.snapshot()).collect()
    }

    fn local(&self, r: &ObjRef) -> Result<(usize, ObjRef)> {
        self.locate
            .get(r.oid.0 as usize)
            .copied()
            .ok_or_else(|| CoreError::NotFound {
                what: format!("object {}", r.oid),
            })
    }
}

impl ComplexObjectStore for PartitionedStore {
    fn model(&self) -> ModelKind {
        self.kind
    }

    fn load(&mut self, stations: &[Station]) -> Result<Vec<ObjRef>> {
        let n = self.nodes.len();
        let mut per_node: Vec<Vec<Station>> = vec![Vec::new(); n];
        let mut node_and_local_ordinal = Vec::with_capacity(stations.len());
        self.key_to_global.clear();
        self.refs.clear();
        for (i, s) in stations.iter().enumerate() {
            let node = self.placement.node_of(i, s.key, n);
            node_and_local_ordinal.push((node, per_node[node].len()));
            per_node[node].push(s.clone());
            self.key_to_global.insert(s.key, i);
            self.refs.push(ObjRef {
                oid: Oid(i as u32),
                key: s.key,
            });
        }
        let mut local_refs: Vec<Vec<ObjRef>> = Vec::with_capacity(n);
        for (node, store) in self.nodes.iter_mut().enumerate() {
            local_refs.push(store.load(&per_node[node])?);
        }
        self.locate = node_and_local_ordinal
            .iter()
            .map(|&(node, ord)| (node, local_refs[node][ord]))
            .collect();
        Ok(self.refs.clone())
    }

    fn object_count(&self) -> usize {
        self.refs.len()
    }

    fn get_by_oid(&mut self, oid: Oid, proj: &Projection) -> Result<Tuple> {
        let (node, local) = self.local(&ObjRef { oid, key: 0 })?;
        self.nodes[node].get_by_oid(local.oid, proj)
    }

    fn get_by_key(&mut self, key: Key, proj: &Projection) -> Result<Tuple> {
        // A global catalog (uncounted, like the paper's address tables)
        // routes the value selection to the owning node; the node still
        // pays its model's local lookup cost.
        let global = *self
            .key_to_global
            .get(&key)
            .ok_or_else(|| CoreError::NotFound {
                what: format!("key {key}"),
            })?;
        let (node, _) = self.locate[global];
        self.nodes[node].get_by_key(key, proj)
    }

    fn scan_all(&mut self, f: &mut dyn FnMut(&Tuple)) -> Result<()> {
        // Collect per node (each node scans once), then emit in global
        // object order.
        let n = self.nodes.len();
        let mut per_node: Vec<Vec<Tuple>> = Vec::with_capacity(n);
        for store in self.nodes.iter_mut() {
            let mut acc = Vec::new();
            store.scan_all(&mut |t| acc.push(t.clone()))?;
            per_node.push(acc);
        }
        let mut cursors = vec![0usize; n];
        for &(node, _) in &self.locate {
            let t = &per_node[node][cursors[node]];
            cursors[node] += 1;
            f(t);
        }
        Ok(())
    }

    fn children_of(&mut self, refs: &[ObjRef]) -> Result<Vec<ObjRef>> {
        // Route each object to its owner, preserving input order — in a
        // shared-nothing cluster every object access is a per-node request.
        let mut out = Vec::new();
        for r in refs {
            let (node, local) = self.local(r)?;
            out.extend(self.nodes[node].children_of(&[local])?);
        }
        Ok(out)
    }

    fn root_records(&mut self, refs: &[ObjRef]) -> Result<Vec<Tuple>> {
        refs.iter()
            .map(|r| {
                let (node, local) = self.local(r)?;
                let mut rec = self.nodes[node].root_records(&[local])?;
                rec.pop().ok_or_else(|| CoreError::NotFound {
                    what: format!("object {}", r.oid),
                })
            })
            .collect()
    }

    fn update_roots(&mut self, refs: &[ObjRef], patch: &RootPatch) -> Result<()> {
        for r in refs {
            let (node, local) = self.local(r)?;
            self.nodes[node].update_roots(&[local], patch)?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        for n in self.nodes.iter_mut() {
            n.flush()?;
        }
        Ok(())
    }

    fn clear_cache(&mut self) -> Result<()> {
        for n in self.nodes.iter_mut() {
            n.clear_cache()?;
        }
        Ok(())
    }

    fn reset_stats(&mut self) {
        for n in self.nodes.iter_mut() {
            n.reset_stats();
        }
    }

    fn snapshot(&self) -> IoSnapshot {
        self.nodes
            .iter()
            .map(|n| n.snapshot())
            .fold(IoSnapshot::default(), |mut acc, s| {
                acc.read_calls += s.read_calls;
                acc.pages_read += s.pages_read;
                acc.write_calls += s.write_calls;
                acc.pages_written += s.pages_written;
                acc.fixes += s.fixes;
                acc.hits += s.hits;
                acc.misses += s.misses;
                acc.latch_shared += s.latch_shared;
                acc.latch_exclusive += s.latch_exclusive;
                acc.latch_waits += s.latch_waits;
                acc
            })
    }

    fn buffer_stats(&self) -> BufferStats {
        self.nodes
            .iter()
            .map(|n| n.buffer_stats())
            .fold(BufferStats::default(), |mut acc, s| {
                acc.accumulate(&s);
                acc
            })
    }

    fn relation_info(&self) -> Vec<RelationInfo> {
        self.nodes
            .iter()
            .enumerate()
            .flat_map(|(i, n)| {
                n.relation_info().into_iter().map(move |mut ri| {
                    ri.name = format!("node{i}/{}", ri.name);
                    ri
                })
            })
            .collect()
    }

    fn database_pages(&self) -> u32 {
        self.nodes.iter().map(|n| n.database_pages()).sum()
    }

    fn disk_checksum(&self) -> u64 {
        // Order-sensitive combination of the per-node fingerprints.
        self.nodes
            .iter()
            .fold(0u64, |acc, n| acc.rotate_left(1) ^ n.disk_checksum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starfish_nf2::station::{Connection, Platform};

    fn station(key: Key, children: &[u32]) -> Station {
        Station {
            key,
            name: format!("{key:0100}"),
            platforms: vec![Platform {
                platform_nr: 1,
                no_line: 1,
                ticket_code: 0,
                information: "i".repeat(100),
                connections: children
                    .iter()
                    .map(|&c| Connection {
                        line_nr: 1,
                        key_connection: 100 + c as i32,
                        oid_connection: Oid(c),
                        departure_times: "t".repeat(100),
                    })
                    .collect(),
            }],
            sightseeings: vec![],
        }
    }

    fn db() -> Vec<Station> {
        (0..10)
            .map(|i| station(100 + i, &[(i as u32 + 1) % 10, (i as u32 + 5) % 10]))
            .collect()
    }

    fn cluster(kind: ModelKind, nodes: usize) -> PartitionedStore {
        let mut s = PartitionedStore::new(
            kind,
            nodes,
            Placement::RoundRobin,
            StoreConfig::with_buffer_pages(256),
        );
        s.load(&db()).unwrap();
        s
    }

    #[test]
    fn round_robin_places_evenly() {
        let s = cluster(ModelKind::DasdbsNsm, 3);
        let mut counts = [0usize; 3];
        for i in 0..10 {
            counts[s.node_of(Oid(i)).unwrap()] += 1;
        }
        assert_eq!(counts, [4, 3, 3]);
    }

    #[test]
    fn behaves_like_a_single_store_logically() {
        for kind in [ModelKind::Dsm, ModelKind::DasdbsDsm, ModelKind::DasdbsNsm] {
            let mut part = cluster(kind, 3);
            let mut single = make_store(kind, StoreConfig::with_buffer_pages(256));
            let refs = single.load(&db()).unwrap();
            // Same objects by OID and by key.
            for r in &refs {
                let a = part.get_by_oid(r.oid, &Projection::All).unwrap();
                let b = single.get_by_oid(r.oid, &Projection::All).unwrap();
                assert_eq!(a, b, "{kind} oid {}", r.oid);
                let a = part.get_by_key(r.key, &Projection::All).unwrap();
                assert_eq!(a, b, "{kind} key {}", r.key);
            }
            // Same navigation.
            let a = part.children_of(&refs).unwrap();
            let b = single.children_of(&refs).unwrap();
            assert_eq!(a, b, "{kind}");
            // Same root records.
            let a = part.root_records(&refs[..4]).unwrap();
            let b = single.root_records(&refs[..4]).unwrap();
            assert_eq!(a, b, "{kind}");
            // Same scan order.
            let mut sa = Vec::new();
            part.scan_all(&mut |t| sa.push(t.clone())).unwrap();
            let mut sb = Vec::new();
            single.scan_all(&mut |t| sb.push(t.clone())).unwrap();
            assert_eq!(sa, sb, "{kind}");
        }
    }

    #[test]
    fn updates_route_to_owners_and_persist() {
        let mut part = cluster(ModelKind::DasdbsNsm, 4);
        let refs = part.refs.clone();
        let new_name = "Z".repeat(100);
        part.update_roots(
            &refs[..5],
            &RootPatch {
                new_name: new_name.clone(),
            },
        )
        .unwrap();
        part.clear_cache().unwrap();
        for r in &refs[..5] {
            let t = part.get_by_oid(r.oid, &Projection::All).unwrap();
            assert_eq!(
                Station::from_tuple(&t).unwrap().name,
                new_name,
                "object {}",
                r.oid
            );
        }
    }

    #[test]
    fn per_node_counters_sum_to_the_aggregate() {
        let mut part = cluster(ModelKind::Dsm, 3);
        let refs = part.refs.clone();
        part.clear_cache().unwrap();
        part.reset_stats();
        part.children_of(&refs).unwrap();
        let per_node = part.node_snapshots();
        let total = part.snapshot();
        assert_eq!(
            per_node.iter().map(|s| s.pages_read).sum::<u64>(),
            total.pages_read
        );
        assert!(per_node.iter().filter(|s| s.pages_read > 0).count() >= 2);
    }

    #[test]
    fn hash_placement_is_deterministic_and_complete() {
        let mut a = PartitionedStore::new(
            ModelKind::DasdbsNsm,
            5,
            Placement::HashKey,
            StoreConfig::with_buffer_pages(128),
        );
        a.load(&db()).unwrap();
        let mut b = PartitionedStore::new(
            ModelKind::DasdbsNsm,
            5,
            Placement::HashKey,
            StoreConfig::with_buffer_pages(128),
        );
        b.load(&db()).unwrap();
        for i in 0..10 {
            assert_eq!(a.node_of(Oid(i)).unwrap(), b.node_of(Oid(i)).unwrap());
        }
        // Every object is reachable.
        for r in a.refs.clone() {
            a.get_by_oid(r.oid, &Projection::All).unwrap();
        }
    }

    #[test]
    fn single_node_cluster_degenerates_cleanly() {
        let mut part = cluster(ModelKind::DasdbsDsm, 1);
        assert_eq!(part.node_count(), 1);
        let refs = part.refs.clone();
        assert_eq!(part.children_of(&refs[..1]).unwrap().len(), 2);
        assert!(part.database_pages() > 0);
    }

    #[test]
    fn missing_objects_error() {
        let mut part = cluster(ModelKind::DasdbsNsm, 2);
        assert!(matches!(
            part.get_by_oid(Oid(99), &Projection::All),
            Err(CoreError::NotFound { .. })
        ));
        assert!(matches!(
            part.get_by_key(9999, &Projection::All),
            Err(CoreError::NotFound { .. })
        ));
    }
}
