//! Mixed heap/spanned storage for per-object payloads.
//!
//! DASDBS stores a nested tuple that fits on a page as a normal record
//! (several objects share a page); a larger tuple gets its own extent with
//! header (structure) pages disjoint from data pages (§4). `ObjectFile`
//! implements exactly that split for a sequence of encoded objects and is
//! shared by the direct models (whole `Station` objects) and DASDBS-NSM
//! (whose nested `Sightseeing` tuples can exceed a page).

use crate::{CoreError, Result};
use starfish_nf2::TupleLayout;
use starfish_pagestore::{
    HeapFile, PageCache, PageId, Rid, SpannedRecord, SpannedStore, EFFECTIVE_PAGE_SIZE,
    SLOT_ENTRY_SIZE,
};
use std::ops::Range;

/// Where one object's payload lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObjAddr {
    /// Small object: a record on a shared slotted page.
    Heap(Rid),
    /// Large object: a private extent of header + data pages.
    Spanned(SpannedRecord),
}

impl ObjAddr {
    /// Pages this object occupies (1 for heap residents — shared).
    pub fn pages(&self) -> u32 {
        match self {
            ObjAddr::Heap(_) => 1,
            ObjAddr::Spanned(r) => r.total_pages(),
        }
    }
}

/// What a read returned.
#[derive(Clone, Debug)]
pub enum ReadPayload {
    /// The full encoded object (heap residents and whole-object reads).
    Full(Vec<u8>),
    /// A sparse buffer (only the requested ranges are valid) plus the
    /// object's layout, as recovered from its header pages.
    Sparse(Vec<u8>, TupleLayout),
}

/// A sequence of objects stored heap-or-spanned, addressed by ordinal.
pub struct ObjectFile {
    name: String,
    heap: HeapFile,
    addrs: Vec<ObjAddr>,
    /// Page plans of aligned spanned residents, by ordinal. Absent for the
    /// packed layout.
    page_plans: Vec<Option<Vec<u32>>>,
    /// Total encoded bytes (for Table 2's average sizes).
    total_encoded: u64,
    /// Total header bytes of spanned residents.
    total_header: u64,
    spanned_count: u64,
}

impl ObjectFile {
    /// Threshold for heap residency: the encoded object plus its slot entry
    /// must fit a page's content area.
    pub fn fits_heap(encoded_len: usize) -> bool {
        encoded_len + SLOT_ENTRY_SIZE <= EFFECTIVE_PAGE_SIZE
    }

    /// Bulk-loads `objects` (encoded bytes + layout each). Small objects are
    /// clustered on a contiguous heap extent in input order; large objects
    /// get one contiguous extent each, allocated in input order, with the
    /// serialized layout as header content.
    pub fn bulk_load(
        pool: &mut impl PageCache,
        name: impl Into<String>,
        objects: &[(Vec<u8>, TupleLayout)],
    ) -> Result<ObjectFile> {
        Self::bulk_load_opts(pool, name, objects, false)
    }

    /// [`ObjectFile::bulk_load`] with a layout policy. With
    /// `aligned = true`, sub-tuples never straddle data-page boundaries
    /// (DASDBS's layout): pages carry *alignment waste* and objects occupy
    /// more of them — the "unprimed" behaviour of the paper's Tables 2/3,
    /// where the average station costs `p = 4` allocated pages while only
    /// ~3 are full.
    pub fn bulk_load_opts(
        pool: &mut impl PageCache,
        name: impl Into<String>,
        objects: &[(Vec<u8>, TupleLayout)],
        aligned: bool,
    ) -> Result<ObjectFile> {
        let name = name.into();
        let small: Vec<Vec<u8>> = objects
            .iter()
            .filter(|(b, _)| Self::fits_heap(b.len()))
            .map(|(b, _)| b.clone())
            .collect();
        let (heap, mut heap_rids) = HeapFile::bulk_load(pool, format!("{name}-heap"), &small)?;
        heap_rids.reverse(); // pop() yields them in input order
        let mut addrs = Vec::with_capacity(objects.len());
        let mut page_plans = Vec::with_capacity(objects.len());
        let mut total_encoded = 0u64;
        let mut total_header = 0u64;
        let mut spanned_count = 0u64;
        for (bytes, layout) in objects {
            total_encoded += bytes.len() as u64;
            if Self::fits_heap(bytes.len()) {
                addrs.push(ObjAddr::Heap(heap_rids.pop().expect("planned rid")));
                page_plans.push(None);
            } else {
                let header = layout.to_bytes();
                total_header += header.len() as u64;
                spanned_count += 1;
                if aligned {
                    let plan = subtuple_page_plan(layout, bytes.len());
                    let rec = SpannedStore::store_mapped(pool, &header, bytes, &plan)?;
                    addrs.push(ObjAddr::Spanned(rec));
                    page_plans.push(Some(plan));
                } else {
                    let rec = SpannedStore::store(pool, &header, bytes)?;
                    addrs.push(ObjAddr::Spanned(rec));
                    page_plans.push(None);
                }
            }
        }
        Ok(ObjectFile {
            name,
            heap,
            addrs,
            page_plans,
            total_encoded,
            total_header,
            spanned_count,
        })
    }

    fn plan_of(&self, ord: usize) -> Option<&[u32]> {
        self.page_plans.get(ord).and_then(|p| p.as_deref())
    }

    /// Restores ordinal addressing after a reordered rebuild: the file was
    /// bulk-loaded with the object at position `i` being original ordinal
    /// `order[i]` (a permutation), and afterwards `addr(ord)` must again
    /// resolve the *original* ordinal — so a reorganization changes where
    /// objects live, never what an OID means.
    pub fn restore_input_order(&mut self, order: &[usize]) {
        assert_eq!(order.len(), self.addrs.len(), "order must be a permutation");
        let mut paired: Vec<(usize, ObjAddr, Option<Vec<u32>>)> = order
            .iter()
            .copied()
            .zip(std::mem::take(&mut self.addrs))
            .zip(std::mem::take(&mut self.page_plans))
            .map(|((ord, addr), plan)| (ord, addr, plan))
            .collect();
        paired.sort_by_key(|&(ord, _, _)| ord);
        for (i, (ord, addr, plan)) in paired.into_iter().enumerate() {
            assert_eq!(ord, i, "order must be a permutation of 0..len");
            self.addrs.push(addr);
            self.page_plans.push(plan);
        }
    }

    /// Pages of the shared heap extent (0 when every object is spanned).
    pub fn heap_pages(&self) -> u32 {
        if self.heap_resident_count() > 0 {
            self.heap.page_count()
        } else {
            0
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True if no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Address of object `ord`.
    pub fn addr(&self, ord: usize) -> Result<ObjAddr> {
        self.addrs
            .get(ord)
            .copied()
            .ok_or_else(|| CoreError::NotFound {
                what: format!("{} object #{ord}", self.name),
            })
    }

    /// The pages an access to object `ord` can touch — the page set its
    /// group latches cover. Heap residents return their single shared
    /// slotted page; spanned residents their whole private extent (header
    /// and data pages).
    pub fn latch_pages_of(&self, ord: usize) -> Result<Vec<PageId>> {
        match self.spanned_latch_pages_of(ord)? {
            Some(extent) => Ok(extent),
            None => match self.addr(ord)? {
                ObjAddr::Heap(rid) => Ok(vec![rid.page]),
                ObjAddr::Spanned(_) => unreachable!("spanned handled above"),
            },
        }
    }

    /// Like [`ObjectFile::latch_pages_of`], but only for spanned residents —
    /// heap residents return `None` because their single-page accesses are
    /// already atomic under the pool's shard mutex and need no group latch.
    pub fn spanned_latch_pages_of(&self, ord: usize) -> Result<Option<Vec<PageId>>> {
        Ok(match self.addr(ord)? {
            ObjAddr::Heap(_) => None,
            ObjAddr::Spanned(rec) => Some(
                (0..rec.total_pages())
                    .map(|i| rec.first.offset(i))
                    .collect(),
            ),
        })
    }

    /// Total pages used by the file (heap pages + all spanned extents).
    pub fn total_pages(&self) -> u32 {
        let heap = if self.heap_resident_count() > 0 {
            self.heap.page_count()
        } else {
            0
        };
        heap + self
            .addrs
            .iter()
            .map(|a| match a {
                ObjAddr::Heap(_) => 0,
                ObjAddr::Spanned(r) => r.total_pages(),
            })
            .sum::<u32>()
    }

    /// Number of heap-resident (small) objects.
    pub fn heap_resident_count(&self) -> usize {
        self.addrs
            .iter()
            .filter(|a| matches!(a, ObjAddr::Heap(_)))
            .count()
    }

    /// Average encoded size. For Table 2 parity, spanned objects also count
    /// their header bytes (the structure DASDBS stores with the tuple), and
    /// heap residents their slot entry.
    pub fn avg_stored_bytes(&self) -> f64 {
        if self.addrs.is_empty() {
            return 0.0;
        }
        let slot_bytes = (self.heap_resident_count() * SLOT_ENTRY_SIZE) as u64;
        (self.total_encoded + self.total_header + slot_bytes) as f64 / self.addrs.len() as f64
    }

    /// Average pages per object among spanned residents (measured `p`).
    pub fn avg_spanned_pages(&self) -> Option<f64> {
        if self.spanned_count == 0 {
            return None;
        }
        let pages: u32 = self
            .addrs
            .iter()
            .map(|a| match a {
                ObjAddr::Heap(_) => 0,
                ObjAddr::Spanned(r) => r.total_pages(),
            })
            .sum();
        Some(pages as f64 / self.spanned_count as f64)
    }

    /// Reads the whole object: header pages then all data pages for spanned
    /// residents (the DSM access path — "the pages that store the tuple will
    /// not be shared by other tuples" and are all retrieved), or the single
    /// shared page for heap residents.
    pub fn read_full(&self, pool: &mut impl PageCache, ord: usize) -> Result<Vec<u8>> {
        match self.addr(ord)? {
            ObjAddr::Heap(rid) => Ok(self.heap.read(pool, rid)?),
            ObjAddr::Spanned(rec) => {
                // DSM materializes the whole object: structure + all data.
                let _header = SpannedStore::read_header(pool, &rec)?;
                Ok(match self.plan_of(ord) {
                    Some(plan) => SpannedStore::read_data_mapped(pool, &rec, plan)?,
                    None => SpannedStore::read_data(pool, &rec)?,
                })
            }
        }
    }

    /// Reads only the pages needed for the byte ranges selected by
    /// `ranges_of` (the DASDBS-DSM access path): header pages first to
    /// recover the layout, then the covering data pages.
    ///
    /// Heap residents return [`ReadPayload::Full`] — they occupy one shared
    /// page, so there is nothing to save (§5.3: small objects "do not have
    /// separate header and data pages any longer").
    pub fn read_projected(
        &self,
        pool: &mut impl PageCache,
        ord: usize,
        ranges_of: impl FnOnce(&TupleLayout) -> Vec<Range<u32>>,
    ) -> Result<ReadPayload> {
        match self.addr(ord)? {
            ObjAddr::Heap(rid) => Ok(ReadPayload::Full(self.heap.read(pool, rid)?)),
            ObjAddr::Spanned(rec) => {
                let header = SpannedStore::read_header(pool, &rec)?;
                let layout = TupleLayout::from_bytes(&header)?;
                let ranges = ranges_of(&layout);
                let sparse = match self.plan_of(ord) {
                    Some(plan) => SpannedStore::read_data_ranges_mapped(pool, &rec, plan, &ranges)?,
                    None => SpannedStore::read_data_ranges(pool, &rec, &ranges)?,
                };
                Ok(ReadPayload::Sparse(sparse, layout))
            }
        }
    }

    /// Replaces the whole object in place (same encoded size): the paper's
    /// `replace (set of) tuples` update. Spanned residents dirty **all**
    /// their pages, header included — the entire tuple is replaced.
    pub fn rewrite_full(
        &self,
        pool: &mut impl PageCache,
        ord: usize,
        bytes: &[u8],
        layout: &TupleLayout,
    ) -> Result<()> {
        match self.addr(ord)? {
            ObjAddr::Heap(rid) => Ok(self.heap.update(pool, rid, bytes)?),
            ObjAddr::Spanned(rec) => {
                let header = layout.to_bytes();
                if header.len() != rec.header_len as usize {
                    return Err(CoreError::Store(
                        starfish_pagestore::StoreError::SizeChanged {
                            old: rec.header_len as usize,
                            new: header.len(),
                        },
                    ));
                }
                // Dirty the header pages (replaced along with the tuple).
                for i in 0..rec.header_pages {
                    let lo = i as usize * EFFECTIVE_PAGE_SIZE;
                    let hi = (lo + EFFECTIVE_PAGE_SIZE).min(header.len());
                    pool.with_page_mut(rec.first.offset(i), |p| {
                        if lo < hi {
                            p[starfish_pagestore::PAGE_HEADER_SIZE
                                ..starfish_pagestore::PAGE_HEADER_SIZE + hi - lo]
                                .copy_from_slice(&header[lo..hi]);
                        }
                    })?;
                }
                match self.plan_of(ord) {
                    Some(plan) => SpannedStore::rewrite_data_mapped(pool, &rec, plan, bytes)?,
                    None => SpannedStore::rewrite_data(pool, &rec, bytes)?,
                }
                Ok(())
            }
        }
    }

    /// Patches a byte range of the object's data in place, touching only the
    /// covering page(s) — the footprint of a DASDBS `change attribute`
    /// operation. For heap residents the single page is patched.
    pub fn patch_range(
        &self,
        pool: &mut impl PageCache,
        ord: usize,
        range: Range<u32>,
        bytes: &[u8],
    ) -> Result<()> {
        match self.addr(ord)? {
            ObjAddr::Heap(rid) => {
                let mut rec = self.heap.read(pool, rid)?;
                let (lo, hi) = (range.start as usize, range.end as usize);
                if hi > rec.len() || bytes.len() != hi - lo {
                    return Err(CoreError::Store(starfish_pagestore::StoreError::Corrupt {
                        detail: format!("patch {range:?} beyond record of {} bytes", rec.len()),
                    }));
                }
                rec[lo..hi].copy_from_slice(bytes);
                Ok(self.heap.update(pool, rid, &rec)?)
            }
            ObjAddr::Spanned(rec) => {
                match self.plan_of(ord) {
                    Some(plan) => {
                        SpannedStore::write_data_range_mapped(pool, &rec, plan, range, bytes)?;
                    }
                    None => SpannedStore::write_data_range(pool, &rec, range, bytes)?,
                }
                Ok(())
            }
        }
    }
}

/// Computes the DASDBS-style page plan for an encoded object: sub-tuples
/// (and the sub-relation address tables and atomic regions between them)
/// never straddle a data-page boundary when they fit on a page. Units larger
/// than a page split at raw page boundaries, like any long field would.
pub fn subtuple_page_plan(layout: &TupleLayout, data_len: usize) -> Vec<u32> {
    let mut units: Vec<(u32, u32)> = Vec::new(); // (start, len)
    collect_units(layout, &mut units);
    let eff = EFFECTIVE_PAGE_SIZE as u32;
    let mut starts = vec![0u32];
    let mut page_start = 0u32;
    for &(u_start, u_len) in &units {
        let used = u_start - page_start;
        if u_len <= eff && used + u_len > eff {
            starts.push(u_start);
            page_start = u_start;
        }
        // Oversized units (or exact fits) spill at raw page boundaries.
        let u_end = u_start + u_len;
        while u_end - page_start > eff {
            let brk = page_start + eff;
            starts.push(brk);
            page_start = brk;
        }
    }
    debug_assert!(
        units.last().map(|&(s, l)| (s + l) as usize) == Some(data_len) || units.is_empty()
    );
    let _ = data_len;
    starts
}

/// Enumerates the atomic placement units of a tuple in byte order: its
/// header+offset region, each atomic attribute, each sub-relation address
/// table, and each sub-tuple (as a whole — DASDBS keeps addressable
/// sub-tuples on one page). Sub-tuples that cannot fit a page are recursed
/// into so their own children can still be kept whole.
fn collect_units(layout: &TupleLayout, units: &mut Vec<(u32, u32)>) {
    let hdr = layout.header_range();
    units.push((hdr.start, hdr.end - hdr.start));
    for a in &layout.attrs {
        if a.tuples.is_empty() {
            units.push((a.start, a.len));
        } else {
            let table_end = a.tuples.first().map(|t| t.start).unwrap_or(a.start + a.len);
            units.push((a.start, table_end - a.start));
            for t in &a.tuples {
                if t.len as usize > EFFECTIVE_PAGE_SIZE {
                    collect_units(t, units);
                } else {
                    units.push((t.start, t.len));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starfish_nf2::{encode_with_layout, station::station_schema, station::Station};
    use starfish_pagestore::{BufferPool, SimDisk};

    fn pool() -> BufferPool {
        BufferPool::new(SimDisk::new(), 512)
    }

    fn small_station(key: i32) -> Station {
        Station {
            key,
            name: "n".repeat(100),
            platforms: vec![],
            sightseeings: vec![],
        }
    }

    fn big_station(key: i32) -> Station {
        use starfish_nf2::station::Sightseeing;
        Station {
            key,
            name: "n".repeat(100),
            platforms: vec![],
            sightseeings: (0..10)
                .map(|i| Sightseeing {
                    seeing_nr: i,
                    description: "d".repeat(100),
                    location: "l".repeat(100),
                    history: "h".repeat(100),
                    remarks: "r".repeat(100),
                })
                .collect(),
        }
    }

    fn encode_all(stations: &[Station]) -> Vec<(Vec<u8>, TupleLayout)> {
        let schema = station_schema();
        stations
            .iter()
            .map(|s| encode_with_layout(&s.to_tuple(), &schema).unwrap())
            .collect()
    }

    #[test]
    fn mixed_residency() {
        let mut p = pool();
        let objs = encode_all(&[small_station(1), big_station(2), small_station(3)]);
        let f = ObjectFile::bulk_load(&mut p, "DSM-Station", &objs).unwrap();
        assert_eq!(f.len(), 3);
        assert!(matches!(f.addr(0).unwrap(), ObjAddr::Heap(_)));
        assert!(matches!(f.addr(1).unwrap(), ObjAddr::Spanned(_)));
        assert!(matches!(f.addr(2).unwrap(), ObjAddr::Heap(_)));
        assert_eq!(f.heap_resident_count(), 2);
        assert!(f.avg_spanned_pages().unwrap() >= 2.0);
        assert!(f.addr(3).is_err());
    }

    #[test]
    fn read_full_roundtrips_both_kinds() {
        let mut p = pool();
        let objs = encode_all(&[small_station(1), big_station(2)]);
        let f = ObjectFile::bulk_load(&mut p, "x", &objs).unwrap();
        p.clear_cache().unwrap();
        assert_eq!(f.read_full(&mut p, 0).unwrap(), objs[0].0);
        assert_eq!(f.read_full(&mut p, 1).unwrap(), objs[1].0);
    }

    #[test]
    fn projected_read_touches_fewer_pages_for_large_objects() {
        use starfish_nf2::station::proj_root_record;
        let mut p = pool();
        let objs = encode_all(&[big_station(7)]);
        let f = ObjectFile::bulk_load(&mut p, "x", &objs).unwrap();

        p.clear_cache().unwrap();
        p.reset_stats();
        f.read_full(&mut p, 0).unwrap();
        let full_pages = p.snapshot().pages_read;

        p.clear_cache().unwrap();
        p.reset_stats();
        let payload = f
            .read_projected(&mut p, 0, |l| proj_root_record().byte_ranges(l))
            .unwrap();
        let proj_pages = p.snapshot().pages_read;
        assert!(
            proj_pages < full_pages,
            "projection must fetch fewer pages ({proj_pages} vs {full_pages})"
        );
        // The sparse payload decodes the root record correctly.
        match payload {
            ReadPayload::Sparse(bytes, layout) => {
                let t = starfish_nf2::decode_projected(
                    &bytes,
                    &station_schema(),
                    &layout,
                    &proj_root_record(),
                )
                .unwrap();
                assert_eq!(t.attr(0).unwrap().as_int(), Some(7));
            }
            ReadPayload::Full(_) => panic!("large object must come back sparse"),
        }
    }

    #[test]
    fn rewrite_full_dirties_whole_extent() {
        let mut p = pool();
        let objs = encode_all(&[big_station(5)]);
        let f = ObjectFile::bulk_load(&mut p, "x", &objs).unwrap();
        let ObjAddr::Spanned(rec) = f.addr(0).unwrap() else {
            panic!("spanned")
        };
        p.clear_cache().unwrap();
        f.read_full(&mut p, 0).unwrap();
        p.reset_stats();
        f.rewrite_full(&mut p, 0, &objs[0].0, &objs[0].1).unwrap();
        p.flush_all().unwrap();
        assert_eq!(
            p.snapshot().pages_written,
            rec.total_pages() as u64,
            "replace-tuple writes header + data pages"
        );
    }

    #[test]
    fn patch_range_touches_single_page() {
        let mut p = pool();
        let objs = encode_all(&[big_station(5), small_station(6)]);
        let f = ObjectFile::bulk_load(&mut p, "x", &objs).unwrap();
        p.clear_cache().unwrap();
        f.read_full(&mut p, 0).unwrap();
        f.read_full(&mut p, 1).unwrap();
        p.reset_stats();
        f.patch_range(&mut p, 0, 30..34, &[1, 2, 3, 4]).unwrap();
        f.patch_range(&mut p, 1, 30..34, &[9, 9, 9, 9]).unwrap();
        p.flush_all().unwrap();
        assert_eq!(p.snapshot().pages_written, 2, "one covering page each");
        // Verify the patches landed.
        p.clear_cache().unwrap();
        assert_eq!(&f.read_full(&mut p, 0).unwrap()[30..34], &[1, 2, 3, 4]);
        assert_eq!(&f.read_full(&mut p, 1).unwrap()[30..34], &[9, 9, 9, 9]);
    }

    #[test]
    fn restore_input_order_keeps_ordinals_meaningful() {
        let mut p = pool();
        let stations = [small_station(1), big_station(2), small_station(3)];
        let objs = encode_all(&stations);
        // Rebuild in the order 2, 0, 1 (as a heat-ranked pass would), then
        // restore: addr(ord) must resolve the original object again.
        let order = [2usize, 0, 1];
        let reordered: Vec<_> = order.iter().map(|&i| objs[i].clone()).collect();
        let mut f = ObjectFile::bulk_load(&mut p, "x", &reordered).unwrap();
        f.restore_input_order(&order);
        p.clear_cache().unwrap();
        for (ord, (bytes, _)) in objs.iter().enumerate() {
            assert_eq!(&f.read_full(&mut p, ord).unwrap(), bytes, "ordinal {ord}");
        }
    }

    #[test]
    fn table2_accounting() {
        let mut p = pool();
        let objs = encode_all(&[small_station(1), small_station(2)]);
        let f = ObjectFile::bulk_load(&mut p, "x", &objs).unwrap();
        let expect = (objs[0].0.len() + objs[1].0.len() + 2 * SLOT_ENTRY_SIZE) as f64 / 2.0;
        assert!((f.avg_stored_bytes() - expect).abs() < 1e-9);
        assert_eq!(f.total_pages(), f.heap.page_count());
        assert!(f.avg_spanned_pages().is_none());
    }
}
