//! Adaptive placement: heat-ranked reorganization (the DSTC-style online
//! reclustering pass).
//!
//! The buffer pool's opt-in heat tracker (`starfish_pagestore::HeatConfig`)
//! counts per-page accesses with periodic decay. This module turns that
//! page-level signal into an **object-level ranking**: each object's heat is
//! the summed heat of the distinct pages its tuples occupy, the *hot set* is
//! the smallest heat-ranked prefix covering at least 7/8 of the total heat,
//! and a reorganization rewrites every relation with objects in heat order —
//! hot objects first, so they pack onto (and stay on) the fewest pages the
//! buffer has to retain, cold extents pushed behind them.
//!
//! A reorganization is **logically invisible**: OIDs, keys and every query
//! answer are unchanged (the stores restore ordinal addressing after the
//! rewrite); only the physical page placement — and therefore the miss
//! pattern under a skewed workload — improves. The I/Os the pass itself
//! spends are counted like any other access and reported in
//! [`ReorgReport`], so callers (the harness's cost-model trigger) can weigh
//! spend against the predicted win.

use starfish_pagestore::PageId;
use std::collections::{BTreeSet, HashMap};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Fraction of the total heat the hot set must cover: 7/8.
const HOT_COVERAGE_NUM: u64 = 7;
const HOT_COVERAGE_DEN: u64 = 8;

/// Placement statistics derived from the current heat map — the raw
/// material of the cost-model trigger (predict the win *before* spending
/// reorganization I/Os).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlacementStats {
    /// Total tracked heat over all pages the store's objects occupy.
    pub heat_total: u64,
    /// Size of the hot set: the smallest heat-ranked object prefix covering
    /// ≥ 7/8 of `heat_total`. Zero when nothing is tracked.
    pub hot_objects: usize,
    /// Distinct pages the hot set currently touches — the hot span the
    /// buffer must retain *today* (the cost walker's `hot_span_pages`
    /// before adaptation).
    pub hot_pages: u32,
    /// Estimated distinct pages the hot set would occupy after packing
    /// (page-sharing tuples at their relation's current density, spanned
    /// tuples keeping their extents) — the hot span *after* adaptation.
    pub hot_packed_pages: u32,
}

/// What one reorganization pass did, and what it cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReorgReport {
    /// Objects in the store.
    pub objects: usize,
    /// Objects whose placement rank changed (0 = the rewrite was an
    /// identity copy, e.g. with heat tracking off).
    pub moved: usize,
    /// Total tracked heat at the time of the pass.
    pub heat_total: u64,
    /// Size of the hot set the pass co-located.
    pub hot_objects: usize,
    /// Distinct pages the hot set touched before the pass.
    pub hot_pages_before: u32,
    /// Distinct pages the hot set touches after the pass.
    pub hot_pages_after: u32,
    /// Pages read by the pass itself (counted I/O the adaptation spent).
    pub pages_read: u64,
    /// Pages written by the pass itself (new extents + flush).
    pub pages_written: u64,
}

/// One object's placement facts: where it lives and how hot it is.
pub(crate) struct ObjectHeat {
    /// Ordinal (OID) of the object.
    pub ord: usize,
    /// Summed heat of the distinct pages the object's tuples occupy.
    pub heat: u64,
    /// The distinct pages themselves.
    pub pages: Vec<PageId>,
    /// Pages this object would cost inside a packed hot region (fractional
    /// for page-sharing tuples: `1/k` of a page each).
    pub packed_cost: f64,
}

impl ObjectHeat {
    /// Builds one entry: dedups `pages` and sums their tracked heat.
    pub(crate) fn new(
        ord: usize,
        pages: Vec<PageId>,
        heat: &HashMap<PageId, u64>,
        packed_cost: f64,
    ) -> ObjectHeat {
        let distinct: BTreeSet<PageId> = pages.into_iter().collect();
        let h = distinct
            .iter()
            .map(|p| heat.get(p).copied().unwrap_or(0))
            .sum();
        ObjectHeat {
            ord,
            heat: h,
            pages: distinct.into_iter().collect(),
            packed_cost,
        }
    }
}

/// A heat-descending placement order plus the stats it implies.
pub(crate) struct HeatRanking {
    /// `order[i]` = the ordinal placed at position `i` (hottest first; ties
    /// keep ordinal order, so an unheated store ranks as the identity).
    pub order: Vec<usize>,
    pub stats: PlacementStats,
}

impl HeatRanking {
    /// Ordinals of the hot set (the ranked prefix).
    pub(crate) fn hot_ordinals(&self) -> &[usize] {
        &self.order[..self.stats.hot_objects]
    }
}

/// The tracked heat map as a lookup table.
pub(crate) fn heat_map(pairs: Vec<(PageId, u64)>) -> HashMap<PageId, u64> {
    pairs.into_iter().collect()
}

/// Ranks objects by heat (descending, ties by ordinal) and derives the
/// hot-set statistics. `objs` must be ordered by ordinal.
pub(crate) fn rank(objs: &[ObjectHeat]) -> HeatRanking {
    let heat_total: u64 = objs.iter().map(|o| o.heat).sum();
    let mut by_heat: Vec<usize> = (0..objs.len()).collect();
    by_heat.sort_by_key(|&i| (std::cmp::Reverse(objs[i].heat), objs[i].ord));
    let mut hot_objects = 0;
    if heat_total > 0 {
        let mut cum = 0u64;
        for &i in &by_heat {
            hot_objects += 1;
            cum += objs[i].heat;
            if cum * HOT_COVERAGE_DEN >= heat_total * HOT_COVERAGE_NUM {
                break;
            }
        }
    }
    let hot = &by_heat[..hot_objects];
    let hot_pages = distinct_pages(hot.iter().map(|&i| objs[i].pages.as_slice()));
    let hot_packed_pages = hot
        .iter()
        .map(|&i| objs[i].packed_cost)
        .sum::<f64>()
        .ceil()
        .max(0.0) as u32;
    HeatRanking {
        order: by_heat.iter().map(|&i| objs[i].ord).collect(),
        stats: PlacementStats {
            heat_total,
            hot_objects,
            hot_pages,
            hot_packed_pages,
        },
    }
}

/// Number of distinct pages across the given page lists.
pub(crate) fn distinct_pages<'a>(lists: impl Iterator<Item = &'a [PageId]>) -> u32 {
    let mut set: BTreeSet<PageId> = BTreeSet::new();
    for l in lists {
        set.extend(l.iter().copied());
    }
    set.len() as u32
}

/// Poison-tolerant read lock: a panicked reorganization never wedges the
/// store (the swap is all-or-nothing, so the guarded state stays valid).
pub(crate) fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

/// Poison-tolerant write lock (see [`read_lock`]).
pub(crate) fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(ord: usize, heat_val: u64, pages: &[u32]) -> ObjectHeat {
        let map: HashMap<PageId, u64> = pages.iter().map(|&p| (PageId(p), heat_val)).collect();
        ObjectHeat::new(
            ord,
            pages.iter().map(|&p| PageId(p)).collect(),
            &map,
            pages.len() as f64,
        )
    }

    #[test]
    fn unheated_store_ranks_as_identity() {
        let objs: Vec<ObjectHeat> = (0..4).map(|i| obj(i, 0, &[i as u32])).collect();
        let r = rank(&objs);
        assert_eq!(r.order, vec![0, 1, 2, 3]);
        assert_eq!(r.stats, PlacementStats::default());
        assert!(r.hot_ordinals().is_empty());
    }

    #[test]
    fn hot_prefix_covers_seven_eighths() {
        // Heats 70, 10, 10, 10: the first object alone covers 70/100 < 7/8,
        // two cover 80/100 < 87.5, three cover 90/100 ≥ 87.5.
        let heats = [70u64, 10, 10, 10];
        let objs: Vec<ObjectHeat> = heats
            .iter()
            .enumerate()
            .map(|(i, &h)| obj(i, h, &[i as u32]))
            .collect();
        let r = rank(&objs);
        assert_eq!(r.stats.heat_total, 100);
        assert_eq!(r.stats.hot_objects, 3);
        assert_eq!(r.order[0], 0, "hottest first");
        assert_eq!(r.stats.hot_pages, 3);
    }

    #[test]
    fn ranking_is_heat_descending_with_ordinal_ties() {
        let heats = [5u64, 9, 5, 20];
        let objs: Vec<ObjectHeat> = heats
            .iter()
            .enumerate()
            .map(|(i, &h)| obj(i, h, &[i as u32]))
            .collect();
        let r = rank(&objs);
        assert_eq!(r.order, vec![3, 1, 0, 2], "ties keep ordinal order");
    }

    #[test]
    fn object_heat_dedups_pages() {
        let map: HashMap<PageId, u64> = [(PageId(7), 5u64)].into();
        let o = ObjectHeat::new(0, vec![PageId(7), PageId(7), PageId(7)], &map, 1.0);
        assert_eq!(o.heat, 5, "shared page counted once");
        assert_eq!(o.pages.len(), 1);
    }

    #[test]
    fn distinct_pages_unions_across_objects() {
        let a = [PageId(1), PageId(2)];
        let b = [PageId(2), PageId(3)];
        assert_eq!(distinct_pages([a.as_slice(), b.as_slice()].into_iter()), 3);
    }
}
