//! The concurrent (multi-client) query surface.
//!
//! The paper measures a single client; the [`ComplexObjectStore`] trait
//! mirrors that with `&mut self` everywhere. Serving N clients from one
//! buffer pool needs a `&self` read path instead — this module provides it:
//!
//! * [`ConcurrentObjectStore`] extends [`ComplexObjectStore`] with `&self`
//!   retrieval/navigation operations (`shared_get_by_oid`,
//!   `shared_children_of`, `shared_root_records`) that N threads can call
//!   concurrently over one store;
//! * [`make_shared_store`] builds any of the five storage models over a
//!   lock-striped [`SharedBufferPool`](starfish_pagestore::SharedBufferPool)
//!   with K shards.
//!
//! **Updates are concurrent too** (since the latch layer,
//! [`starfish_pagestore::latch`]): [`ConcurrentObjectStore::shared_update_roots`]
//! applies root patches from any number of threads over disjoint update
//! partitions — every model's write path runs under per-page latches
//! (exclusive group over the object's pages for writers, shared for
//! multi-page readers), so concurrent readers never observe torn objects
//! and disjoint-object writers proceed in parallel.
//! [`ConcurrentObjectStore::shared_flush`] cooperates with in-flight
//! writers through the pool's quiesce gate. Only bulk loading stays
//! `&mut`-single-writer.
//!
//! The query *answers*, the buffer-fix counts and the post-flush on-disk
//! bytes of the concurrent surface are identical to the serial surface's —
//! only physical reads and writes may differ with the interleaving
//! (`tests/concurrent_differential.rs` and
//! `tests/concurrent_writer_differential.rs` pin those invariants, exactly
//! like the cross-policy differential does for replacement policies).

use crate::dasdbs_nsm::DasdbsNsmStore;
use crate::direct::DirectStore;
use crate::nsm::NsmStore;
use crate::traits::{ComplexObjectStore, ObjRef, RootPatch};
use crate::{ModelKind, Result, StoreConfig};
use starfish_nf2::{Key, Oid, Projection, Tuple};
use starfish_pagestore::{BufferStats, SharedPoolHandle};

/// A storage model whose retrieval/navigation surface can be shared across
/// threads (`&self`), on top of the usual exclusive surface.
///
/// Implementations exist for every model built by [`make_shared_store`];
/// the `&self` methods answer exactly like their `&mut` counterparts
/// ([`ComplexObjectStore::get_by_oid`], [`ComplexObjectStore::children_of`],
/// [`ComplexObjectStore::root_records`]) and count fixes identically — they
/// run the same code over a cloned handle to the same shared pool.
pub trait ConcurrentObjectStore: ComplexObjectStore + Send + Sync {
    /// Query 1a retrieval by OID, callable from N threads concurrently.
    fn shared_get_by_oid(&self, oid: Oid, proj: &Projection) -> Result<Tuple>;

    /// Query 1b retrieval by key attribute, callable concurrently. Answers
    /// and counts fixes exactly like [`ComplexObjectStore::get_by_key`].
    fn shared_get_by_key(&self, key: Key, proj: &Projection) -> Result<Tuple>;

    /// Query 1c full scan, callable concurrently. Materializes every object
    /// in the same order (and with the same fixes) as
    /// [`ComplexObjectStore::scan_all`].
    fn shared_scan_all(&self, f: &mut dyn FnMut(&Tuple)) -> Result<()>;

    /// Navigation step (children references), callable concurrently.
    fn shared_children_of(&self, refs: &[ObjRef]) -> Result<Vec<ObjRef>>;

    /// Root records of `refs`, callable concurrently.
    fn shared_root_records(&self, refs: &[ObjRef]) -> Result<Vec<Tuple>>;

    /// Queries 3a/3b root update over the `&self` write surface, callable
    /// from N threads concurrently on **disjoint ref partitions**. Each
    /// object's read-modify-write runs under an exclusive per-page latch
    /// group, so writers on different objects proceed in parallel, writers
    /// on shared pages serialize, and concurrent readers never observe a
    /// torn object. Counts the exact fixes and I/O of
    /// [`ComplexObjectStore::update_roots`] — they run the same code.
    fn shared_update_roots(&self, refs: &[ObjRef], patch: &RootPatch) -> Result<()>;

    /// Database-disconnect flush through the shared pool: quiesces
    /// in-flight writers (the pool's gate) and writes all deferred pages in
    /// grouped calls. Safe to call while readers keep running.
    fn shared_flush(&self) -> Result<()>;

    /// Cold restart through the shared pool (query 1a's per-retrieval cache
    /// clear). Quiesces writers like [`shared_flush`](Self::shared_flush);
    /// safe to interleave with concurrent reads (they just go cold).
    fn shared_clear_cache(&self) -> Result<()>;

    /// Per-shard buffer counters of the underlying pool, for
    /// load-imbalance analysis.
    fn shard_stats(&self) -> Vec<BufferStats>;

    /// Number of shards in the underlying pool.
    fn shard_count(&self) -> usize {
        self.shard_stats().len()
    }

    /// Simulated crash: drops the pool's volatile state (cache frames,
    /// unflushed WAL buffers) without flushing. The data disk and the
    /// durable log survive. Committed updates are recoverable via
    /// [`recover`](Self::recover); uncommitted ones are gone — exactly a
    /// process kill. Quiesces in-flight writers first so no latched update
    /// is torn mid-op.
    fn simulate_crash(&self);

    /// Recovery-on-open: replays the committed tail of the WAL onto the
    /// data disk and checkpoints. Returns the number of pages replayed
    /// (always 0 with the WAL disabled). Call after
    /// [`simulate_crash`](Self::simulate_crash), before serving.
    fn recover(&self) -> Result<usize>;
}

/// Builds an empty store of `kind` over a [`SharedPoolHandle`] with
/// `shards` lock-striped shards, ready for concurrent serving.
///
/// With `shards == 1` the pool runs the identical replacement and call
/// grouping logic as the single-threaded [`starfish_pagestore::BufferPool`],
/// so a one-client run reproduces the serial measurements counter for
/// counter.
///
/// ```
/// use starfish_core::{make_shared_store, ModelKind, StoreConfig};
/// use starfish_nf2::{station::Station, Projection};
///
/// let mut store = make_shared_store(ModelKind::DasdbsNsm, StoreConfig::default(), 4);
/// let db = vec![Station { key: 1, name: "A".into(), platforms: vec![], sightseeings: vec![] }];
/// let refs = store.load(&db)?;
/// // Reads go through the `&self` surface — shareable across threads.
/// let tuple = store.shared_get_by_oid(refs[0].oid, &Projection::All)?;
/// assert_eq!(Station::from_tuple(&tuple).unwrap(), db[0]);
/// # Ok::<(), starfish_core::CoreError>(())
/// ```
pub fn make_shared_store(
    kind: ModelKind,
    config: StoreConfig,
    shards: usize,
) -> Box<dyn ConcurrentObjectStore> {
    let pool = SharedPoolHandle::new(config.buffer, shards);
    match kind {
        ModelKind::Dsm => Box::new(DirectStore::with_pool(false, &config, pool)),
        ModelKind::DasdbsDsm => Box::new(DirectStore::with_pool(true, &config, pool)),
        ModelKind::Nsm => Box::new(NsmStore::with_pool(false, &config, pool)),
        ModelKind::NsmIndexed => Box::new(NsmStore::with_pool(true, &config, pool)),
        ModelKind::DasdbsNsm => Box::new(DasdbsNsmStore::with_pool(&config, pool)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_model_sharded() {
        for kind in ModelKind::all() {
            for shards in [1, 4] {
                let store = make_shared_store(kind, StoreConfig::default(), shards);
                assert_eq!(store.model(), kind);
                assert_eq!(store.object_count(), 0);
                assert_eq!(store.shard_count(), shards);
            }
        }
    }
}
