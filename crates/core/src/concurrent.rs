//! The concurrent (multi-client) query surface.
//!
//! The paper measures a single client; the [`ComplexObjectStore`] trait
//! mirrors that with `&mut self` everywhere. Serving N clients from one
//! buffer pool needs a `&self` read path instead — this module provides it:
//!
//! * [`ConcurrentObjectStore`] extends [`ComplexObjectStore`] with `&self`
//!   retrieval/navigation operations (`shared_get_by_oid`,
//!   `shared_children_of`, `shared_root_records`) that N threads can call
//!   concurrently over one store;
//! * [`make_shared_store`] builds any of the five storage models over a
//!   lock-striped [`SharedBufferPool`](starfish_pagestore::SharedBufferPool)
//!   with K shards.
//!
//! **Updates are concurrent too** (since the latch layer,
//! [`starfish_pagestore::latch`]): [`ConcurrentObjectStore::shared_update_roots`]
//! applies root patches from any number of threads over disjoint update
//! partitions — every model's write path runs under per-page latches
//! (exclusive group over the object's pages for writers, shared for
//! multi-page readers), so concurrent readers never observe torn objects
//! and disjoint-object writers proceed in parallel.
//! [`ConcurrentObjectStore::shared_flush`] cooperates with in-flight
//! writers through the pool's quiesce gate. Only bulk loading stays
//! `&mut`-single-writer.
//!
//! The query *answers*, the buffer-fix counts and the post-flush on-disk
//! bytes of the concurrent surface are identical to the serial surface's —
//! only physical reads and writes may differ with the interleaving
//! (`tests/concurrent_differential.rs` and
//! `tests/concurrent_writer_differential.rs` pin those invariants, exactly
//! like the cross-policy differential does for replacement policies).

use crate::dasdbs_nsm::DasdbsNsmStore;
use crate::direct::DirectStore;
use crate::nsm::NsmStore;
use crate::traits::{ComplexObjectStore, ObjRef, RootPatch};
use crate::{ModelKind, Result, StoreConfig};
use starfish_nf2::{Key, Oid, Projection, Tuple};
use starfish_pagestore::{BufferStats, SharedPoolHandle};
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// A storage model whose retrieval/navigation surface can be shared across
/// threads (`&self`), on top of the usual exclusive surface.
///
/// Implementations exist for every model built by [`make_shared_store`];
/// the `&self` methods answer exactly like their `&mut` counterparts
/// ([`ComplexObjectStore::get_by_oid`], [`ComplexObjectStore::children_of`],
/// [`ComplexObjectStore::root_records`]) and count fixes identically — they
/// run the same code over a cloned handle to the same shared pool.
pub trait ConcurrentObjectStore: ComplexObjectStore + Send + Sync {
    /// Query 1a retrieval by OID, callable from N threads concurrently.
    fn shared_get_by_oid(&self, oid: Oid, proj: &Projection) -> Result<Tuple>;

    /// Query 1b retrieval by key attribute, callable concurrently. Answers
    /// and counts fixes exactly like [`ComplexObjectStore::get_by_key`].
    fn shared_get_by_key(&self, key: Key, proj: &Projection) -> Result<Tuple>;

    /// Query 1c full scan, callable concurrently. Materializes every object
    /// in the same order (and with the same fixes) as
    /// [`ComplexObjectStore::scan_all`].
    fn shared_scan_all(&self, f: &mut dyn FnMut(&Tuple)) -> Result<()>;

    /// Navigation step (children references), callable concurrently.
    fn shared_children_of(&self, refs: &[ObjRef]) -> Result<Vec<ObjRef>>;

    /// Root records of `refs`, callable concurrently.
    fn shared_root_records(&self, refs: &[ObjRef]) -> Result<Vec<Tuple>>;

    /// Queries 3a/3b root update over the `&self` write surface, callable
    /// from N threads concurrently on **disjoint ref partitions**. Each
    /// object's read-modify-write runs under an exclusive per-page latch
    /// group, so writers on different objects proceed in parallel, writers
    /// on shared pages serialize, and concurrent readers never observe a
    /// torn object. Counts the exact fixes and I/O of
    /// [`ComplexObjectStore::update_roots`] — they run the same code.
    fn shared_update_roots(&self, refs: &[ObjRef], patch: &RootPatch) -> Result<()>;

    /// Database-disconnect flush through the shared pool: quiesces
    /// in-flight writers (the pool's gate) and writes all deferred pages in
    /// grouped calls. Safe to call while readers keep running.
    fn shared_flush(&self) -> Result<()>;

    /// Cold restart through the shared pool (query 1a's per-retrieval cache
    /// clear). Quiesces writers like [`shared_flush`](Self::shared_flush);
    /// safe to interleave with concurrent reads (they just go cold).
    fn shared_clear_cache(&self) -> Result<()>;

    /// Per-shard buffer counters of the underlying pool, for
    /// load-imbalance analysis.
    fn shard_stats(&self) -> Vec<BufferStats>;

    /// Number of shards in the underlying pool.
    fn shard_count(&self) -> usize {
        self.shard_stats().len()
    }

    /// Simulated crash: drops the pool's volatile state (cache frames,
    /// unflushed WAL buffers) without flushing. The data disk and the
    /// durable log survive. Committed updates are recoverable via
    /// [`recover`](Self::recover); uncommitted ones are gone — exactly a
    /// process kill. Quiesces in-flight writers first so no latched update
    /// is torn mid-op.
    fn simulate_crash(&self);

    /// Recovery-on-open: replays the committed tail of the WAL onto the
    /// data disk and checkpoints. Returns the number of pages replayed
    /// (always 0 with the WAL disabled). Call after
    /// [`simulate_crash`](Self::simulate_crash), before serving.
    fn recover(&self) -> Result<usize>;

    /// Crash-test hook: tears `bytes` record bytes off the end of the
    /// durable log, as a crash that interrupted the final flush mid-record
    /// would leave it. [`recover`](Self::recover) must treat the torn
    /// record as end-of-log. No-op with the WAL disabled.
    #[doc(hidden)]
    fn damage_log_tail(&self, bytes: u32);

    /// Adaptive placement through the shared pool: runs the heat-ranked
    /// rewrite of [`ComplexObjectStore::reorganize`] inside a **writer
    /// quiesce window** (the pool's PR-4 gate): in-flight exclusive writers
    /// drain, new ones wait, while concurrent *readers* keep running
    /// throughout — they hold a snapshot of the old placement, whose
    /// extents stay valid on disk, until the atomic swap publishes the new
    /// one. Lock order inside the window: the pass may fix pages and take
    /// shared latches, but must never enter an exclusive latch group (it
    /// would self-deadlock behind its own gate). Defaults to
    /// [`crate::CoreError::Unsupported`].
    fn shared_reorganize(&self) -> Result<crate::placement::ReorgReport> {
        Err(crate::CoreError::Unsupported {
            model: self.model().paper_name(),
            op: "reorganize (adaptive placement)",
        })
    }
}

/// Builds an empty store of `kind` over a [`SharedPoolHandle`] with
/// `shards` lock-striped shards, ready for concurrent serving.
///
/// With `shards == 1` the pool runs the identical replacement and call
/// grouping logic as the single-threaded [`starfish_pagestore::BufferPool`],
/// so a one-client run reproduces the serial measurements counter for
/// counter.
///
/// ```
/// use starfish_core::{make_shared_store, ModelKind, StoreConfig};
/// use starfish_nf2::{station::Station, Projection};
///
/// let mut store = make_shared_store(ModelKind::DasdbsNsm, StoreConfig::default(), 4);
/// let db = vec![Station { key: 1, name: "A".into(), platforms: vec![], sightseeings: vec![] }];
/// let refs = store.load(&db)?;
/// // Reads go through the `&self` surface — shareable across threads.
/// let tuple = store.shared_get_by_oid(refs[0].oid, &Projection::All)?;
/// assert_eq!(Station::from_tuple(&tuple).unwrap(), db[0]);
/// # Ok::<(), starfish_core::CoreError>(())
/// ```
pub fn make_shared_store(
    kind: ModelKind,
    config: StoreConfig,
    shards: usize,
) -> Box<dyn ConcurrentObjectStore> {
    let pool = SharedPoolHandle::new(config.buffer, shards);
    match kind {
        ModelKind::Dsm => Box::new(DirectStore::with_pool(false, &config, pool)),
        ModelKind::DasdbsDsm => Box::new(DirectStore::with_pool(true, &config, pool)),
        ModelKind::Nsm => Box::new(NsmStore::with_pool(false, &config, pool)),
        ModelKind::NsmIndexed => Box::new(NsmStore::with_pool(true, &config, pool)),
        ModelKind::DasdbsNsm => Box::new(DasdbsNsmStore::with_pool(&config, pool)),
    }
}

// ---------------------------------------------------------------------------
// The reactor: an event-loop client surface over the concurrent store
// ---------------------------------------------------------------------------

/// A completion token returned by [`Reactor::submit`], redeemed through
/// [`Reactor::poll_complete`] or [`Reactor::wait`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

/// One operation submitted to a [`Reactor`] — the concurrent query surface
/// as data, so a client *enqueues* work and collects completions instead of
/// dedicating a thread per in-flight call. This is the client-side analogue
/// of the pool's batched I/O engine: many logical requests in flight over a
/// fixed set of worker threads.
#[derive(Clone, Debug)]
pub enum QueryRequest {
    /// Query 1a retrieval by OID
    /// ([`shared_get_by_oid`](ConcurrentObjectStore::shared_get_by_oid)).
    GetByOid {
        /// Object to retrieve.
        oid: Oid,
        /// Attribute projection.
        proj: Projection,
    },
    /// Query 1b retrieval by key
    /// ([`shared_get_by_key`](ConcurrentObjectStore::shared_get_by_key)).
    GetByKey {
        /// Root key to look up.
        key: Key,
        /// Attribute projection.
        proj: Projection,
    },
    /// Query 1c full scan. Completes with the object count — per-tuple
    /// callbacks do not serialize into a completion queue.
    ScanAll,
    /// Navigation step
    /// ([`shared_children_of`](ConcurrentObjectStore::shared_children_of)).
    ChildrenOf {
        /// Parents to expand.
        refs: Vec<ObjRef>,
    },
    /// Root records
    /// ([`shared_root_records`](ConcurrentObjectStore::shared_root_records)).
    RootRecords {
        /// Objects whose root records to read.
        refs: Vec<ObjRef>,
    },
    /// Query 3a/3b root update over a disjoint partition
    /// ([`shared_update_roots`](ConcurrentObjectStore::shared_update_roots)).
    UpdateRoots {
        /// Objects to patch (disjoint from other in-flight updates).
        refs: Vec<ObjRef>,
        /// The patch to apply.
        patch: RootPatch,
    },
    /// Database-disconnect flush
    /// ([`shared_flush`](ConcurrentObjectStore::shared_flush)).
    Flush,
}

/// The payload of a completed [`QueryRequest`].
#[derive(Clone, Debug, PartialEq)]
pub enum QueryResponse {
    /// A single retrieved object (`GetByOid`, `GetByKey`).
    Tuple(Tuple),
    /// Retrieved root records (`RootRecords`).
    Tuples(Vec<Tuple>),
    /// Navigation results (`ChildrenOf`).
    Refs(Vec<ObjRef>),
    /// Objects visited (`ScanAll`).
    ScanCount(usize),
    /// Completed without a payload (`UpdateRoots`, `Flush`).
    Done,
}

struct ReactorState {
    next_ticket: u64,
    queue: VecDeque<(u64, QueryRequest)>,
    /// Completions not yet redeemed: ticket → result.
    done: HashMap<u64, Result<QueryResponse>>,
    /// High-water mark of queued (not yet executing) requests — the
    /// client-side analogue of the I/O engine's `max_queue_depth`.
    max_depth: u64,
    shutdown: bool,
}

/// An event-loop client surface over a [`ConcurrentObjectStore`]: requests
/// are submitted as [`QueryRequest`] values and executed by a fixed pool of
/// worker threads, completions redeemed by [`Ticket`]. Built by
/// [`with_reactor`], which owns the workers' lifetimes (scoped threads).
///
/// With the store's pool running the batched I/O engine, N in-flight
/// requests become N concurrent misses — exactly the queue pressure the
/// engine coalesces into multi-page reads.
pub struct Reactor<'a> {
    store: &'a dyn ConcurrentObjectStore,
    state: Mutex<ReactorState>,
    /// Workers park here for new requests (or shutdown).
    work_cond: Condvar,
    /// Clients park here for completions.
    done_cond: Condvar,
}

impl<'a> Reactor<'a> {
    pub(crate) fn new(store: &'a dyn ConcurrentObjectStore) -> Self {
        Reactor {
            store,
            state: Mutex::new(ReactorState {
                next_ticket: 0,
                queue: VecDeque::new(),
                done: HashMap::new(),
                max_depth: 0,
                shutdown: false,
            }),
            work_cond: Condvar::new(),
            done_cond: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ReactorState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues `req` and returns its completion ticket immediately.
    pub fn submit(&self, req: QueryRequest) -> Ticket {
        let mut st = self.lock();
        let t = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back((t, req));
        let depth = st.queue.len() as u64;
        st.max_depth = st.max_depth.max(depth);
        drop(st);
        self.work_cond.notify_one();
        Ticket(t)
    }

    /// High-water mark of queued requests since the reactor was built —
    /// how far clients ran ahead of the worker pool. Scheduling-dependent
    /// under contention, like the engine's `max_queue_depth`.
    pub fn queue_high_water(&self) -> u64 {
        self.lock().max_depth
    }

    /// Redeems `ticket` if its request has completed; `None` while it is
    /// still queued or executing. Each ticket redeems at most once.
    pub fn poll_complete(&self, ticket: Ticket) -> Option<Result<QueryResponse>> {
        self.lock().done.remove(&ticket.0)
    }

    /// Blocks until `ticket`'s request completes and redeems it.
    pub fn wait(&self, ticket: Ticket) -> Result<QueryResponse> {
        let mut st = self.lock();
        loop {
            if let Some(result) = st.done.remove(&ticket.0) {
                return result;
            }
            st = self.done_cond.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn execute(store: &dyn ConcurrentObjectStore, req: QueryRequest) -> Result<QueryResponse> {
        match req {
            QueryRequest::GetByOid { oid, proj } => store
                .shared_get_by_oid(oid, &proj)
                .map(QueryResponse::Tuple),
            QueryRequest::GetByKey { key, proj } => store
                .shared_get_by_key(key, &proj)
                .map(QueryResponse::Tuple),
            QueryRequest::ScanAll => {
                let mut n = 0usize;
                store.shared_scan_all(&mut |_| n += 1)?;
                Ok(QueryResponse::ScanCount(n))
            }
            QueryRequest::ChildrenOf { refs } => {
                store.shared_children_of(&refs).map(QueryResponse::Refs)
            }
            QueryRequest::RootRecords { refs } => {
                store.shared_root_records(&refs).map(QueryResponse::Tuples)
            }
            QueryRequest::UpdateRoots { refs, patch } => store
                .shared_update_roots(&refs, &patch)
                .map(|()| QueryResponse::Done),
            QueryRequest::Flush => store.shared_flush().map(|()| QueryResponse::Done),
        }
    }

    /// Worker loop: drain requests until shutdown *and* an empty queue —
    /// work submitted before shutdown always completes.
    pub(crate) fn worker(&self) {
        loop {
            let (ticket, req) = {
                let mut st = self.lock();
                loop {
                    if let Some(job) = st.queue.pop_front() {
                        break job;
                    }
                    if st.shutdown {
                        return;
                    }
                    st = self.work_cond.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            let result = Self::execute(self.store, req);
            self.lock().done.insert(ticket, result);
            self.done_cond.notify_all();
        }
    }

    pub(crate) fn shutdown(&self) {
        self.lock().shutdown = true;
        self.work_cond.notify_all();
    }
}

/// Signals reactor shutdown even if the client closure panics, so scoped
/// workers never park forever on the work condvar.
pub(crate) struct ShutdownGuard<'r, 'a>(pub(crate) &'r Reactor<'a>);

impl Drop for ShutdownGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Runs `f` against a [`Reactor`] serving `store` with `workers` event-loop
/// threads (at least one). Requests still queued when `f` returns are
/// drained before the reactor tears down; unredeemed completions are
/// dropped.
///
/// ```
/// use starfish_core::{
///     make_shared_store, with_reactor, ModelKind, QueryRequest, QueryResponse, StoreConfig,
/// };
/// use starfish_nf2::{station::Station, Projection};
///
/// let mut store = make_shared_store(ModelKind::DasdbsNsm, StoreConfig::default(), 4);
/// let db = vec![Station { key: 1, name: "A".into(), platforms: vec![], sightseeings: vec![] }];
/// let refs = store.load(&db)?;
/// let answer = with_reactor(store.as_ref(), 2, |r| {
///     let t = r.submit(QueryRequest::GetByOid { oid: refs[0].oid, proj: Projection::All });
///     r.wait(t)
/// })?;
/// assert!(matches!(answer, QueryResponse::Tuple(_)));
/// # Ok::<(), starfish_core::CoreError>(())
/// ```
pub fn with_reactor<R>(
    store: &dyn ConcurrentObjectStore,
    workers: usize,
    f: impl FnOnce(&Reactor<'_>) -> R,
) -> R {
    let reactor = Reactor::new(store);
    std::thread::scope(|s| {
        for _ in 0..workers.max(1) {
            s.spawn(|| reactor.worker());
        }
        let guard = ShutdownGuard(&reactor);
        let out = f(&reactor);
        drop(guard);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    use starfish_nf2::station::Station;

    #[test]
    fn factory_builds_every_model_sharded() {
        for kind in ModelKind::all() {
            for shards in [1, 4] {
                let store = make_shared_store(kind, StoreConfig::default(), shards);
                assert_eq!(store.model(), kind);
                assert_eq!(store.object_count(), 0);
                assert_eq!(store.shard_count(), shards);
            }
        }
    }

    fn tiny_db(n: i32) -> Vec<Station> {
        (0..n)
            .map(|k| Station {
                key: k,
                // Fixed-width names: root patches are in-place, so every
                // patch must keep the encoded length.
                name: format!("S{k:06}"),
                platforms: vec![],
                sightseeings: vec![],
            })
            .collect()
    }

    #[test]
    fn reactor_answers_match_direct_calls() {
        let db = tiny_db(6);
        let mut store = make_shared_store(ModelKind::DasdbsNsm, StoreConfig::default(), 2);
        let refs = store.load(&db).unwrap();
        with_reactor(store.as_ref(), 3, |r| {
            // Many requests in flight at once, redeemed out of submission
            // order.
            let tickets: Vec<_> = refs
                .iter()
                .map(|o| {
                    r.submit(QueryRequest::GetByOid {
                        oid: o.oid,
                        proj: Projection::All,
                    })
                })
                .collect();
            let scan = r.submit(QueryRequest::ScanAll);
            assert_eq!(r.wait(scan).unwrap(), QueryResponse::ScanCount(db.len()));
            for (i, t) in tickets.iter().enumerate().rev() {
                match r.wait(*t).unwrap() {
                    QueryResponse::Tuple(tup) => {
                        assert_eq!(Station::from_tuple(&tup).unwrap(), db[i]);
                    }
                    other => panic!("unexpected response {other:?}"),
                }
            }
            // A redeemed ticket is spent.
            assert!(r.poll_complete(tickets[0]).is_none());
        });
    }

    #[test]
    fn reactor_updates_flush_and_errors_complete() {
        let db = tiny_db(4);
        let mut store = make_shared_store(ModelKind::Nsm, StoreConfig::default(), 2);
        let refs = store.load(&db).unwrap();
        let patch = RootPatch {
            new_name: "patched".into(),
        };
        with_reactor(store.as_ref(), 2, |r| {
            let upd = r.submit(QueryRequest::UpdateRoots {
                refs: refs.clone(),
                patch: patch.clone(),
            });
            assert_eq!(r.wait(upd).unwrap(), QueryResponse::Done);
            let flush = r.submit(QueryRequest::Flush);
            assert_eq!(r.wait(flush).unwrap(), QueryResponse::Done);
            let good = r.submit(QueryRequest::GetByKey {
                key: 2,
                proj: Projection::All,
            });
            match r.wait(good).unwrap() {
                QueryResponse::Tuple(t) => {
                    assert_eq!(Station::from_tuple(&t).unwrap().name, patch.new_name);
                }
                other => panic!("unexpected response {other:?}"),
            }
            // Errors surface through the ticket, and the reactor survives.
            let bad = r.submit(QueryRequest::GetByKey {
                key: 999,
                proj: Projection::All,
            });
            assert!(r.wait(bad).is_err());
            let scan = r.submit(QueryRequest::ScanAll);
            assert_eq!(r.wait(scan).unwrap(), QueryResponse::ScanCount(4));
        });
    }
}
