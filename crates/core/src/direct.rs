//! The direct storage models: **DSM** (§3.1) and **DASDBS-DSM** (§3.2).
//!
//! Both store each complex object as one contiguous unit: small objects
//! share slotted pages, large objects get a private extent of header
//! (structure) pages plus data pages. They differ only in the access path:
//!
//! * **DSM** always materializes the *whole* object — every page of the
//!   extent is read no matter how little of the object a query needs, and
//!   updates replace the entire nested tuple (all pages dirtied).
//! * **DASDBS-DSM** first reads the object header, then fetches **only the
//!   data pages containing the projected attributes** ("from the set of
//!   pages that stores the object, only those pages are retrieved that are
//!   actually used in a query"). Its updates use the DASDBS
//!   `change attribute` operation, which patches the covering page(s) but
//!   also allocates a one-page *page pool* whose pages are written per
//!   operation — the write-amplification anomaly of §5.3.

use crate::object_file::{ObjAddr, ObjectFile, ReadPayload};
use crate::placement::{self, PlacementStats, ReorgReport};
use crate::traits::{ComplexObjectStore, ObjRef, RelationInfo, RootPatch};
use crate::{CoreError, ModelKind, Result, StoreConfig};
use starfish_nf2::station::{attr, child_refs, proj_navigation, proj_root_record, Station};
use starfish_nf2::{
    decode, decode_projected, encode_with_layout, Key, Oid, Projection, RelSchema, Tuple, Value,
};
use starfish_pagestore::{
    BufferPool, BufferStats, IoSnapshot, LatchMode, PageCache, PageId, SharedPoolHandle, SimDisk,
};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Shared implementation of the two direct storage models, generic over the
/// buffer pool it runs on: [`BufferPool`] (the default — every original
/// paper measurement) or [`SharedPoolHandle`] (the thread-shareable pool
/// behind [`crate::make_shared_store`], which also unlocks the `&self`
/// concurrent read surface of [`crate::ConcurrentObjectStore`]).
pub struct DirectStore<P: PageCache = BufferPool> {
    /// `false` = DSM, `true` = DASDBS-DSM (header-guided partial reads).
    partial: bool,
    pool: P,
    schema: RelSchema,
    /// The current placement, snapshot-swapped by [`reorganize`]
    /// (`ComplexObjectStore::reorganize`): every operation clones the `Arc`
    /// out once, so concurrent readers keep a consistent old placement
    /// (whose extents stay valid on disk) while a reorganization publishes
    /// a new one.
    file: RwLock<Option<Arc<ObjectFile>>>,
    refs: Vec<ObjRef>,
    key_to_ord: HashMap<Key, usize>,
    /// Scratch extent for DASDBS-DSM's `change attribute` page pool.
    scratch: Option<PageId>,
    /// Sub-tuple-aligned data pages (the wasteful DASDBS layout).
    aligned: bool,
}

impl DirectStore {
    /// Creates an empty direct store. `partial` selects DASDBS-DSM.
    pub fn new(partial: bool, config: StoreConfig) -> Self {
        let pool = config.buffer.build(SimDisk::new());
        Self::with_pool(partial, &config, pool)
    }
}

/// Ordinal of `oid` in a store of `n_objects` objects.
fn ord_of(n_objects: usize, oid: Oid) -> Result<usize> {
    let ord = oid.0 as usize;
    if ord < n_objects {
        Ok(ord)
    } else {
        Err(CoreError::NotFound {
            what: format!("object {oid}"),
        })
    }
}

/// Reads object `ord` under `proj` using the model's access path — the one
/// read primitive both the exclusive (`&mut`) and the concurrent (`&self`,
/// over a cloned shared-pool handle) surfaces are built from.
///
/// Spanned (multi-page) objects are read under a **shared group latch** over
/// their extent, so a concurrent writer replacing the object can never
/// expose a torn mix of old and new pages; heap residents are single-page
/// and atomic under the pool's shard mutex already. On the exclusive
/// [`BufferPool`] the latch is a counted no-op, keeping serial and shared
/// measurements identical.
fn read_object_in(
    partial: bool,
    file: &ObjectFile,
    schema: &RelSchema,
    pool: &mut impl PageCache,
    ord: usize,
    proj: &Projection,
) -> Result<Tuple> {
    match file.spanned_latch_pages_of(ord)? {
        Some(pages) => pool.with_latched(&pages, LatchMode::Shared, |pool| {
            read_object_unlatched(partial, file, schema, pool, ord, proj)
        }),
        None => read_object_unlatched(partial, file, schema, pool, ord, proj),
    }
}

/// [`read_object_in`] without the latch scope — also the body writers run
/// inside their own exclusive latch (shared-inside-own-exclusive nests).
fn read_object_unlatched(
    partial: bool,
    file: &ObjectFile,
    schema: &RelSchema,
    pool: &mut impl PageCache,
    ord: usize,
    proj: &Projection,
) -> Result<Tuple> {
    if partial && !proj.is_all() {
        match file.read_projected(pool, ord, |l| proj.byte_ranges(l))? {
            ReadPayload::Full(bytes) => {
                let t = decode(&bytes, schema)?;
                Ok(proj.apply(&t, schema))
            }
            ReadPayload::Sparse(bytes, layout) => {
                Ok(decode_projected(&bytes, schema, &layout, proj)?)
            }
        }
    } else {
        // DSM (or a full-projection read): materialize everything.
        let bytes = file.read_full(pool, ord)?;
        let t = decode(&bytes, schema)?;
        Ok(if proj.is_all() {
            t
        } else {
            proj.apply(&t, schema)
        })
    }
}

/// The navigation step over the direct layout: children references of each
/// of `refs`, in order, duplicates preserved.
fn children_of_in(
    partial: bool,
    file: &ObjectFile,
    schema: &RelSchema,
    pool: &mut impl PageCache,
    n_objects: usize,
    refs: &[ObjRef],
) -> Result<Vec<ObjRef>> {
    let proj = proj_navigation();
    let mut out = Vec::new();
    for r in refs {
        let ord = ord_of(n_objects, r.oid)?;
        let t = read_object_in(partial, file, schema, pool, ord, &proj)?;
        out.extend(
            child_refs(&t)
                .into_iter()
                .map(|(key, oid)| ObjRef { oid, key }),
        );
    }
    Ok(out)
}

/// Value selection without an index: set-oriented scan materializing every
/// object, keeping the last key match (Table 3: query 1b costs the whole
/// relation) — the one key-lookup primitive behind both surfaces.
fn get_by_key_in(
    partial: bool,
    file: &ObjectFile,
    schema: &RelSchema,
    pool: &mut impl PageCache,
    n_objects: usize,
    key: Key,
    proj: &Projection,
) -> Result<Tuple> {
    let mut found = None;
    for ord in 0..n_objects {
        let t = read_object_in(partial, file, schema, pool, ord, &Projection::All)?;
        if t.attr(attr::KEY).and_then(Value::as_int) == Some(key) {
            found = Some(t);
        }
    }
    let t = found.ok_or_else(|| CoreError::NotFound {
        what: format!("key {key}"),
    })?;
    Ok(if proj.is_all() {
        t
    } else {
        proj.apply(&t, schema)
    })
}

/// Full scan in OID order, materializing every object — the one scan
/// primitive behind both surfaces.
fn scan_all_in(
    partial: bool,
    file: &ObjectFile,
    schema: &RelSchema,
    pool: &mut impl PageCache,
    n_objects: usize,
    f: &mut dyn FnMut(&Tuple),
) -> Result<()> {
    for ord in 0..n_objects {
        let t = read_object_in(partial, file, schema, pool, ord, &Projection::All)?;
        f(&t);
    }
    Ok(())
}

/// The root records (atomic attributes) of `refs`.
fn root_records_in(
    partial: bool,
    file: &ObjectFile,
    schema: &RelSchema,
    pool: &mut impl PageCache,
    n_objects: usize,
    refs: &[ObjRef],
) -> Result<Vec<Tuple>> {
    let proj = proj_root_record();
    refs.iter()
        .map(|r| {
            let ord = ord_of(n_objects, r.oid)?;
            read_object_in(partial, file, schema, pool, ord, &proj)
        })
        .collect()
}

/// Encodes a replacement for an encoded `Str` attribute region. The new
/// name must have the old name's byte length.
fn encode_name(new_name: &str) -> Vec<u8> {
    let mut v = Vec::with_capacity(2 + new_name.len());
    v.extend_from_slice(&(new_name.len() as u16).to_le_bytes());
    v.extend_from_slice(new_name.as_bytes());
    v
}

/// DSM update path: replace the entire nested tuple, read-modify-write
/// under one **exclusive group latch** over the object's pages so disjoint
/// objects update in parallel while readers of this object wait.
fn replace_tuple_in(
    file: &ObjectFile,
    schema: &RelSchema,
    pool: &mut impl PageCache,
    ord: usize,
    patch: &RootPatch,
) -> Result<()> {
    let pages = file.latch_pages_of(ord)?;
    let res = pool.with_latched(&pages, LatchMode::Exclusive, |pool| {
        let full = read_object_in(false, file, schema, pool, ord, &Projection::All)?;
        let mut station = Station::from_tuple(&full)?;
        if station.name.len() != patch.new_name.len() {
            return Err(CoreError::Store(
                starfish_pagestore::StoreError::SizeChanged {
                    old: station.name.len(),
                    new: patch.new_name.len(),
                },
            ));
        }
        station.name = patch.new_name.clone();
        let (bytes, layout) = encode_with_layout(&station.to_tuple(), schema)?;
        file.rewrite_full(pool, ord, &bytes, &layout)
    });
    // The op boundary: make the update durable (WAL pools flush or group-
    // commit here; everything else no-ops), or drop its buffered images.
    match res {
        Ok(v) => {
            pool.log_commit()?;
            Ok(v)
        }
        Err(e) => {
            pool.log_abort();
            Err(e)
        }
    }
}

/// DASDBS-DSM update path: `change attribute` on `Name` + page-pool write,
/// under one exclusive group latch over the object's pages.
fn change_attribute_in(
    file: &ObjectFile,
    schema: &RelSchema,
    pool: &mut impl PageCache,
    scratch: PageId,
    ord: usize,
    patch: &RootPatch,
) -> Result<()> {
    let pages = file.latch_pages_of(ord)?;
    let res = pool.with_latched(&pages, LatchMode::Exclusive, |pool| {
        let name_proj = Projection::Attrs(vec![(attr::NAME, Projection::All)]);
        let layout = match file.read_projected(pool, ord, |l| name_proj.byte_ranges(l))? {
            ReadPayload::Sparse(bytes, layout) => {
                // Validate length via the stored attribute range.
                let range = layout.attrs[attr::NAME].range();
                let old_len = (range.end - range.start) as usize - 2;
                if old_len != patch.new_name.len() {
                    return Err(CoreError::Store(
                        starfish_pagestore::StoreError::SizeChanged {
                            old: old_len,
                            new: patch.new_name.len(),
                        },
                    ));
                }
                let _ = bytes;
                layout
            }
            ReadPayload::Full(bytes) => {
                // Heap resident: recompute the layout from the decoded tuple.
                let t = decode(&bytes, schema)?;
                let name = t
                    .attr(attr::NAME)
                    .and_then(Value::as_str)
                    .unwrap_or_default();
                if name.len() != patch.new_name.len() {
                    return Err(CoreError::Store(
                        starfish_pagestore::StoreError::SizeChanged {
                            old: name.len(),
                            new: patch.new_name.len(),
                        },
                    ));
                }
                let (_, layout) = encode_with_layout(&t, schema)?;
                layout
            }
        };
        let range = layout.attrs[attr::NAME].range();
        file.patch_range(pool, ord, range, &encode_name(&patch.new_name))?;
        // The page pool: every change-attribute operation allocates a pool
        // "of which all pages are written ... even though the page pool is
        // only a single page in size" (§5.3).
        pool.write_pool_pages(scratch, 1)?;
        Ok(())
    });
    match res {
        Ok(v) => {
            pool.log_commit()?;
            Ok(v)
        }
        Err(e) => {
            pool.log_abort();
            Err(e)
        }
    }
}

/// Immutable borrows of everything the direct models' update path needs
/// besides the pool — the write-side analogue of `NsmParts`.
struct DirectUpdateParts<'a> {
    /// `true` = DASDBS-DSM (`change attribute`), `false` = DSM (replace).
    partial: bool,
    file: &'a ObjectFile,
    schema: &'a RelSchema,
    n_objects: usize,
    /// DASDBS-DSM's page-pool scratch extent.
    scratch: Option<PageId>,
}

/// The direct models' root update over `refs` — the one write primitive
/// both the exclusive (`&mut`) and the concurrent (`&self`) surfaces run.
fn update_roots_in(
    parts: &DirectUpdateParts<'_>,
    pool: &mut impl PageCache,
    refs: &[ObjRef],
    patch: &RootPatch,
) -> Result<()> {
    for r in refs {
        let ord = ord_of(parts.n_objects, r.oid)?;
        if parts.partial {
            // "With DASDBS-DSM ... we cannot replace the entire tuple
            // since for each tuple only those pages are retrieved that
            // are actually needed. Therefore the update has been
            // implemented as a 'change attribute' operation" (§5.3).
            change_attribute_in(
                parts.file,
                parts.schema,
                pool,
                parts.scratch.expect("allocated at load"),
                ord,
                patch,
            )?;
        } else {
            replace_tuple_in(parts.file, parts.schema, pool, ord, patch)?;
        }
    }
    Ok(())
}

impl<P: PageCache> DirectStore<P> {
    /// Creates an empty direct store over an externally built pool.
    pub fn with_pool(partial: bool, config: &StoreConfig, pool: P) -> Self {
        DirectStore {
            partial,
            pool,
            schema: starfish_nf2::station::station_schema(),
            file: RwLock::new(None),
            refs: Vec::new(),
            key_to_ord: HashMap::new(),
            scratch: None,
            aligned: config.aligned_subtuples,
        }
    }

    /// The current placement snapshot (cheap `Arc` clone).
    fn file(&self) -> Result<Arc<ObjectFile>> {
        placement::read_lock(&self.file)
            .clone()
            .ok_or_else(|| CoreError::NotFound {
                what: "empty database".into(),
            })
    }

    fn ord_of_oid(&self, oid: Oid) -> Result<usize> {
        ord_of(self.refs.len(), oid)
    }

    /// Reads object `ord` under `proj` using the model's access path.
    fn read_object(&mut self, ord: usize, proj: &Projection) -> Result<Tuple> {
        let file = self.file()?;
        read_object_in(self.partial, &file, &self.schema, &mut self.pool, ord, proj)
    }
}

/// Per-object placement facts for the direct layout: the object's extent
/// (or shared heap page) plus its packed-cost estimate — heap residents
/// cost their current share of a heap page, spanned residents their extent.
fn direct_object_heats(
    file: &ObjectFile,
    heat: &HashMap<starfish_pagestore::PageId, u64>,
) -> Result<Vec<placement::ObjectHeat>> {
    let residents = file.heap_resident_count();
    let heap_share = if residents > 0 {
        f64::from(file.heap_pages()) / residents as f64
    } else {
        0.0
    };
    (0..file.len())
        .map(|ord| {
            let packed = match file.addr(ord)? {
                ObjAddr::Heap(_) => heap_share,
                ObjAddr::Spanned(rec) => f64::from(rec.total_pages()),
            };
            Ok(placement::ObjectHeat::new(
                ord,
                file.latch_pages_of(ord)?,
                heat,
                packed,
            ))
        })
        .collect()
}

/// The heat-ranked rewrite for the direct layout: materialize every object
/// (counted reads), bulk-load a fresh file with objects in heat order
/// (counted writes via the flush), and restore ordinal addressing so OIDs
/// keep their meaning. The old extents are simply orphaned on disk —
/// concurrent readers holding the old snapshot stay correct.
fn rebuild_direct(
    file: &ObjectFile,
    schema: &RelSchema,
    pool: &mut impl PageCache,
    aligned: bool,
) -> Result<(ObjectFile, ReorgReport)> {
    let heat = placement::heat_map(pool.page_heat());
    let objs = direct_object_heats(file, &heat)?;
    let ranking = placement::rank(&objs);
    let before = pool.snapshot();
    let mut payloads = Vec::with_capacity(file.len());
    for &ord in &ranking.order {
        let bytes = file.read_full(pool, ord)?;
        let t = decode(&bytes, schema)?;
        payloads.push(encode_with_layout(&t, schema)?);
    }
    let mut new_file =
        ObjectFile::bulk_load_opts(pool, file.name().to_string(), &payloads, aligned)?;
    new_file.restore_input_order(&ranking.order);
    pool.flush_all()?;
    let spent = pool.snapshot() - before;
    let hot_after = {
        let pages: Vec<Vec<_>> = ranking
            .hot_ordinals()
            .iter()
            .map(|&ord| new_file.latch_pages_of(ord))
            .collect::<Result<_>>()?;
        placement::distinct_pages(pages.iter().map(Vec::as_slice))
    };
    let report = ReorgReport {
        objects: file.len(),
        moved: ranking
            .order
            .iter()
            .enumerate()
            .filter(|&(i, &ord)| i != ord)
            .count(),
        heat_total: ranking.stats.heat_total,
        hot_objects: ranking.stats.hot_objects,
        hot_pages_before: ranking.stats.hot_pages,
        hot_pages_after: hot_after,
        pages_read: spent.pages_read,
        pages_written: spent.pages_written,
    };
    Ok((new_file, report))
}

impl<P: PageCache> ComplexObjectStore for DirectStore<P> {
    fn model(&self) -> ModelKind {
        if self.partial {
            ModelKind::DasdbsDsm
        } else {
            ModelKind::Dsm
        }
    }

    fn load(&mut self, stations: &[Station]) -> Result<Vec<ObjRef>> {
        let mut payloads = Vec::with_capacity(stations.len());
        self.refs.clear();
        self.key_to_ord.clear();
        for (i, s) in stations.iter().enumerate() {
            payloads.push(encode_with_layout(&s.to_tuple(), &self.schema)?);
            self.refs.push(ObjRef {
                oid: Oid(i as u32),
                key: s.key,
            });
            self.key_to_ord.insert(s.key, i);
        }
        let name = if self.partial {
            "DASDBS-DSM-Station"
        } else {
            "DSM-Station"
        };
        *placement::write_lock(&self.file) = Some(Arc::new(ObjectFile::bulk_load_opts(
            &mut self.pool,
            name,
            &payloads,
            self.aligned,
        )?));
        if self.partial {
            self.scratch = Some(self.pool.alloc_extent(1));
        }
        self.pool.clear_cache()?;
        self.pool.reset_stats();
        Ok(self.refs.clone())
    }

    fn object_count(&self) -> usize {
        self.refs.len()
    }

    fn get_by_oid(&mut self, oid: Oid, proj: &Projection) -> Result<Tuple> {
        let ord = self.ord_of_oid(oid)?;
        self.file()?;
        self.read_object(ord, proj)
    }

    fn get_by_key(&mut self, key: Key, proj: &Projection) -> Result<Tuple> {
        let file = self.file()?;
        get_by_key_in(
            self.partial,
            &file,
            &self.schema,
            &mut self.pool,
            self.refs.len(),
            key,
            proj,
        )
    }

    fn scan_all(&mut self, f: &mut dyn FnMut(&Tuple)) -> Result<()> {
        let file = self.file()?;
        scan_all_in(
            self.partial,
            &file,
            &self.schema,
            &mut self.pool,
            self.refs.len(),
            f,
        )
    }

    fn children_of(&mut self, refs: &[ObjRef]) -> Result<Vec<ObjRef>> {
        let file = self.file()?;
        children_of_in(
            self.partial,
            &file,
            &self.schema,
            &mut self.pool,
            self.refs.len(),
            refs,
        )
    }

    fn root_records(&mut self, refs: &[ObjRef]) -> Result<Vec<Tuple>> {
        let file = self.file()?;
        root_records_in(
            self.partial,
            &file,
            &self.schema,
            &mut self.pool,
            self.refs.len(),
            refs,
        )
    }

    fn update_roots(&mut self, refs: &[ObjRef], patch: &RootPatch) -> Result<()> {
        let file = self.file()?;
        let parts = DirectUpdateParts {
            partial: self.partial,
            file: &file,
            schema: &self.schema,
            n_objects: self.refs.len(),
            scratch: self.scratch,
        };
        update_roots_in(&parts, &mut self.pool, refs, patch)
    }

    fn flush(&mut self) -> Result<()> {
        self.pool.flush_all().map_err(Into::into)
    }

    fn clear_cache(&mut self) -> Result<()> {
        self.pool.clear_cache().map_err(Into::into)
    }

    fn reset_stats(&mut self) {
        self.pool.reset_stats();
    }

    fn snapshot(&self) -> IoSnapshot {
        self.pool.snapshot()
    }

    fn buffer_stats(&self) -> BufferStats {
        self.pool.buffer_stats()
    }

    fn relation_info(&self) -> Vec<RelationInfo> {
        let Ok(file) = self.file() else {
            return Vec::new();
        };
        let total = file.len() as u64;
        vec![RelationInfo {
            name: file.name().to_string(),
            tuples_per_object: 1.0,
            total_tuples: total,
            avg_tuple_bytes: file.avg_stored_bytes(),
            k: if file.heap_resident_count() == file.len() && total > 0 {
                Some(
                    (starfish_pagestore::EFFECTIVE_PAGE_SIZE as f64 / file.avg_stored_bytes())
                        as u32,
                )
            } else {
                None
            },
            p: file.avg_spanned_pages(),
            m: file.total_pages(),
        }]
    }

    fn database_pages(&self) -> u32 {
        self.pool.database_pages()
    }

    fn disk_checksum(&self) -> u64 {
        self.pool.disk_checksum()
    }

    fn placement_stats(&mut self) -> Result<PlacementStats> {
        let file = self.file()?;
        let heat = placement::heat_map(self.pool.page_heat());
        Ok(placement::rank(&direct_object_heats(&file, &heat)?).stats)
    }

    fn reorganize(&mut self) -> Result<ReorgReport> {
        let file = self.file()?;
        let (new_file, report) = rebuild_direct(&file, &self.schema, &mut self.pool, self.aligned)?;
        *placement::write_lock(&self.file) = Some(Arc::new(new_file));
        Ok(report)
    }
}

impl crate::ConcurrentObjectStore for DirectStore<SharedPoolHandle> {
    fn shared_get_by_oid(&self, oid: Oid, proj: &Projection) -> Result<Tuple> {
        let file = self.file()?;
        let ord = self.ord_of_oid(oid)?;
        let mut pool = self.pool.clone();
        read_object_in(self.partial, &file, &self.schema, &mut pool, ord, proj)
    }

    fn shared_get_by_key(&self, key: Key, proj: &Projection) -> Result<Tuple> {
        let file = self.file()?;
        let mut pool = self.pool.clone();
        get_by_key_in(
            self.partial,
            &file,
            &self.schema,
            &mut pool,
            self.refs.len(),
            key,
            proj,
        )
    }

    fn shared_scan_all(&self, f: &mut dyn FnMut(&Tuple)) -> Result<()> {
        let file = self.file()?;
        let mut pool = self.pool.clone();
        scan_all_in(
            self.partial,
            &file,
            &self.schema,
            &mut pool,
            self.refs.len(),
            f,
        )
    }

    fn shared_children_of(&self, refs: &[ObjRef]) -> Result<Vec<ObjRef>> {
        let file = self.file()?;
        let mut pool = self.pool.clone();
        children_of_in(
            self.partial,
            &file,
            &self.schema,
            &mut pool,
            self.refs.len(),
            refs,
        )
    }

    fn shared_root_records(&self, refs: &[ObjRef]) -> Result<Vec<Tuple>> {
        let file = self.file()?;
        let mut pool = self.pool.clone();
        root_records_in(
            self.partial,
            &file,
            &self.schema,
            &mut pool,
            self.refs.len(),
            refs,
        )
    }

    fn shared_update_roots(&self, refs: &[ObjRef], patch: &RootPatch) -> Result<()> {
        let file = self.file()?;
        let parts = DirectUpdateParts {
            partial: self.partial,
            file: &file,
            schema: &self.schema,
            n_objects: self.refs.len(),
            scratch: self.scratch,
        };
        let mut pool = self.pool.clone();
        update_roots_in(&parts, &mut pool, refs, patch)
    }

    fn shared_flush(&self) -> Result<()> {
        self.pool.pool().flush_all().map_err(Into::into)
    }

    fn shared_clear_cache(&self) -> Result<()> {
        self.pool.pool().clear_cache().map_err(Into::into)
    }

    fn shard_stats(&self) -> Vec<BufferStats> {
        self.pool.pool().shard_stats()
    }

    fn simulate_crash(&self) {
        self.pool.pool().crash_volatile()
    }

    fn recover(&self) -> Result<usize> {
        self.pool.pool().recover().map_err(Into::into)
    }

    fn damage_log_tail(&self, bytes: u32) {
        self.pool.pool().truncate_log_tail(bytes)
    }

    fn shared_reorganize(&self) -> Result<ReorgReport> {
        let file = self.file()?;
        let mut pool = self.pool.clone();
        // The whole copy + swap runs with writers quiesced, so no update
        // can slip between reading an object and publishing its new home.
        // Readers keep racing on the old snapshot (shared latches and
        // plain fixes pass the gate); the pass itself takes no exclusive
        // latch group (see the trait's lock-order note).
        self.pool.pool().with_writers_quiesced(|| {
            let (new_file, report) = rebuild_direct(&file, &self.schema, &mut pool, self.aligned)?;
            *placement::write_lock(&self.file) = Some(Arc::new(new_file));
            Ok(report)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starfish_nf2::station::{Connection, Platform, Sightseeing};

    fn station(key: i32, n_seeing: usize, children: &[(Key, u32)]) -> Station {
        Station {
            key,
            name: format!("{key:0100}"),
            platforms: if children.is_empty() {
                vec![]
            } else {
                vec![Platform {
                    platform_nr: 1,
                    no_line: 1,
                    ticket_code: 9,
                    information: "i".repeat(100),
                    connections: children
                        .iter()
                        .map(|&(k, o)| Connection {
                            line_nr: 1,
                            key_connection: k,
                            oid_connection: Oid(o),
                            departure_times: "t".repeat(100),
                        })
                        .collect(),
                }]
            },
            sightseeings: (0..n_seeing)
                .map(|i| Sightseeing {
                    seeing_nr: i as i32,
                    description: "d".repeat(100),
                    location: "l".repeat(100),
                    history: "h".repeat(100),
                    remarks: "r".repeat(100),
                })
                .collect(),
        }
    }

    fn db() -> Vec<Station> {
        vec![
            station(100, 10, &[(101, 1), (102, 2)]), // large
            station(101, 0, &[(102, 2)]),            // small
            station(102, 12, &[(100, 0)]),           // large
        ]
    }

    fn make(partial: bool) -> DirectStore {
        let mut s = DirectStore::new(partial, StoreConfig::default());
        s.load(&db()).unwrap();
        s
    }

    #[test]
    fn get_by_oid_roundtrips() {
        for partial in [false, true] {
            let mut s = make(partial);
            let t = s.get_by_oid(Oid(0), &Projection::All).unwrap();
            assert_eq!(Station::from_tuple(&t).unwrap(), db()[0]);
        }
    }

    #[test]
    fn get_by_key_scans_and_finds() {
        for partial in [false, true] {
            let mut s = make(partial);
            let t = s.get_by_key(102, &Projection::All).unwrap();
            assert_eq!(t.attr(attr::KEY).unwrap().as_int(), Some(102));
            assert!(matches!(
                s.get_by_key(999, &Projection::All),
                Err(CoreError::NotFound { .. })
            ));
        }
    }

    #[test]
    fn scan_all_visits_in_oid_order() {
        let mut s = make(false);
        let mut keys = Vec::new();
        s.scan_all(&mut |t| keys.push(t.attr(attr::KEY).unwrap().as_int().unwrap()))
            .unwrap();
        assert_eq!(keys, vec![100, 101, 102]);
    }

    #[test]
    fn children_of_returns_refs_in_order() {
        let mut s = make(true);
        let refs = s
            .children_of(&[ObjRef {
                oid: Oid(0),
                key: 100,
            }])
            .unwrap();
        assert_eq!(
            refs,
            vec![
                ObjRef {
                    oid: Oid(1),
                    key: 101
                },
                ObjRef {
                    oid: Oid(2),
                    key: 102
                }
            ]
        );
    }

    #[test]
    fn partial_navigation_reads_fewer_pages_than_full() {
        let mut dsm = make(false);
        let mut ddsm = make(true);
        let r = [ObjRef {
            oid: Oid(0),
            key: 100,
        }];
        dsm.clear_cache().unwrap();
        dsm.reset_stats();
        dsm.children_of(&r).unwrap();
        let dsm_pages = dsm.snapshot().pages_read;
        ddsm.clear_cache().unwrap();
        ddsm.reset_stats();
        ddsm.children_of(&r).unwrap();
        let ddsm_pages = ddsm.snapshot().pages_read;
        assert!(
            ddsm_pages < dsm_pages,
            "DASDBS-DSM ({ddsm_pages}) must beat DSM ({dsm_pages}) on navigation"
        );
    }

    #[test]
    fn root_records_project_atomics() {
        let mut s = make(true);
        let recs = s
            .root_records(&[ObjRef {
                oid: Oid(2),
                key: 102,
            }])
            .unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].attr(attr::KEY).unwrap().as_int(), Some(102));
        assert!(recs[0]
            .attr(attr::PLATFORM)
            .unwrap()
            .as_rel()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn dsm_update_replaces_whole_tuple() {
        let mut s = make(false);
        let r = ObjRef {
            oid: Oid(0),
            key: 100,
        };
        let new_name = "X".repeat(100);
        s.update_roots(
            &[r],
            &RootPatch {
                new_name: new_name.clone(),
            },
        )
        .unwrap();
        s.clear_cache().unwrap();
        let t = s.get_by_oid(Oid(0), &Projection::All).unwrap();
        assert_eq!(
            t.attr(attr::NAME).unwrap().as_str(),
            Some(new_name.as_str())
        );
        // Structure untouched.
        assert_eq!(Station::from_tuple(&t).unwrap().sightseeings.len(), 10);
    }

    #[test]
    fn dasdbs_dsm_update_patches_and_writes_pool_page() {
        let mut s = make(true);
        let r = ObjRef {
            oid: Oid(0),
            key: 100,
        };
        s.root_records(&[r]).unwrap(); // object partly cached, as in query 3
        s.reset_stats();
        let new_name = "Y".repeat(100);
        s.update_roots(
            &[r],
            &RootPatch {
                new_name: new_name.clone(),
            },
        )
        .unwrap();
        let written_now = s.snapshot().pages_written;
        assert_eq!(written_now, 1, "page-pool page is written immediately");
        s.flush().unwrap();
        // The data page carrying Name is flushed too.
        assert!(s.snapshot().pages_written >= 2);
        s.clear_cache().unwrap();
        let t = s.get_by_oid(Oid(0), &Projection::All).unwrap();
        assert_eq!(
            t.attr(attr::NAME).unwrap().as_str(),
            Some(new_name.as_str())
        );
    }

    #[test]
    fn update_rejects_wrong_length() {
        for partial in [false, true] {
            let mut s = make(partial);
            let err = s
                .update_roots(
                    &[ObjRef {
                        oid: Oid(0),
                        key: 100,
                    }],
                    &RootPatch {
                        new_name: "short".into(),
                    },
                )
                .unwrap_err();
            assert!(matches!(err, CoreError::Store(_)), "{err}");
        }
    }

    #[test]
    fn dsm_writes_more_pages_on_update_than_dasdbs_dsm_reads_less() {
        // DSM replace-tuple dirties the whole extent; DASDBS-DSM patches one
        // page (plus its pool page).
        let r = ObjRef {
            oid: Oid(0),
            key: 100,
        };
        let patch = RootPatch {
            new_name: "Z".repeat(100),
        };

        let mut dsm = make(false);
        dsm.root_records(&[r]).unwrap();
        dsm.reset_stats();
        dsm.update_roots(&[r], &patch).unwrap();
        dsm.flush().unwrap();
        let dsm_written = dsm.snapshot().pages_written;

        let mut ddsm = make(true);
        ddsm.root_records(&[r]).unwrap();
        ddsm.reset_stats();
        ddsm.update_roots(&[r], &patch).unwrap();
        ddsm.flush().unwrap();
        let ddsm_written = ddsm.snapshot().pages_written;

        assert!(
            dsm_written > ddsm_written,
            "whole-tuple replace ({dsm_written}) must write more than \
             change-attribute ({ddsm_written}) for a large object"
        );
    }

    #[test]
    fn relation_info_reports_station_file() {
        let s = make(false);
        let info = s.relation_info();
        assert_eq!(info.len(), 1);
        assert_eq!(info[0].name, "DSM-Station");
        assert_eq!(info[0].total_tuples, 3);
        assert!(info[0].p.unwrap() > 1.0);
        assert!(info[0].m > 3);
    }

    #[test]
    fn unsupported_and_missing() {
        let mut s = make(false);
        assert!(matches!(
            s.get_by_oid(Oid(99), &Projection::All),
            Err(CoreError::NotFound { .. })
        ));
    }
}
