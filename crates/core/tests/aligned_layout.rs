//! Tests for the sub-tuple-aligned (DASDBS-faithful, wasteful) layout: same
//! logical behaviour as the packed layout, more pages per object, and the
//! paper's "unprimed" DSM vs DASDBS-DSM query-1 gap restored.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use starfish_core::{make_store, subtuple_page_plan, ModelKind, StoreConfig};
use starfish_nf2::station::{station_schema, Connection, Platform, Sightseeing, Station};
use starfish_nf2::{encode_with_layout, Oid, Projection};
use starfish_pagestore::EFFECTIVE_PAGE_SIZE;

/// A benchmark-shaped database (1.6 platforms / 2.56 connections per
/// platform / 0–15 sightseeings in expectation) without depending on the
/// workload crate (which sits above this one).
fn db(n: usize) -> Vec<Station> {
    let mut rng = StdRng::seed_from_u64(21);
    (0..n)
        .map(|i| {
            let mut platforms = Vec::new();
            for pi in 0..2 {
                if !rng.random_bool(0.8) {
                    continue;
                }
                let mut connections = Vec::new();
                for ci in 0..4 {
                    if !rng.random_bool(0.64) {
                        continue;
                    }
                    let target = rng.random_range(0..n);
                    connections.push(Connection {
                        line_nr: ci,
                        key_connection: 10_000 + target as i32,
                        oid_connection: Oid(target as u32),
                        departure_times: "t".repeat(100),
                    });
                }
                platforms.push(Platform {
                    platform_nr: pi,
                    no_line: 2,
                    ticket_code: 1,
                    information: "i".repeat(100),
                    connections,
                });
            }
            let sightseeings = (0..rng.random_range(0..=15))
                .map(|si| Sightseeing {
                    seeing_nr: si,
                    description: "d".repeat(100),
                    location: "l".repeat(100),
                    history: "h".repeat(100),
                    remarks: "r".repeat(100),
                })
                .collect();
            Station {
                key: 10_000 + i as i32,
                name: format!("{i:0100}"),
                platforms,
                sightseeings,
            }
        })
        .collect()
}

#[test]
fn page_plan_keeps_subtuples_whole() {
    let schema = station_schema();
    for s in db(40) {
        let (bytes, layout) = encode_with_layout(&s.to_tuple(), &schema).unwrap();
        let plan = subtuple_page_plan(&layout, bytes.len());
        // Plan invariants: starts at 0, strictly increasing, chunks ≤ page.
        assert_eq!(plan[0], 0);
        for w in plan.windows(2) {
            assert!(w[0] < w[1]);
            assert!((w[1] - w[0]) as usize <= EFFECTIVE_PAGE_SIZE);
        }
        // No sightseeing sub-tuple straddles a page boundary (they all fit
        // a page, so alignment must protect each one).
        let page_of = |b: u32| plan.partition_point(|&s| s <= b) - 1;
        if let Some(a) = layout.attrs.get(5) {
            for t in &a.tuples {
                assert_eq!(
                    page_of(t.start),
                    page_of(t.start + t.len - 1),
                    "sightseeing sub-tuple straddles pages (station {})",
                    s.key
                );
            }
        }
    }
}

#[test]
fn aligned_store_returns_identical_objects() {
    let db = db(60);
    for kind in [ModelKind::Dsm, ModelKind::DasdbsDsm] {
        let mut packed = make_store(kind, StoreConfig::default());
        let mut aligned = make_store(kind, StoreConfig::default().aligned());
        let refs = packed.load(&db).unwrap();
        aligned.load(&db).unwrap();
        for r in refs.iter().step_by(7) {
            let a = packed.get_by_oid(r.oid, &Projection::All).unwrap();
            let b = aligned.get_by_oid(r.oid, &Projection::All).unwrap();
            assert_eq!(a, b, "{kind} object {}", r.oid);
        }
        // Navigation agrees too.
        let a = packed.children_of(&refs[..8]).unwrap();
        let b = aligned.children_of(&refs[..8]).unwrap();
        assert_eq!(a, b, "{kind}");
    }
}

#[test]
fn alignment_waste_costs_pages() {
    let db = db(80);
    let mut packed = make_store(ModelKind::Dsm, StoreConfig::default());
    let mut aligned = make_store(ModelKind::Dsm, StoreConfig::default().aligned());
    packed.load(&db).unwrap();
    aligned.load(&db).unwrap();
    assert!(
        aligned.database_pages() > packed.database_pages(),
        "aligned layout must allocate more pages ({} vs {})",
        aligned.database_pages(),
        packed.database_pages()
    );
    // The measured average pages/object (Table 2's p) grows accordingly.
    let p_packed = packed.relation_info()[0].p.unwrap();
    let p_aligned = aligned.relation_info()[0].p.unwrap();
    assert!(p_aligned > p_packed, "{p_aligned} vs {p_packed}");
}

#[test]
fn aligned_layout_restores_the_unprimed_query1_gap() {
    // The paper's Table 3: DSM q1a = 4.00 (reads the allocated pages,
    // waste included) vs DASDBS-DSM 3.00 (reads only pages with used data).
    // Packed layouts collapse that gap; the aligned layout restores it.
    let db = db(120);
    let read_q1a = |kind: ModelKind, config: StoreConfig| -> f64 {
        let mut store = make_store(kind, config);
        let refs = store.load(&db).unwrap();
        let mut pages = 0u64;
        let sample = 30;
        for r in refs.iter().take(sample) {
            store.clear_cache().unwrap();
            store.reset_stats();
            store.get_by_oid(r.oid, &Projection::All).unwrap();
            pages += store.snapshot().pages_read;
        }
        pages as f64 / sample as f64
    };
    let dsm_packed = read_q1a(ModelKind::Dsm, StoreConfig::default());
    let dsm_aligned = read_q1a(ModelKind::Dsm, StoreConfig::default().aligned());
    let ddsm_aligned = read_q1a(ModelKind::DasdbsDsm, StoreConfig::default().aligned());
    assert!(
        dsm_aligned > dsm_packed + 0.05,
        "alignment must cost DSM extra reads: {dsm_packed} -> {dsm_aligned}"
    );
    // DASDBS-DSM reads the same pages for a FULL retrieval (all data is
    // used), but its projected reads dodge the waste — check navigation.
    let nav_pages = |kind: ModelKind| -> f64 {
        let mut store = make_store(kind, StoreConfig::default().aligned());
        let refs = store.load(&db).unwrap();
        store.clear_cache().unwrap();
        store.reset_stats();
        store.children_of(&refs[..20]).unwrap();
        store.snapshot().pages_read as f64 / 20.0
    };
    let dsm_nav = nav_pages(ModelKind::Dsm);
    let ddsm_nav = nav_pages(ModelKind::DasdbsDsm);
    assert!(
        ddsm_nav + 0.5 < dsm_nav,
        "DASDBS-DSM must dodge the aligned waste on navigation: {ddsm_nav} vs {dsm_nav}"
    );
    let _ = ddsm_aligned;
}

#[test]
fn updates_work_under_alignment() {
    use starfish_core::{ObjRef, RootPatch};
    let db = db(40);
    for kind in [ModelKind::Dsm, ModelKind::DasdbsDsm] {
        let mut store = make_store(kind, StoreConfig::default().aligned());
        let refs = store.load(&db).unwrap();
        let victims: Vec<ObjRef> = refs.iter().copied().step_by(5).collect();
        let new_name = "A".repeat(100);
        store
            .update_roots(
                &victims,
                &RootPatch {
                    new_name: new_name.clone(),
                },
            )
            .unwrap();
        store.clear_cache().unwrap();
        for v in &victims {
            let t = store.get_by_oid(v.oid, &Projection::All).unwrap();
            assert_eq!(
                Station::from_tuple(&t).unwrap().name,
                new_name,
                "{kind} object {}",
                v.oid
            );
        }
    }
}
