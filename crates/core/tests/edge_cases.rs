//! Edge-case tests for the storage models: degenerate databases, degenerate
//! objects, duplicate references, tiny buffers.

use starfish_core::{make_store, CoreError, ModelKind, ObjRef, RootPatch, StoreConfig};
use starfish_nf2::station::{Connection, Platform, Station};
use starfish_nf2::{Oid, Projection};

fn bare_station(key: i32) -> Station {
    Station {
        key,
        name: format!("{key:0100}"),
        platforms: vec![],
        sightseeings: vec![],
    }
}

fn with_self_loop(key: i32, oid: u32) -> Station {
    Station {
        key,
        name: format!("{key:0100}"),
        platforms: vec![Platform {
            platform_nr: 1,
            no_line: 1,
            ticket_code: 0,
            information: "i".repeat(100),
            connections: vec![Connection {
                line_nr: 1,
                key_connection: key,
                oid_connection: Oid(oid),
                departure_times: "t".repeat(100),
            }],
        }],
        sightseeings: vec![],
    }
}

#[test]
fn empty_database_errors_cleanly_everywhere() {
    for kind in ModelKind::all() {
        let mut store = make_store(kind, StoreConfig::default());
        store.load(&[]).unwrap();
        assert_eq!(store.object_count(), 0);
        assert!(store.get_by_key(1, &Projection::All).is_err(), "{kind}");
        let mut n = 0;
        store.scan_all(&mut |_| n += 1).unwrap();
        assert_eq!(n, 0, "{kind}");
        assert!(store.children_of(&[]).unwrap().is_empty());
        assert!(store.root_records(&[]).unwrap().is_empty());
        store
            .update_roots(
                &[],
                &RootPatch {
                    new_name: "x".into(),
                },
            )
            .unwrap();
        store.flush().unwrap();
    }
}

#[test]
fn single_object_database_works() {
    for kind in ModelKind::all() {
        let db = vec![bare_station(42)];
        let mut store = make_store(kind, StoreConfig::default());
        let refs = store.load(&db).unwrap();
        assert_eq!(refs.len(), 1);
        let t = store.get_by_key(42, &Projection::All).unwrap();
        assert_eq!(Station::from_tuple(&t).unwrap(), db[0], "{kind}");
        assert!(store.children_of(&refs).unwrap().is_empty(), "{kind}");
    }
}

#[test]
fn objects_without_platforms_or_sightseeings_roundtrip() {
    for kind in ModelKind::all() {
        let db = vec![bare_station(1), bare_station(2), bare_station(3)];
        let mut store = make_store(kind, StoreConfig::default());
        store.load(&db).unwrap();
        let mut seen = Vec::new();
        store
            .scan_all(&mut |t| seen.push(Station::from_tuple(t).unwrap()))
            .unwrap();
        assert_eq!(seen, db, "{kind}");
    }
}

#[test]
fn self_referencing_objects_navigate_to_themselves() {
    for kind in ModelKind::all() {
        let db = vec![with_self_loop(7, 0)];
        let mut store = make_store(kind, StoreConfig::default());
        let refs = store.load(&db).unwrap();
        let children = store.children_of(&refs).unwrap();
        assert_eq!(
            children,
            vec![ObjRef {
                oid: Oid(0),
                key: 7
            }],
            "{kind}"
        );
        // Grand-children of a self-loop are the object again.
        let grand = store.children_of(&children).unwrap();
        assert_eq!(grand, children, "{kind}");
    }
}

#[test]
fn duplicate_update_refs_are_idempotent() {
    for kind in ModelKind::all() {
        let db = vec![bare_station(5), bare_station(6)];
        let mut store = make_store(kind, StoreConfig::default());
        let refs = store.load(&db).unwrap();
        let r = refs[1];
        let patch = RootPatch {
            new_name: "N".repeat(100),
        };
        store.update_roots(&[r, r, r], &patch).unwrap();
        store.clear_cache().unwrap();
        let t = store.get_by_key(6, &Projection::All).unwrap();
        assert_eq!(
            Station::from_tuple(&t).unwrap().name,
            patch.new_name,
            "{kind}"
        );
    }
}

#[test]
fn update_of_missing_object_errors() {
    for kind in ModelKind::all() {
        let mut store = make_store(kind, StoreConfig::default());
        store.load(&[bare_station(1)]).unwrap();
        let bogus = ObjRef {
            oid: Oid(99),
            key: 99,
        };
        assert!(
            matches!(
                store.update_roots(
                    &[bogus],
                    &RootPatch {
                        new_name: "x".repeat(100)
                    }
                ),
                Err(CoreError::NotFound { .. })
            ),
            "{kind}"
        );
    }
}

#[test]
fn tiny_buffer_still_produces_correct_answers() {
    // Correctness must be independent of the cache size; only the I/O
    // counts change.
    let db: Vec<Station> = (0..30).map(|i| with_self_loop(100 + i, i as u32)).collect();
    for kind in ModelKind::all() {
        let mut tiny = make_store(kind, StoreConfig::with_buffer_pages(2));
        let refs = tiny.load(&db).unwrap();
        let mut big = make_store(kind, StoreConfig::with_buffer_pages(10_000));
        big.load(&db).unwrap();
        let a = tiny.children_of(&refs).unwrap();
        let b = big.children_of(&refs).unwrap();
        assert_eq!(a, b, "{kind}");
        let ta = tiny.get_by_key(105, &Projection::All).unwrap();
        let tb = big.get_by_key(105, &Projection::All).unwrap();
        assert_eq!(ta, tb, "{kind}");
        assert!(
            tiny.snapshot().pages_read >= big.snapshot().pages_read,
            "{kind}: a smaller cache can only read more"
        );
    }
}

#[test]
fn projections_are_honoured_by_every_oid_capable_model() {
    let db = vec![with_self_loop(9, 0)];
    let proj = starfish_nf2::station::proj_root_record();
    for kind in ModelKind::all() {
        if kind == ModelKind::Nsm {
            continue;
        }
        let mut store = make_store(kind, StoreConfig::default());
        let refs = store.load(&db).unwrap();
        let t = store.get_by_oid(refs[0].oid, &proj).unwrap();
        assert_eq!(t.attr(0).unwrap().as_int(), Some(9), "{kind}");
        assert!(
            t.attr(4).unwrap().as_rel().unwrap().is_empty(),
            "{kind}: platforms must be projected away"
        );
    }
}

#[test]
fn reload_replaces_the_database() {
    for kind in ModelKind::all() {
        let mut store = make_store(kind, StoreConfig::default());
        store.load(&[bare_station(1), bare_station(2)]).unwrap();
        store.load(&[bare_station(10)]).unwrap();
        assert_eq!(store.object_count(), 1, "{kind}");
        assert!(store.get_by_key(10, &Projection::All).is_ok(), "{kind}");
        assert!(store.get_by_key(1, &Projection::All).is_err(), "{kind}");
    }
}
