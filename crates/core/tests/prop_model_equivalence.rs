//! Cross-model equivalence: all five storage-model variants must expose
//! exactly the same logical database — identical objects from every access
//! path, identical navigation, identical update results. The models may only
//! differ in *which pages they touch*, never in *what they return*.

use proptest::prelude::*;
use starfish_core::{make_store, ComplexObjectStore, ModelKind, ObjRef, RootPatch, StoreConfig};
use starfish_nf2::station::{Connection, Platform, Sightseeing, Station};
use starfish_nf2::{Oid, Projection};

/// Builds a consistent random database of `n` stations whose connections
/// reference stations in the same database.
fn arb_db(max_n: usize) -> impl Strategy<Value = Vec<Station>> {
    (2usize..=max_n).prop_flat_map(|n| {
        (0..n)
            .map(move |i| arb_station(i as i32, n as u32))
            .collect::<Vec<_>>()
    })
}

fn arb_station(idx: i32, n: u32) -> impl Strategy<Value = Station> {
    let key = 1000 + idx;
    (
        proptest::collection::vec(
            (
                0u32..n,
                proptest::collection::vec((0u32..n, any::<u8>()), 0..4),
            ),
            0..3,
        ),
        0usize..6,
        any::<u8>(),
    )
        .prop_map(move |(platform_specs, n_seeing, salt)| Station {
            key,
            name: format!("{key:08}-{salt:03}-{}", "n".repeat(88)),
            platforms: platform_specs
                .iter()
                .enumerate()
                .map(|(pi, (_, conns))| Platform {
                    platform_nr: pi as i32,
                    no_line: (pi as i32) + 1,
                    ticket_code: idx,
                    information: "i".repeat(100),
                    connections: conns
                        .iter()
                        .map(|&(target, line)| Connection {
                            line_nr: line as i32,
                            key_connection: 1000 + target as i32,
                            oid_connection: Oid(target),
                            departure_times: "t".repeat(100),
                        })
                        .collect(),
                })
                .collect(),
            sightseeings: (0..n_seeing)
                .map(|i| Sightseeing {
                    seeing_nr: i as i32,
                    description: "d".repeat(100),
                    location: "l".repeat(100),
                    history: "h".repeat(100),
                    remarks: "r".repeat(100),
                })
                .collect(),
        })
}

fn all_stores(db: &[Station]) -> Vec<Box<dyn ComplexObjectStore>> {
    ModelKind::all()
        .into_iter()
        .map(|kind| {
            let mut s = make_store(kind, StoreConfig::default());
            s.load(db).unwrap();
            s
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_models_return_identical_objects(db in arb_db(6)) {
        let mut stores = all_stores(&db);
        for (i, expect) in db.iter().enumerate() {
            let mut answers = Vec::new();
            for s in &mut stores {
                let t = s.get_by_key(expect.key, &Projection::All).unwrap();
                answers.push((s.model(), Station::from_tuple(&t).unwrap()));
            }
            for (model, got) in &answers {
                prop_assert_eq!(got, &db[i], "model {} object {}", model, i);
            }
        }
    }

    #[test]
    fn all_models_navigate_identically(db in arb_db(6)) {
        let mut stores = all_stores(&db);
        let refs: Vec<ObjRef> = db
            .iter()
            .enumerate()
            .map(|(i, s)| ObjRef { oid: Oid(i as u32), key: s.key })
            .collect();
        let expected: Vec<Vec<ObjRef>> = stores
            .iter_mut()
            .map(|s| s.children_of(&refs).unwrap())
            .collect();
        for w in expected.windows(2) {
            prop_assert_eq!(&w[0], &w[1]);
        }
        // And the root records agree (key + name fields).
        let roots: Vec<Vec<(Option<i32>, String)>> = stores
            .iter_mut()
            .map(|s| {
                s.root_records(&refs)
                    .unwrap()
                    .iter()
                    .map(|t| {
                        (
                            t.attr(0).and_then(starfish_nf2::Value::as_int),
                            t.attr(3)
                                .and_then(starfish_nf2::Value::as_str)
                                .unwrap_or_default()
                                .to_string(),
                        )
                    })
                    .collect()
            })
            .collect();
        for w in roots.windows(2) {
            prop_assert_eq!(&w[0], &w[1]);
        }
    }

    #[test]
    fn updates_converge_across_models(db in arb_db(5), victim in 0usize..5) {
        let victim = victim % db.len();
        let mut stores = all_stores(&db);
        let r = ObjRef { oid: Oid(victim as u32), key: db[victim].key };
        let new_name = format!("{:07}", victim + 7)
            + &"X".repeat(db[victim].name.len().saturating_sub(7));
        for s in &mut stores {
            s.update_roots(&[r], &RootPatch { new_name: new_name.clone() }).unwrap();
            s.clear_cache().unwrap();
            let t = s.get_by_key(r.key, &Projection::All).unwrap();
            let got = Station::from_tuple(&t).unwrap();
            prop_assert_eq!(&got.name, &new_name, "model {}", s.model());
            // Everything else unchanged.
            let mut expect = db[victim].clone();
            expect.name = new_name.clone();
            prop_assert_eq!(got, expect, "model {}", s.model());
        }
    }

    #[test]
    fn scan_all_agrees_with_point_lookups(db in arb_db(5)) {
        for kind in ModelKind::all() {
            let mut s = make_store(kind, StoreConfig::default());
            s.load(&db).unwrap();
            let mut seen = Vec::new();
            s.scan_all(&mut |t| seen.push(Station::from_tuple(t).unwrap())).unwrap();
            prop_assert_eq!(&seen, &db, "model {}", kind);
        }
    }
}
