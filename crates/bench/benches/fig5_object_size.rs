//! Figure 5 bench: regenerates the object-size sweep (max sightseeings
//! 0/15/30) and times query 2b under each size for the direct models.

mod common;

use criterion::Criterion;
use starfish_core::ModelKind;
use starfish_cost::QueryId;
use starfish_harness::experiments::fig5;
use std::hint::black_box;

fn main() {
    let config = common::bench_config();
    common::show(&fig5::run(&config).expect("fig5"));

    let mut c: Criterion = common::criterion();
    for max_s in fig5::SIGHTSEEING_MAXIMA {
        let params = config.dataset().with_max_sightseeing(max_s);
        for kind in [ModelKind::Dsm, ModelKind::DasdbsDsm, ModelKind::DasdbsNsm] {
            let (mut store, runner) = common::loaded_with(kind, &params);
            c.bench_function(&format!("fig5/{kind}/maxSee={max_s}/q2b"), |b| {
                b.iter(|| black_box(runner.run(store.as_mut(), QueryId::Q2b).unwrap()))
            });
        }
    }
    c.final_summary();
}
