//! Table 7 bench: regenerates the data-skew comparison and times query 2b
//! under the default and skewed generators.

mod common;

use criterion::Criterion;
use starfish_cost::QueryId;
use starfish_harness::experiments::table7;
use starfish_workload::DatasetParams;
use std::hint::black_box;

fn main() {
    let config = common::bench_config();
    common::show(&table7::run(&config).expect("table7"));

    let mut c: Criterion = common::criterion();
    let default_params = config.dataset();
    let skew_params = DatasetParams {
        n_objects: config.n_objects,
        seed: config.dataset_seed,
        ..DatasetParams::skewed()
    };
    for (label, params) in [("default", &default_params), ("skew", &skew_params)] {
        for kind in table7::TABLE7_MODELS {
            let (mut store, runner) = common::loaded_with(kind, params);
            c.bench_function(&format!("table7/{kind}/{label}/q2b"), |b| {
                b.iter(|| black_box(runner.run(store.as_mut(), QueryId::Q2b).unwrap()))
            });
        }
    }
    c.final_summary();
}
