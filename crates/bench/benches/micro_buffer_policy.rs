//! Micro-benchmarks of the buffer-replacement policies.
//!
//! Three access shapes per policy:
//!
//! * `hit` — the fix hot path on a cached page: one hash probe plus the
//!   policy's access bookkeeping. This is the path the O(1) LRU rewrite
//!   targets (the seed paid a `BTreeMap` remove + insert per fix).
//! * `churn` — a cyclic sweep over twice the buffer capacity: every fix
//!   misses and evicts under recency policies, so this times the victim
//!   path plus frame turnover.
//! * `skew` — 9 hits on a resident hot set to 1 cold miss, the regime the
//!   paper's navigation queries (2b/3b) produce.

mod common;

use criterion::Criterion;
use starfish_pagestore::{BufferPool, PageId, PolicyKind, SimDisk};
use std::hint::black_box;

const CAPACITY: usize = 1200; // the paper's buffer
const DB_PAGES: u32 = 2 * CAPACITY as u32;

fn fresh_pool(kind: PolicyKind) -> BufferPool {
    let mut disk = SimDisk::new();
    disk.alloc_extent(DB_PAGES);
    BufferPool::with_policy(disk, CAPACITY, kind)
}

fn main() {
    let mut c: Criterion = common::criterion();

    for kind in PolicyKind::all() {
        c.bench_function(&format!("buffer/{kind}/hit"), |b| {
            let mut pool = fresh_pool(kind);
            pool.with_page(PageId(0), |_| {}).unwrap();
            b.iter(|| pool.with_page(PageId(0), |p| black_box(p[0])).unwrap())
        });

        c.bench_function(&format!("buffer/{kind}/churn"), |b| {
            let mut pool = fresh_pool(kind);
            let mut next = 0u32;
            b.iter(|| {
                let r = pool.with_page(PageId(next), |p| black_box(p[0])).unwrap();
                next = (next + 1) % DB_PAGES;
                r
            })
        });

        c.bench_function(&format!("buffer/{kind}/skew"), |b| {
            let mut pool = fresh_pool(kind);
            // Resident hot set, then 9:1 hot:cold accesses.
            for i in 0..(CAPACITY as u32 / 2) {
                pool.with_page(PageId(i), |_| {}).unwrap();
            }
            let (mut tick, mut cold) = (0u32, CAPACITY as u32);
            b.iter(|| {
                let pid = if tick % 10 == 9 {
                    cold = CAPACITY as u32 + (cold + 1) % CAPACITY as u32;
                    PageId(cold)
                } else {
                    PageId(tick % (CAPACITY as u32 / 2))
                };
                tick = tick.wrapping_add(1);
                pool.with_page(pid, |p| black_box(p[0])).unwrap()
            })
        });
    }

    c.final_summary();
}
