//! Table 4 bench: regenerates the measured page-I/O grid and times each
//! model executing the benchmark queries.

mod common;

use criterion::Criterion;
use starfish_core::ModelKind;
use starfish_cost::QueryId;
use starfish_harness::experiments::{grid_models, table4};
use starfish_harness::runner::measure_grid;
use std::hint::black_box;

fn main() {
    let config = common::bench_config();
    let grid = measure_grid(&config.dataset(), &config, &grid_models()).expect("grid");
    common::show(&table4::run(&grid));

    let mut c: Criterion = common::criterion();
    for kind in ModelKind::measured_models() {
        let (mut store, runner) = common::loaded(kind);
        for q in [QueryId::Q1a, QueryId::Q2a, QueryId::Q2b] {
            if kind == ModelKind::Nsm && q == QueryId::Q1a {
                continue;
            }
            c.bench_function(&format!("table4/{kind}/q{q}"), |b| {
                b.iter(|| black_box(runner.run(store.as_mut(), q).unwrap()))
            });
        }
    }
    c.final_summary();
}
