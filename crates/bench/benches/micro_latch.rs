//! Micro-benchmarks of the per-page latch layer.
//!
//! Three questions:
//!
//! * `shared_acquire` — what one uncontended shared group latch
//!   (acquire + release around a hit) costs on top of the PR-3 read-only
//!   hit path (`read_hit_baseline`, the same fix without any latch): one
//!   hash probe into the shard's latch table plus the counter bumps.
//! * `exclusive_acquire` — the same for an exclusive group over an
//!   8-page "extent" around latched writes, the shape of a DSM
//!   replace-tuple update.
//! * `mixed/threadsN` — a fixed batch of requests split across N client
//!   threads (shards = N), 3 reads : 1 latched write on overlapping hot
//!   pages — the contended regime where latch waits actually occur. On
//!   multi-core hardware wall-clock should still shrink with N; the gap
//!   to the read-only `hit_batch` of `micro_shared_buffer` is the price
//!   of writer safety.

mod common;

use criterion::Criterion;
use starfish_pagestore::{
    BufferConfig, BufferPool, LatchMode, PageCache, PageId, SharedPoolHandle, SimDisk,
};
use std::hint::black_box;

const CAPACITY: usize = 1200; // the paper's buffer
const DB_PAGES: u32 = 2 * CAPACITY as u32;
const HOT_SET: u32 = 64;
const BATCH: u32 = 1024;
const EXTENT: u32 = 8;

fn shared(shards: usize) -> (SharedPoolHandle, PageId) {
    let h = SharedPoolHandle::new(BufferConfig::with_pages(CAPACITY), shards);
    let first = h.pool().alloc_extent(DB_PAGES);
    (h, first)
}

fn main() {
    let mut c: Criterion = common::criterion();

    // The PR-3 baseline: a shared-pool hit with no latch involved.
    c.bench_function("latch/read_hit_baseline", |b| {
        let (h, first) = shared(1);
        h.pool().with_page(first, |_| {}).unwrap();
        b.iter(|| h.pool().with_page(first, |p| black_box(p[0])).unwrap())
    });

    // Uncontended shared group latch around the same hit.
    c.bench_function("latch/shared_acquire", |b| {
        let (h, first) = shared(1);
        h.pool().with_page(first, |_| {}).unwrap();
        let pages = [first];
        b.iter(|| {
            h.pool().latch_pages(&pages, LatchMode::Shared).unwrap();
            let r = h.pool().with_page(first, |p| black_box(p[0])).unwrap();
            h.pool().unlatch_pages(&pages, LatchMode::Shared);
            r
        })
    });

    // Uncontended exclusive group over an extent, around latched writes —
    // the DSM replace-tuple shape.
    c.bench_function("latch/exclusive_acquire", |b| {
        let (h, first) = shared(1);
        let pages: Vec<PageId> = (0..EXTENT).map(|i| first.offset(i)).collect();
        for &p in &pages {
            h.pool().with_page(p, |_| {}).unwrap();
        }
        b.iter(|| {
            h.pool().latch_pages(&pages, LatchMode::Exclusive).unwrap();
            for &p in &pages {
                h.pool()
                    .with_page_mut(p, |b| b[0] = b[0].wrapping_add(1))
                    .unwrap();
            }
            h.pool().unlatch_pages(&pages, LatchMode::Exclusive);
        })
    });

    // The exclusive pool runs the same latched write shape as counted
    // no-ops — the serial cost of the write surface.
    c.bench_function("latch/exclusive_acquire_serial_noop", |b| {
        let mut disk = SimDisk::new();
        let first = disk.alloc_extent(DB_PAGES);
        let mut pool = BufferPool::new(disk, CAPACITY);
        let pages: Vec<PageId> = (0..EXTENT).map(|i| first.offset(i)).collect();
        for &p in &pages {
            pool.with_page(p, |_| {}).unwrap();
        }
        b.iter(|| {
            PageCache::latch_pages(&mut pool, &pages, LatchMode::Exclusive).unwrap();
            for &p in &pages {
                pool.with_page_mut(p, |b| b[0] = b[0].wrapping_add(1))
                    .unwrap();
            }
            PageCache::unlatch_pages(&mut pool, &pages, LatchMode::Exclusive);
        })
    });

    // Contended mixed batches: 3 reads : 1 latched single-page write over
    // a shared hot set, N clients over N shards.
    for threads in [2usize, 4, 8] {
        c.bench_function(&format!("latch/mixed/threads{threads}"), |b| {
            let (h, first) = shared(threads);
            for i in 0..HOT_SET {
                h.pool().with_page(first.offset(i), |_| {}).unwrap();
            }
            let per_thread = BATCH / threads as u32;
            b.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..threads as u32 {
                        let h = h.clone();
                        s.spawn(move || {
                            for r in 0..per_thread {
                                let i = (t * 17 + r) % HOT_SET;
                                let pid = first.offset(i);
                                if r % 4 == 3 {
                                    h.pool().latch_pages(&[pid], LatchMode::Exclusive).unwrap();
                                    h.pool()
                                        .with_page_mut(pid, |p| p[0] = p[0].wrapping_add(1))
                                        .unwrap();
                                    h.pool().unlatch_pages(&[pid], LatchMode::Exclusive);
                                } else {
                                    h.pool().with_page(pid, |p| black_box(p[0])).unwrap();
                                }
                            }
                        });
                    }
                });
            })
        });
    }

    c.final_summary();
}
