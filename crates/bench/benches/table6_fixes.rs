//! Table 6 bench: regenerates the buffer-fix table and times the buffer
//! manager's fix paths (hits, misses, LRU maintenance) — the paper's
//! CPU-load proxy.

mod common;

use criterion::Criterion;
use starfish_harness::experiments::{grid_models, table6};
use starfish_harness::runner::measure_grid;
use starfish_pagestore::{BufferPool, PageId, SimDisk};
use std::hint::black_box;

fn main() {
    let config = common::bench_config();
    let grid = measure_grid(&config.dataset(), &config, &grid_models()).expect("grid");
    common::show(&table6::run(&grid));

    let mut c: Criterion = common::criterion();

    // Pure hit path (the NSM rescan regime: everything cached, high fixes).
    let mut pool = BufferPool::new(SimDisk::new(), 700);
    pool.alloc_extent(600);
    for i in 0..600u32 {
        pool.with_page(PageId(i), |_| {}).unwrap();
    }
    c.bench_function("table6/fix_hit_rescan_600_pages", |b| {
        b.iter(|| {
            for i in 0..600u32 {
                pool.with_page(PageId(i), |p| black_box(p[0])).unwrap();
            }
        })
    });

    // Miss + eviction path (the DSM overflow regime).
    let mut pool = BufferPool::new(SimDisk::new(), 64);
    pool.alloc_extent(4096);
    c.bench_function("table6/fix_miss_evict_cycle", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i.wrapping_mul(1103515245).wrapping_add(12345)) % 4096;
            pool.with_page(PageId(i), |p| black_box(p[0])).unwrap();
        })
    });

    c.final_summary();
}
