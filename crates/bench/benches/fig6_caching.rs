//! Figure 6 bench: regenerates the caching sweep and times query 2b at the
//! smallest and largest database sizes (no-overflow vs overflow regimes).

mod common;

use criterion::Criterion;
use starfish_core::ModelKind;
use starfish_cost::QueryId;
use starfish_harness::experiments::fig6;
use std::hint::black_box;

fn main() {
    let config = common::bench_config();
    common::show(&fig6::run(&config).expect("fig6"));

    let mut c: Criterion = common::criterion();
    let sizes = fig6::sweep_sizes(&config);
    let endpoints = [sizes[0], *sizes.last().expect("nonempty")];
    for n in endpoints {
        let params = config.dataset().with_objects(n);
        for kind in [ModelKind::Dsm, ModelKind::DasdbsNsm] {
            let (mut store, runner) = common::loaded_with(kind, &params);
            c.bench_function(&format!("fig6/{kind}/{n}_objects/q2b"), |b| {
                b.iter(|| black_box(runner.run(store.as_mut(), QueryId::Q2b).unwrap()))
            });
        }
    }
    c.final_summary();
}
