//! Table 8 bench: regenerates the overall ranking and times the full
//! grid measurement it derives from (the complete benchmark, all models,
//! all queries).

mod common;

use criterion::Criterion;
use starfish_harness::experiments::{grid_models, table8};
use starfish_harness::runner::measure_grid;
use std::hint::black_box;

fn main() {
    let config = common::bench_config();
    let grid = measure_grid(&config.dataset(), &config, &grid_models()).expect("grid");
    common::show(&table8::run(&grid));

    let mut c: Criterion = common::criterion();
    c.bench_function("table8/derive_ranking_from_grid", |b| {
        b.iter(|| black_box(table8::run(&grid)))
    });
    // The full benchmark end-to-end, at a reduced size to keep iterations
    // affordable: this is "the evaluation" as one measurable unit.
    let tiny = starfish_harness::runner::HarnessConfig {
        n_objects: 80,
        buffer_pages: 64,
        ..config
    };
    c.bench_function("table8/full_benchmark_grid_80_objects", |b| {
        b.iter(|| black_box(measure_grid(&tiny.dataset(), &tiny, &grid_models()).expect("grid")))
    });
    c.final_summary();
}
