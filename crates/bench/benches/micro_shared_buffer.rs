//! Micro-benchmarks of the sharded, thread-safe buffer pool.
//!
//! Three questions, each against the exclusive `BufferPool` baseline:
//!
//! * `hit` vs **shard count** — what one uncontended fix costs through a
//!   shard mutex (one lock/unlock + the usual hash probe and policy
//!   bookkeeping), and whether more shards change the single-client cost
//!   (they should not: a fix touches exactly one shard whatever K is).
//! * `hit_batch` vs **thread count** — a fixed batch of hot-set fixes
//!   split across N client threads (shards = N). On multi-core hardware
//!   the batch wall-clock should shrink with N; on one core it measures
//!   pure locking/scheduling overhead.
//! * `churn` — the cyclic-sweep miss path (eviction + reload through the
//!   shared disk's RwLock) with 1 vs 8 shards.

mod common;

use criterion::Criterion;
use starfish_pagestore::{BufferConfig, BufferPool, PageId, SharedPoolHandle, SimDisk};
use std::hint::black_box;

const CAPACITY: usize = 1200; // the paper's buffer
const DB_PAGES: u32 = 2 * CAPACITY as u32;
const HOT_SET: u32 = 64;
const BATCH: u32 = 1024;

fn shared(shards: usize) -> (SharedPoolHandle, PageId) {
    let h = SharedPoolHandle::new(BufferConfig::with_pages(CAPACITY), shards);
    let first = h.pool().alloc_extent(DB_PAGES);
    (h, first)
}

fn main() {
    let mut c: Criterion = common::criterion();

    // Baseline: the exclusive pool's hit path (no locks at all).
    c.bench_function("shared_buffer/exclusive/hit", |b| {
        let mut disk = SimDisk::new();
        let first = disk.alloc_extent(DB_PAGES);
        let mut pool = BufferPool::new(disk, CAPACITY);
        pool.with_page(first, |_| {}).unwrap();
        b.iter(|| pool.with_page(first, |p| black_box(p[0])).unwrap())
    });

    for shards in [1usize, 4, 16] {
        c.bench_function(&format!("shared_buffer/shards{shards}/hit"), |b| {
            let (h, first) = shared(shards);
            h.pool().with_page(first, |_| {}).unwrap();
            b.iter(|| h.pool().with_page(first, |p| black_box(p[0])).unwrap())
        });
    }

    for threads in [1usize, 2, 4, 8] {
        c.bench_function(&format!("shared_buffer/threads{threads}/hit_batch"), |b| {
            let (h, first) = shared(threads);
            for i in 0..HOT_SET {
                h.pool().with_page(first.offset(i), |_| {}).unwrap();
            }
            let per_thread = BATCH / threads as u32;
            b.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..threads as u32 {
                        let h = h.clone();
                        s.spawn(move || {
                            for r in 0..per_thread {
                                let i = (t * 17 + r) % HOT_SET;
                                h.pool()
                                    .with_page(first.offset(i), |p| black_box(p[0]))
                                    .unwrap();
                            }
                        });
                    }
                });
            })
        });
    }

    for shards in [1usize, 8] {
        c.bench_function(&format!("shared_buffer/shards{shards}/churn"), |b| {
            let (h, first) = shared(shards);
            let mut next = 0u32;
            b.iter(|| {
                let r = h
                    .pool()
                    .with_page(first.offset(next), |p| black_box(p[0]))
                    .unwrap();
                next = (next + 1) % DB_PAGES;
                r
            })
        });
    }

    c.final_summary();
}
