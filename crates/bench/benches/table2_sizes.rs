//! Table 2 bench: regenerates the size/parameter table and times what
//! produces it — encoding objects and bulk-loading each storage model.

mod common;

use starfish_core::{make_store, ModelKind, StoreConfig};
use starfish_harness::experiments::table2;
use starfish_nf2::{encode_with_layout, station::station_schema};
use starfish_workload::generate;
use std::hint::black_box;

fn main() {
    let config = common::bench_config();
    common::show(&table2::run(&config).expect("table2"));

    let mut c = common::criterion();
    let db = generate(&config.dataset());
    let schema = station_schema();

    c.bench_function("table2/encode_station", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let s = &db[i % db.len()];
            i += 1;
            black_box(encode_with_layout(&s.to_tuple(), &schema).unwrap())
        })
    });

    for kind in ModelKind::measured_models() {
        c.bench_function(&format!("table2/bulk_load/{kind}"), |b| {
            b.iter(|| {
                let mut store =
                    make_store(kind, StoreConfig::with_buffer_pages(config.buffer_pages));
                black_box(store.load(&db).unwrap());
                store.database_pages()
            })
        });
    }

    c.final_summary();
}
