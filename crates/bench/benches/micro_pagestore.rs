//! Micro-benchmarks of the storage substrate and the NF² codec.

mod common;

use criterion::Criterion;
use starfish_nf2::station::{station_schema, Sightseeing, Station};
use starfish_nf2::{decode, encode_with_layout, Projection};
use starfish_pagestore::{slotted, BufferPool, PageId, SimDisk, PAGE_SIZE};
use std::hint::black_box;

fn sample_station() -> Station {
    Station {
        key: 1,
        name: "n".repeat(100),
        platforms: vec![],
        sightseeings: (0..8)
            .map(|i| Sightseeing {
                seeing_nr: i,
                description: "d".repeat(100),
                location: "l".repeat(100),
                history: "h".repeat(100),
                remarks: "r".repeat(100),
            })
            .collect(),
    }
}

fn main() {
    let mut c: Criterion = common::criterion();
    let schema = station_schema();
    let tuple = sample_station().to_tuple();
    let (bytes, layout) = encode_with_layout(&tuple, &schema).unwrap();

    c.bench_function("nf2/encode_with_layout", |b| {
        b.iter(|| black_box(encode_with_layout(&tuple, &schema).unwrap()))
    });
    c.bench_function("nf2/decode_full", |b| {
        b.iter(|| black_box(decode(&bytes, &schema).unwrap()))
    });
    c.bench_function("nf2/projection_byte_ranges", |b| {
        let proj = starfish_nf2::station::proj_navigation();
        b.iter(|| black_box(proj.byte_ranges(&layout)))
    });
    c.bench_function("nf2/projection_apply", |b| {
        let proj = Projection::atomics(&schema);
        b.iter(|| black_box(proj.apply(&tuple, &schema)))
    });

    c.bench_function("slotted/insert_read_delete", |b| {
        let mut page = Box::new([0u8; PAGE_SIZE]);
        b.iter(|| {
            slotted::init(&mut page);
            let s0 = slotted::insert(&mut page, &[1u8; 166]).unwrap();
            let s1 = slotted::insert(&mut page, &[2u8; 166]).unwrap();
            slotted::read(&page, s0, |b| black_box(b[0])).unwrap();
            slotted::delete(&mut page, s1).unwrap();
            black_box(slotted::free_content_bytes(&page))
        })
    });

    c.bench_function("buffer/with_page_hit", |b| {
        let mut pool = BufferPool::new(SimDisk::new(), 8);
        pool.alloc_extent(4);
        pool.with_page(PageId(0), |_| {}).unwrap();
        b.iter(|| pool.with_page(PageId(0), |p| black_box(p[0])).unwrap())
    });

    c.final_summary();
}
