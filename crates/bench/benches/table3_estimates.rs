//! Table 3 bench: regenerates the analytical table and times the estimator
//! (all 8 model variants × 7 queries).

mod common;

use criterion::Criterion;
use starfish_cost::{table3, BenchProfile, EstimatorInputs};
use starfish_harness::experiments::table3 as table3_exp;
use std::hint::black_box;

fn main() {
    common::show(&table3_exp::run(&common::bench_config()));

    let mut c: Criterion = common::criterion();
    let inputs = EstimatorInputs::new(BenchProfile::default());
    c.bench_function("table3/full_estimator_grid", |b| {
        b.iter(|| black_box(table3(&inputs)))
    });
    c.bench_function("table3/derive_profile_table2", |b| {
        b.iter(|| black_box(BenchProfile::default().table2()))
    });
    c.final_summary();
}
