#![allow(dead_code)] // each bench target compiles this module separately

//! Shared bench helpers: every bench regenerates its paper artifact once
//! (printing it to stderr so `cargo bench` output doubles as the
//! reproduction record) and then times the operations that produce it.

use criterion::Criterion;
use starfish_core::{make_store, ComplexObjectStore, ModelKind, StoreConfig};
use starfish_harness::runner::HarnessConfig;
use starfish_workload::{generate, DatasetParams, QueryRunner};

/// Bench scale: large enough to preserve the paper's DB ≫ buffer regime,
/// small enough that a full `cargo bench` stays in minutes.
pub fn bench_config() -> HarnessConfig {
    HarnessConfig::fast()
}

/// Criterion tuned for workload-level benches.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .configure_from_args()
}

/// Builds a loaded store + runner at bench scale.
pub fn loaded(kind: ModelKind) -> (Box<dyn ComplexObjectStore>, QueryRunner) {
    let config = bench_config();
    let db = generate(&config.dataset());
    let mut store = make_store(kind, StoreConfig::with_buffer_pages(config.buffer_pages));
    let refs = store.load(&db).expect("load");
    (store, QueryRunner::new(refs, config.query_seed))
}

/// Builds a loaded store + runner for explicit dataset parameters.
pub fn loaded_with(
    kind: ModelKind,
    params: &DatasetParams,
) -> (Box<dyn ComplexObjectStore>, QueryRunner) {
    let config = bench_config();
    let db = generate(params);
    let mut store = make_store(kind, StoreConfig::with_buffer_pages(config.buffer_pages));
    let refs = store.load(&db).expect("load");
    (store, QueryRunner::new(refs, config.query_seed))
}

/// Prints a regenerated report to stderr, once, before timing starts.
pub fn show(report: &starfish_harness::ExperimentReport) {
    eprintln!("\n{}", report.render());
}
