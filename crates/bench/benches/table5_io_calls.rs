//! Table 5 bench: regenerates the I/O-call table and times the substrate
//! behaviour that shapes it — grouped multi-page reads vs single-page scans.

mod common;

use criterion::Criterion;
use starfish_harness::experiments::{grid_models, table5};
use starfish_harness::runner::measure_grid;
use starfish_pagestore::{BufferPool, HeapFile, PageId, SimDisk, SpannedStore};
use std::hint::black_box;

fn main() {
    let config = common::bench_config();
    let grid = measure_grid(&config.dataset(), &config, &grid_models()).expect("grid");
    common::show(&table5::run(&grid));

    let mut c: Criterion = common::criterion();

    // A spanned object read = root call + data-run call (DSM's ≈2 pages/call).
    let mut pool = BufferPool::new(SimDisk::new(), 64);
    let rec = SpannedStore::store(&mut pool, &vec![1u8; 500], &vec![2u8; 6000]).unwrap();
    c.bench_function("table5/spanned_read_grouped_calls", |b| {
        b.iter(|| {
            pool.clear_cache().unwrap();
            let h = SpannedStore::read_header(&mut pool, &rec).unwrap();
            let d = SpannedStore::read_data(&mut pool, &rec).unwrap();
            black_box((h.len(), d.len()))
        })
    });

    // A relation scan = one call per page (NSM's 1 page/call).
    let mut pool = BufferPool::new(SimDisk::new(), 512);
    let recs: Vec<Vec<u8>> = (0..2000).map(|i| vec![(i % 251) as u8; 166]).collect();
    let (file, _) = HeapFile::bulk_load(&mut pool, "conn", &recs).unwrap();
    c.bench_function("table5/heap_scan_single_page_calls", |b| {
        b.iter(|| {
            pool.clear_cache().unwrap();
            let mut n = 0u64;
            file.scan(&mut pool, |_, bytes| n += bytes.len() as u64)
                .unwrap();
            black_box(n)
        })
    });

    // Flush-time grouped writes (≤32 pages/call).
    let mut pool = BufferPool::new(SimDisk::new(), 256);
    pool.alloc_extent(200);
    c.bench_function("table5/grouped_flush_writes", |b| {
        b.iter(|| {
            for i in 0..200u32 {
                pool.with_page_mut(PageId(i), |p| p[40] = i as u8).unwrap();
            }
            pool.flush_all().unwrap();
            black_box(pool.snapshot().write_calls)
        })
    });

    c.final_summary();
}
