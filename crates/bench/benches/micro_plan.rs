//! Micro-benchmark of the plan executor's dispatch overhead.
//!
//! The AccessPlan redesign replaced three hard-coded query loops with one
//! streaming interpreter. The interpreter adds a `match` per op and a
//! selection `Vec` per step — this bench shows that cost is noise against
//! the work the ops do, even with every page buffered (the worst case for
//! relative overhead: no physical I/O to hide behind).
//!
//! * `plan/hardcoded_2b` — the pre-redesign query-2b measurement loop,
//!   hand-written against the store traits (the old `QueryRunner::run`
//!   body, protocol included).
//! * `plan/executor_2b` — the same protocol through
//!   `QueryRunner::run` (now spec-built and interpreter-driven). The two
//!   must be within measurement noise of each other.
//! * `plan/spec_build_2b` — constructing the spec value alone (the cost
//!   `WorkloadSpec::for_query` adds per run).

mod common;

use criterion::Criterion;
use starfish_core::{make_store, ComplexObjectStore, ModelKind, ObjRef, StoreConfig};
use starfish_cost::QueryId;
use starfish_nf2::station::Station;
use starfish_workload::{generate, DatasetParams, QueryRunner, WorkloadSpec};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const N_OBJECTS: usize = 60;
const SEED: u64 = 7;

fn setup() -> (Vec<Station>, Box<dyn ComplexObjectStore>, Vec<ObjRef>) {
    let db = generate(&DatasetParams {
        n_objects: N_OBJECTS,
        seed: 99,
        ..Default::default()
    });
    // Default 1200-page buffer ≫ the 60-object database: after the first
    // pass everything is a hit and the interpreter itself is the cost.
    let mut store = make_store(ModelKind::DasdbsNsm, StoreConfig::default());
    let refs = store.load(&db).unwrap();
    (db, store, refs)
}

/// The pre-redesign query-2b loop, verbatim: protocol + navigation.
fn hardcoded_2b(store: &mut dyn ComplexObjectStore, refs: &[ObjRef]) -> u64 {
    let mut rng =
        StdRng::seed_from_u64(SEED.wrapping_add(5u64.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    store.clear_cache().unwrap();
    store.reset_stats();
    let before = store.snapshot();
    let loops = QueryId::Q2b.loops(refs.len() as u64);
    let mut seen = 0u64;
    for _ in 0..loops {
        let root = refs[rng.random_range(0..refs.len())];
        let children = store.children_of(&[root]).unwrap();
        let grandchildren = store.children_of(&children).unwrap();
        let roots = store.root_records(&grandchildren).unwrap();
        seen += roots.len() as u64;
    }
    store.flush().unwrap();
    let snap = store.snapshot() - before;
    seen + snap.fixes
}

fn main() {
    let mut c: Criterion = common::criterion();

    c.bench_function("plan/hardcoded_2b", |b| {
        let (_db, mut store, refs) = setup();
        b.iter(|| black_box(hardcoded_2b(store.as_mut(), &refs)))
    });

    c.bench_function("plan/executor_2b", |b| {
        let (_db, mut store, refs) = setup();
        let runner = QueryRunner::new(refs, SEED);
        b.iter(|| black_box(runner.run(store.as_mut(), QueryId::Q2b).unwrap()))
    });

    c.bench_function("plan/spec_build_2b", |b| {
        b.iter(|| black_box(WorkloadSpec::for_query(QueryId::Q2b)))
    });

    c.final_summary();
}
