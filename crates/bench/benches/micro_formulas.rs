//! Micro-benchmarks of the cost-model formulas (Equations 2–8).

mod common;

use criterion::Criterion;
use starfish_cost::formulas::{
    bernstein, cluster_run, clustered_groups, distinct_selected, pages_per_tuple,
    partial_object_pages, yao,
};
use std::hint::black_box;

fn main() {
    let mut c: Criterion = common::criterion();

    c.bench_function("formulas/eq2_pages_per_tuple", |b| {
        b.iter(|| black_box(pages_per_tuple(black_box(6078), 2012)))
    });
    c.bench_function("formulas/eq4_bernstein", |b| {
        b.iter(|| black_box(bernstein(black_box(16.7), 116.0)))
    });
    c.bench_function("formulas/eq4_yao_exact", |b| {
        b.iter(|| black_box(yao(black_box(17), 116, 13)))
    });
    c.bench_function("formulas/eq5_partial_pages", |b| {
        b.iter(|| black_box(partial_object_pages(1.0, black_box(4066.0), 1060.0, 2012.0)))
    });
    c.bench_function("formulas/eq6_cluster_run", |b| {
        b.iter(|| black_box(cluster_run(black_box(7.5), 2813.0, 4.0)))
    });
    c.bench_function("formulas/eq7_clustered_groups", |b| {
        b.iter(|| black_box(clustered_groups(black_box(16.8), 4.1, 559.0, 11.0)))
    });
    c.bench_function("formulas/eq7_recursive_branch", |b| {
        b.iter(|| black_box(clustered_groups(black_box(120.0), 30.0, 1000.0, 4.0)))
    });
    c.bench_function("formulas/eq8_distinct_selected", |b| {
        b.iter(|| black_box(distinct_selected(1500.0, black_box(6540.0))))
    });

    c.final_summary();
}
