//! Criterion benchmark crate for starfish — see the `benches/` directory.
//! Each bench target regenerates one table or figure of the paper.
