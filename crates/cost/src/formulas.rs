//! The paper's cost formulas (Equations 1–8).
//!
//! All page-count formulas return *expected* page accesses as `f64`, exactly
//! like the paper's analytical evaluation (its Table 3 mixes integral and
//! fractional values).

/// Equation 1: `C_disk_io = d1 · X_io_calls + d2 · X_io_pages`.
///
/// `d1` weighs the fixed cost of issuing an I/O call (seek/rotation/syscall),
/// `d2` the per-page transfer cost.
pub fn disk_cost(d1: f64, d2: f64, io_calls: f64, io_pages: f64) -> f64 {
    d1 * io_calls + d2 * io_pages
}

/// Equation 2: pages needed by a large tuple of `s_tuple` bytes with
/// `s_page` usable bytes per page — `p = ⌈S_tuple / S_page⌉`.
pub fn pages_per_tuple(s_tuple: u64, s_page: u64) -> u64 {
    s_tuple.div_ceil(s_page)
}

/// Equation 3: retrieving `t` large tuples in their entirety by address
/// costs `t · p` pages.
pub fn pages_large_entire(t: f64, p: f64) -> f64 {
    t * p
}

/// Equation 4 (the paper cites Bernstein et al. \[2\]): expected pages touched
/// when `t` tuples are randomly distributed over `m` pages:
/// `A = m · (1 − (1 − 1/m)^t)`.
///
/// `t` may be fractional (an expected tuple count).
///
/// ```
/// // The paper's query-3a write estimate: 16.7 random root tuples over the
/// // 116 pages of NSM-Station touch ≈ 15.6 pages.
/// let pages = starfish_cost::formulas::bernstein(16.7, 116.0);
/// assert!((pages - 15.6).abs() < 0.2);
/// ```
pub fn bernstein(t: f64, m: f64) -> f64 {
    if m <= 0.0 || t <= 0.0 {
        return 0.0;
    }
    if m == 1.0 {
        return 1.0;
    }
    m * (1.0 - (1.0 - 1.0 / m).powf(t))
}

/// Yao's exact formula: expected pages touched when selecting `t` distinct
/// tuples uniformly at random from `n = m·k` tuples stored `k` per page:
/// `A = m · (1 − C(n−k, t) / C(n, t))`.
///
/// Computed in log-space to avoid overflow. Provided alongside
/// [`bernstein`] for validation; the paper (and our estimator) use the
/// Bernstein approximation.
pub fn yao(t: u64, m: u64, k: u64) -> f64 {
    let n = m * k;
    if t == 0 || m == 0 {
        return 0.0;
    }
    if t > n - k {
        return m as f64;
    }
    // C(n-k, t)/C(n, t) = Π_{i=0}^{t-1} (n-k-i)/(n-i)
    let mut log_ratio = 0.0f64;
    for i in 0..t {
        log_ratio += ((n - k - i) as f64).ln() - ((n - i) as f64).ln();
    }
    m as f64 * (1.0 - log_ratio.exp())
}

/// Equation 5 (reconstructed; Paul \[11\], garbled in our source — see
/// DESIGN.md §5): pages fetched by a DASDBS-DSM *partial* object read.
///
/// A large object has `header_pages` header pages and `data_bytes` of data.
/// A query that uses `used_bytes` of the data, clustered within the object,
/// fetches the header plus the expected number of data pages containing the
/// used bytes:
///
/// `A = h + min(D, max(1, used/S_page))` with `D = data_bytes/S_page`
/// (continuous expectation; at least one data page is touched whenever any
/// data is used). For a full read (`used = data`) this gives `h + D`,
/// reproducing the paper's DASDBS-DSM vs DSM query-1 gap: DSM reads the
/// ceiling-allocated `p = h + ⌈D⌉` pages, DASDBS-DSM only the `h + D`
/// expected pages that actually carry data.
pub fn partial_object_pages(
    header_pages: f64,
    data_bytes: f64,
    used_bytes: f64,
    s_page: f64,
) -> f64 {
    if used_bytes <= 0.0 {
        return header_pages;
    }
    let d = data_bytes / s_page;
    header_pages + (used_bytes / s_page).max(1.0).min(d.max(1.0))
}

/// Equation 6: expected pages spanned by **one run of `t` consecutive
/// tuples**, `k` per page, within a relation of `m` pages:
///
/// `A = 1 + (t−1)/k` for `t ≤ m·k − k + 1`, else `m`.
///
/// (Derivation: expectation of `⌈(r+t)/k⌉` over the `k` equally likely
/// start offsets `r`.)
pub fn cluster_run(t: f64, m: f64, k: f64) -> f64 {
    if t <= 0.0 || m <= 0.0 {
        return 0.0;
    }
    if t > m * k - k + 1.0 {
        return m;
    }
    (1.0 + (t - 1.0) / k).min(m)
}

/// Equation 7 (reconstructed, honouring the paper's stated structure — a
/// piecewise boundary at small `g`, self-recursion for `g > 2k−2` whose
/// recursive `g` is always ≤ 2k−2, hence at most one recursive call):
/// expected pages touched when retrieving `i = t/g` **clusters of `g`
/// consecutive tuples each**, the clusters being randomly located on the
/// `m` pages.
///
/// * For `g ≤ 2k−2`: each cluster expects `1 + (g−1)/k` pages (Eq. 6);
///   collisions between randomly placed clusters are corrected with the
///   Bernstein formula at page granularity:
///   `A = m · (1 − (1 − 1/m)^(i·(1+(g−1)/k)))`.
/// * For `g > 2k−2`: each cluster contains `q = ⌊(g−(k−1))/k⌋` pages that
///   are full regardless of alignment; those are counted exactly and the
///   remaining `g − q·k ∈ [k−1, 2k−2]` boundary tuples recurse.
pub fn clustered_groups(t: f64, g: f64, m: f64, k: f64) -> f64 {
    if t <= 0.0 || g <= 0.0 || m <= 0.0 || k <= 0.0 {
        return 0.0;
    }
    let g = g.min(t);
    let i = t / g;
    if g <= 2.0 * k - 2.0 {
        let per_cluster = 1.0 + (g - 1.0) / k;
        bernstein(i * per_cluster, m).min(m)
    } else {
        let q = ((g - (k - 1.0)) / k).floor();
        let rest = g - q * k; // in [k-1, 2k-2]
        let full = i * q;
        (full + clustered_groups(i * rest, rest, (m - full).max(1.0), k)).min(m)
    }
}

/// Equation 8: expected number of **distinct** objects when drawing
/// `n_num` objects uniformly with replacement from `n_tot`:
/// `N_sel = N_tot · (1 − ((N_tot − 1)/N_tot)^N_num)`.
///
/// Drives the best-case (large-cache) estimates for queries 2b/3b and the
/// Figure 6 analytic curves.
pub fn distinct_selected(n_tot: f64, n_num: f64) -> f64 {
    if n_tot <= 0.0 || n_num <= 0.0 {
        return 0.0;
    }
    n_tot * (1.0 - ((n_tot - 1.0) / n_tot).powf(n_num))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn eq1_weights_calls_and_pages() {
        assert_eq!(disk_cost(2.0, 0.5, 10.0, 40.0), 40.0);
        assert_eq!(disk_cost(0.0, 1.0, 99.0, 7.0), 7.0);
    }

    #[test]
    fn eq2_matches_paper_example() {
        // S_tuple = 6078, S_page = 2012 ⇒ p = 4 ("the analytical value of p
        // is 4 rather than 3.02", §5.1).
        assert_eq!(pages_per_tuple(6078, 2012), 4);
        assert_eq!(pages_per_tuple(2012, 2012), 1);
        assert_eq!(pages_per_tuple(2013, 2012), 2);
    }

    #[test]
    fn eq3_is_linear() {
        assert_eq!(pages_large_entire(16.7, 4.0), 66.8);
    }

    #[test]
    fn bernstein_bounds_and_limits() {
        // Never more than m, never more than t.
        for &(t, m) in &[(1.0, 10.0), (5.0, 10.0), (100.0, 10.0), (16.7, 116.0)] {
            let a = bernstein(t, m);
            assert!(a <= m + 1e-9);
            assert!(a <= t + 1e-9 || t > m);
            assert!(a >= 0.0);
        }
        assert_eq!(bernstein(0.0, 10.0), 0.0);
        assert_eq!(bernstein(5.0, 1.0), 1.0);
    }

    #[test]
    fn bernstein_matches_paper_nsm_values() {
        // §5.1: updating 16.7 tuples of NSM-Station (m = 116): Eq. 4 per
        // query 3a ⇒ ≈ 15.6 pages; over 300 loops (5010 draws) "all 116
        // pages are to be written back".
        assert!(close(bernstein(16.7, 116.0), 15.6, 0.2));
        assert!(close(bernstein(300.0 * 16.7, 116.0), 116.0, 0.01));
    }

    #[test]
    fn yao_close_to_bernstein_and_exact_at_edges() {
        // Yao is exact; Bernstein approximates it from below slightly.
        let y = yao(17, 116, 13);
        let b = bernstein(17.0, 116.0);
        assert!(close(y, b, 1.0), "yao {y} vs bernstein {b}");
        assert_eq!(yao(0, 116, 13), 0.0);
        // Selecting everything touches every page.
        assert!(close(yao(116 * 13, 116, 13), 116.0, 1e-9));
        // t > n - k forces all pages.
        assert!(close(yao(116 * 13 - 5, 116, 13), 116.0, 1e-9));
    }

    #[test]
    fn eq5_partial_reads() {
        // Full read of the average DSM station (1 header + 2.02 data pages):
        // DASDBS-DSM ≈ 3.02 pages (paper Table 3 row DASDBS-DSM query 1a
        // ≈ 3.00) while DSM reads the allocated 4.
        let a = partial_object_pages(1.0, 4066.0, 4066.0, 2012.0);
        assert!(close(a, 3.02, 0.01), "{a}");
        // Navigation projection using ~1060 bytes: header + 1 data page.
        let a = partial_object_pages(1.0, 4066.0, 1060.0, 2012.0);
        assert!(close(a, 2.0, 0.01), "{a}");
        // Using nothing: header only.
        assert_eq!(partial_object_pages(1.0, 4066.0, 0.0, 2012.0), 1.0);
        // Used bytes can never fetch more than the data pages that exist.
        let a = partial_object_pages(1.0, 1000.0, 1000.0, 2012.0);
        assert!(
            close(a, 2.0, 1e-9),
            "small object: header + its single data page, {a}"
        );
    }

    #[test]
    fn eq6_cluster_run() {
        // One tuple: one page. k tuples from a random offset: 1 + (k-1)/k.
        assert_eq!(cluster_run(1.0, 100.0, 13.0), 1.0);
        assert!(close(
            cluster_run(13.0, 100.0, 13.0),
            1.0 + 12.0 / 13.0,
            1e-12
        ));
        // The paper's NSM+index query 1a decomposition (see estimator):
        // a 7.5-tuple sightseeing cluster at k = 4 ⇒ 1 + 6.5/4 = 2.625.
        assert!(close(cluster_run(7.5, 2813.0, 4.0), 2.625, 1e-12));
        // Saturation: t beyond m·k − k + 1 touches every page.
        assert_eq!(cluster_run(1000.0, 10.0, 13.0), 10.0);
    }

    #[test]
    fn eq7_clustered_groups_degenerate_cases() {
        // A single cluster (i = 1) behaves like Eq. 6 without collisions
        // (Bernstein of one cluster's pages is ≈ that many pages when m is
        // large).
        let one = clustered_groups(4.0, 4.0, 10_000.0, 11.0);
        assert!(close(one, cluster_run(4.0, 10_000.0, 11.0), 0.01), "{one}");
        // g = 1 degenerates to Eq. 4.
        let b = clustered_groups(20.0, 1.0, 559.0, 11.0);
        assert!(close(b, bernstein(20.0, 559.0), 1e-9), "{b}");
        // Zero work costs zero pages.
        assert_eq!(clustered_groups(0.0, 4.0, 100.0, 11.0), 0.0);
    }

    #[test]
    fn eq7_recursion_bound() {
        // g > 2k−2 recurses exactly once with g' ∈ [k−1, 2k−2]; the result
        // stays within [⌈g/k⌉·i−ish, m] and is monotone in t.
        let k = 4.0;
        let m = 1000.0;
        let a = clustered_groups(60.0, 30.0, m, k); // g = 30 > 2k−2 = 6
        assert!(a > 0.0 && a <= m);
        // 30 tuples at 4/page span at least ceil(30/4)=8 pages per cluster.
        assert!(a >= 2.0 * 8.0 - 1.0, "{a}");
        let larger = clustered_groups(90.0, 30.0, m, k);
        assert!(larger > a);
    }

    #[test]
    fn eq7_never_exceeds_m() {
        for &(t, g, m, k) in &[
            (5000.0, 50.0, 100.0, 4.0),
            (100.0, 10.0, 5.0, 2.0),
            (64.0, 8.0, 8.0, 3.0),
        ] {
            let a = clustered_groups(t, g, m, k);
            assert!(a <= m + 1e-9, "A({t},{g},{m},{k}) = {a} > m");
        }
    }

    #[test]
    fn eq8_distinct_selected() {
        // Drawing once selects one object.
        assert!(close(distinct_selected(1500.0, 1.0), 1.0, 1e-9));
        // The paper's DSM query-2b factor: 300 loops × 21.8 objects/loop
        // ⇒ ~4.94 distinct per loop ⇒ ×4 pages = 19.7 (Table 3).
        let per_loop = distinct_selected(1500.0, 300.0 * 21.8) / 300.0;
        assert!(close(4.0 * per_loop, 19.7, 0.1), "{}", 4.0 * per_loop);
        // Saturation: many draws select (almost) everything.
        assert!(distinct_selected(100.0, 1e6) > 99.999);
    }
}
