//! Per-query, per-model analytical page-I/O estimators — the machinery that
//! regenerates the paper's **Table 3**.
//!
//! All estimates are *best case* exactly as in the paper ("Since we assumed
//! a large cache, all estimates are best case"): repeated accesses within a
//! query hit the cache, deferred writes are flushed once, and the loop
//! queries (2b/3b) amortize using Equation 8's distinct-object counts.
//! Query 1 values are **per object**, query 2/3 values **per loop**.

use crate::formulas::{
    bernstein, cluster_run, clustered_groups, distinct_selected, partial_object_pages,
};
use crate::profile::{BenchProfile, RelParams, Table2Analytic, S_PAGE};
use crate::QueryId;

/// The eight Table 3 rows: the four models plus the primed ("imaginary
/// situation without wasted disk space") variants of the DASDBS-flavoured
/// ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelVariant {
    /// Direct storage model.
    Dsm,
    /// DSM without ceiling waste (`p' = ⌈data/S_page⌉`, no header page).
    DsmPrime,
    /// DASDBS-DSM.
    DasdbsDsm,
    /// DASDBS-DSM without the header page.
    DasdbsDsmPrime,
    /// Pure NSM.
    Nsm,
    /// NSM with the memory-resident index.
    NsmIndexed,
    /// DASDBS-NSM.
    DasdbsNsm,
    /// DASDBS-NSM without spanning waste in the sightseeing relation.
    DasdbsNsmPrime,
}

impl ModelVariant {
    /// All rows in Table 3 order.
    pub fn all() -> [ModelVariant; 8] {
        [
            ModelVariant::Dsm,
            ModelVariant::DsmPrime,
            ModelVariant::DasdbsDsm,
            ModelVariant::DasdbsDsmPrime,
            ModelVariant::Nsm,
            ModelVariant::NsmIndexed,
            ModelVariant::DasdbsNsm,
            ModelVariant::DasdbsNsmPrime,
        ]
    }

    /// Paper-style row label.
    pub fn label(self) -> &'static str {
        match self {
            ModelVariant::Dsm => "DSM",
            ModelVariant::DsmPrime => "DSM'",
            ModelVariant::DasdbsDsm => "DASDBS-DSM",
            ModelVariant::DasdbsDsmPrime => "DASDBS-DSM'",
            ModelVariant::Nsm => "NSM",
            ModelVariant::NsmIndexed => "NSM+index",
            ModelVariant::DasdbsNsm => "DASDBS-NSM",
            ModelVariant::DasdbsNsmPrime => "DASDBS-NSM'",
        }
    }
}

impl std::fmt::Display for ModelVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Estimated page I/Os for one query under one model.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QueryCost {
    /// Expected pages read (per object for query 1, per loop for 2/3).
    pub pages_read: f64,
    /// Expected pages written.
    pub pages_written: f64,
}

impl QueryCost {
    fn read(pages: f64) -> QueryCost {
        QueryCost {
            pages_read: pages,
            pages_written: 0.0,
        }
    }

    /// Total page I/Os (the paper's Table 3 reports reads + writes).
    pub fn total(&self) -> f64 {
        self.pages_read + self.pages_written
    }
}

/// Inputs to the estimator: the benchmark profile and its analytic Table 2.
#[derive(Clone, Debug)]
pub struct EstimatorInputs {
    /// Expected benchmark structure.
    pub profile: BenchProfile,
    /// Analytic per-relation parameters.
    pub table2: Table2Analytic,
}

impl EstimatorInputs {
    /// Builds inputs from a profile.
    pub fn new(profile: BenchProfile) -> Self {
        let table2 = profile.table2();
        EstimatorInputs { profile, table2 }
    }
}

/// One row of Table 3.
#[derive(Clone, Debug)]
pub struct CostRow {
    /// The model variant.
    pub variant: ModelVariant,
    /// Costs for queries 1a, 1b, 1c, 2a, 2b, 3a, 3b (`None` = "not
    /// relevant", e.g. query 1a under pure NSM).
    pub cells: [Option<QueryCost>; 7],
}

/// Regenerates the full Table 3.
pub fn table3(inputs: &EstimatorInputs) -> Vec<CostRow> {
    ModelVariant::all()
        .into_iter()
        .map(|variant| CostRow {
            variant,
            cells: QueryId::all().map(|q| estimate(variant, q, inputs)),
        })
        .collect()
}

/// Estimates the page I/Os of `query` under `variant`.
///
/// Returns `None` where the paper marks the cell not relevant (query 1a
/// under NSM, which has no object identifiers).
pub fn estimate(
    variant: ModelVariant,
    query: QueryId,
    inputs: &EstimatorInputs,
) -> Option<QueryCost> {
    let loops = query.loops(inputs.profile.n_objects) as f64;
    estimate_loops(variant, query, inputs, loops)
}

/// Like [`estimate`] but amortizing the loop queries (2b/3b) over an
/// explicit `loops` count instead of [`QueryId::loops`]'s Table 3 default.
///
/// This is what the workload plan-walker ([`crate::planwalk`]) uses: a
/// `WorkloadSpec` navigates some arbitrary number of times, and Equation
/// 8's distinct-object amortization depends on that count. With
/// `loops = query.loops(n)` this is exactly [`estimate`].
pub fn estimate_loops(
    variant: ModelVariant,
    query: QueryId,
    inputs: &EstimatorInputs,
    loops: f64,
) -> Option<QueryCost> {
    let p = &inputs.profile;
    let n = p.n_objects as f64;
    let c1 = p.avg_children();
    let c2 = p.avg_grandchildren();
    let draws = 1.0 + c1 + c2;
    let loops = loops.max(1.0);
    // Equation 8: distinct objects per loop for reads / for updates.
    let dist_per_loop = |per_loop: f64| distinct_selected(n, loops * per_loop) / loops;

    match variant {
        ModelVariant::Dsm
        | ModelVariant::DsmPrime
        | ModelVariant::DasdbsDsm
        | ModelVariant::DasdbsDsmPrime => Some(direct_estimate(
            variant,
            query,
            inputs,
            draws,
            dist_per_loop,
        )),
        ModelVariant::Nsm => nsm_estimate(false, query, inputs, loops),
        ModelVariant::NsmIndexed => nsm_estimate(true, query, inputs, loops),
        ModelVariant::DasdbsNsm => Some(dasdbs_nsm_estimate(false, query, inputs, loops)),
        ModelVariant::DasdbsNsmPrime => Some(dasdbs_nsm_estimate(true, query, inputs, loops)),
    }
}

/// Direct-model estimates (DSM / DASDBS-DSM and primes).
fn direct_estimate(
    variant: ModelVariant,
    query: QueryId,
    inputs: &EstimatorInputs,
    draws: f64,
    dist_per_loop: impl Fn(f64) -> f64,
) -> QueryCost {
    let p = &inputs.profile;
    let rel = &inputs.table2.dsm;
    let n = p.n_objects as f64;
    let c2 = p.avg_grandchildren();
    let partial = matches!(
        variant,
        ModelVariant::DasdbsDsm | ModelVariant::DasdbsDsmPrime
    );
    let prime = matches!(
        variant,
        ModelVariant::DsmPrime | ModelVariant::DasdbsDsmPrime
    );

    if let Some(k) = rel.k {
        // Small objects share pages; the direct models coincide (§5.3) and
        // the primed variants change nothing.
        let _ = k;
        let m = rel.m;
        let full = 1.0;
        let pool = if partial { 1.0 } else { 0.0 };
        return match query {
            QueryId::Q1a => QueryCost::read(full),
            QueryId::Q1b => QueryCost::read(m),
            QueryId::Q1c => QueryCost::read(m / n),
            QueryId::Q2a => QueryCost::read(bernstein(draws, m)),
            QueryId::Q2b => QueryCost::read(bernstein(dist_per_loop(draws), m)),
            QueryId::Q3a => QueryCost {
                pages_read: bernstein(draws, m),
                pages_written: bernstein(distinct_selected(n, c2), m) + pool * c2,
            },
            QueryId::Q3b => QueryCost {
                pages_read: bernstein(dist_per_loop(draws), m),
                pages_written: bernstein(dist_per_loop(c2), m) + pool * c2,
            },
        };
    }

    // Page-spanning objects.
    let data = rel.s_tuple;
    let h = if prime { 0.0 } else { rel.header_pages };
    // Whole-object read cost.
    let full = if partial {
        partial_object_pages(h, data, data, S_PAGE)
    } else if prime {
        (data / S_PAGE).ceil()
    } else {
        rel.p.expect("spanning relation") as f64
    };
    // Projected read costs (DASDBS-DSM only; DSM always reads everything).
    let nav = if partial {
        partial_object_pages(h, data, p.navigation_bytes(), S_PAGE)
    } else {
        full
    };
    let root = if partial {
        partial_object_pages(h, data, p.root_region_bytes(), S_PAGE)
    } else {
        full
    };
    let c1 = p.avg_children();
    let q2a_read = (1.0 + c1) * nav + c2 * root;
    let per_object_q2 = q2a_read / draws;
    // Update cost per touched object.
    let write_per_obj = if partial {
        1.0 // change-attribute: the page carrying Name
    } else {
        full.max(1.0) // replace whole tuple: every page of the extent
    };
    let pool = if partial { c2 } else { 0.0 }; // one pool page per operation

    match query {
        QueryId::Q1a => QueryCost::read(full),
        QueryId::Q1b => QueryCost::read((inputs.profile.n_objects as f64) * full),
        QueryId::Q1c => QueryCost::read(full),
        QueryId::Q2a => QueryCost::read(q2a_read),
        QueryId::Q2b => QueryCost::read(dist_per_loop(draws) * per_object_q2),
        QueryId::Q3a => QueryCost {
            pages_read: q2a_read,
            pages_written: distinct_selected(inputs.profile.n_objects as f64, c2) * write_per_obj
                + pool,
        },
        QueryId::Q3b => QueryCost {
            pages_read: dist_per_loop(draws) * per_object_q2,
            pages_written: dist_per_loop(c2) * write_per_obj + pool,
        },
    }
}

/// NSM estimates (pure and indexed).
fn nsm_estimate(
    indexed: bool,
    query: QueryId,
    inputs: &EstimatorInputs,
    loops: f64,
) -> Option<QueryCost> {
    let p = &inputs.profile;
    let [st, pl, co, se] = &inputs.table2.nsm;
    let n = p.n_objects as f64;
    let c1 = p.avg_children();
    let c2 = p.avg_grandchildren();
    let total_m = st.m + pl.m + co.m + se.m;

    // Per-object clustered sub-tuple reads (index path): Eq. 6 per relation.
    let k_of = |r: &RelParams| r.k.expect("flat NSM relations share pages") as f64;
    let one_object_subtuples = cluster_run(p.avg_platforms(), pl.m, k_of(pl))
        + cluster_run(c1, co.m, k_of(co))
        + cluster_run(p.avg_sightseeings(), se.m, k_of(se));

    // Navigation reads.
    let q2a_read = if indexed {
        // Self connections (one cluster), children connections (c1 clusters
        // of c1 tuples, Eq. 7), grand-children roots (random, Eq. 4).
        cluster_run(c1, co.m, k_of(co))
            + clustered_groups(c1 * c1, c1, co.m, k_of(co))
            + bernstein(c2, st.m)
    } else {
        // One set-oriented scan of NSM-Connection (the second scan hits the
        // cache in the best case) plus one scan of NSM-Station.
        co.m + st.m
    };

    let cost = match query {
        QueryId::Q1a => {
            if !indexed {
                return None; // "With NSM we have no identifiers."
            }
            QueryCost::read(1.0 + one_object_subtuples)
        }
        QueryId::Q1b => {
            if indexed {
                // Value selection still scans the root relation; sub-tuples
                // come by address.
                QueryCost::read(st.m + one_object_subtuples)
            } else {
                QueryCost::read(total_m)
            }
        }
        QueryId::Q1c => QueryCost::read(total_m / n),
        QueryId::Q2a => QueryCost::read(q2a_read),
        QueryId::Q2b => QueryCost::read(nsm_q2b_reads(indexed, inputs, loops, q2a_read)),
        QueryId::Q3a => QueryCost {
            pages_read: q2a_read,
            pages_written: bernstein(distinct_selected(n, c2), st.m),
        },
        QueryId::Q3b => QueryCost {
            pages_read: nsm_q2b_reads(indexed, inputs, loops, q2a_read),
            pages_written: bernstein(distinct_selected(n, loops * c2), st.m) / loops,
        },
    };
    Some(cost)
}

/// NSM query-2b/3b read amortization (best case, large cache).
///
/// Pure NSM re-scans stay in the buffer after the first loop, so the cold
/// scans amortize over the loops (the paper's 675/300 = 2.25). NSM+index
/// touches pages at tuple granularity; over the whole run the distinct
/// objects' connection clusters (Eq. 7 over Eq. 8's distinct count) and the
/// distinct grand-children root pages (Eq. 4) are each read once.
fn nsm_q2b_reads(indexed: bool, inputs: &EstimatorInputs, loops: f64, q2a_read: f64) -> f64 {
    if !indexed {
        return q2a_read / loops;
    }
    let p = &inputs.profile;
    let [st, _, co, _] = &inputs.table2.nsm;
    let n = p.n_objects as f64;
    let c1 = p.avg_children();
    let c2 = p.avg_grandchildren();
    let k_co = co.k.expect("flat") as f64;
    let distinct_nav = distinct_selected(n, loops * (1.0 + c1));
    let conn_pages = clustered_groups(distinct_nav * c1, c1, co.m, k_co);
    let root_pages = bernstein(distinct_selected(n, loops * c2), st.m);
    (conn_pages + root_pages) / loops
}

/// DASDBS-NSM estimates.
fn dasdbs_nsm_estimate(
    prime: bool,
    query: QueryId,
    inputs: &EstimatorInputs,
    loops: f64,
) -> QueryCost {
    let p = &inputs.profile;
    let [st, pl, co, se] = &inputs.table2.dasdbs_nsm;
    let n = p.n_objects as f64;
    let c1 = p.avg_children();
    let c2 = p.avg_grandchildren();

    // Pages for one tuple of a relation (they are one-per-object here).
    let tuple_pages = |r: &RelParams| -> f64 {
        match (r.k, r.p) {
            (Some(_), _) => 1.0,
            (None, Some(pp)) => {
                if prime {
                    (r.s_tuple / S_PAGE).ceil()
                } else {
                    pp as f64
                }
            }
            _ => 1.0,
        }
    };
    let one_object = tuple_pages(pl) + tuple_pages(co) + tuple_pages(se);
    let total_m = st.m + pl.m + co.m + se.m;

    let q2a_read = 1.0 /* self connection tuple */
        + bernstein(c1, co.m / tuple_pages(co).max(1.0)).min(c1) * tuple_pages(co).max(1.0)
        + bernstein(c2, st.m);

    // Query 2b/3b reads, best case: over the whole run every distinct
    // object's connection tuple and every distinct grand-child's root page
    // is read once and then stays cached ("about 2 pages per loop", §5.4).
    let loop_reads = {
        let conn_pages = bernstein(
            distinct_selected(n, loops * (1.0 + c1)) * tuple_pages(co),
            co.m,
        );
        let root_pages = bernstein(distinct_selected(n, loops * c2), st.m);
        (conn_pages + root_pages) / loops
    };

    match query {
        QueryId::Q1a => QueryCost::read(1.0 + one_object),
        QueryId::Q1b => QueryCost::read(st.m + one_object),
        QueryId::Q1c => QueryCost::read(total_m / n),
        QueryId::Q2a => QueryCost::read(q2a_read),
        QueryId::Q2b => QueryCost::read(loop_reads),
        QueryId::Q3a => QueryCost {
            pages_read: q2a_read,
            pages_written: bernstein(distinct_selected(n, c2), st.m),
        },
        QueryId::Q3b => QueryCost {
            pages_read: loop_reads,
            pages_written: bernstein(distinct_selected(n, loops * c2), st.m) / loops,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> EstimatorInputs {
        EstimatorInputs::new(BenchProfile::default())
    }

    fn total(v: ModelVariant, q: QueryId) -> f64 {
        estimate(v, q, &inputs()).expect("cell exists").total()
    }

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    // ---- recoverable Table 3 anchor cells ---------------------------------

    #[test]
    fn dsm_row_matches_paper() {
        assert!(close(total(ModelVariant::Dsm, QueryId::Q1a), 4.0, 1e-9)); // 4.00
        assert!(close(total(ModelVariant::Dsm, QueryId::Q1b), 6000.0, 1e-6)); // 6000
        assert!(close(total(ModelVariant::Dsm, QueryId::Q1c), 4.0, 1e-9)); // 4.00
                                                                           // q2a: paper 86.9 (with 4.10/16.7 rounded); ours (1+4.096+16.78)·4.
        assert!(close(total(ModelVariant::Dsm, QueryId::Q2a), 87.5, 0.5));
        assert!(close(total(ModelVariant::Dsm, QueryId::Q2b), 19.7, 0.2)); // 19.7
        assert!(close(total(ModelVariant::Dsm, QueryId::Q3a), 154.0, 1.0)); // 154
        assert!(close(total(ModelVariant::Dsm, QueryId::Q3b), 39.1, 0.3)); // 39.1
    }

    #[test]
    fn dsm_prime_row_matches_paper() {
        // DSM': p' = 3 ⇒ 3.00 / 4500 / 3.00 / 65.2-ish.
        assert!(close(
            total(ModelVariant::DsmPrime, QueryId::Q1a),
            3.0,
            1e-9
        ));
        assert!(close(
            total(ModelVariant::DsmPrime, QueryId::Q1b),
            4500.0,
            1e-6
        ));
        assert!(close(
            total(ModelVariant::DsmPrime, QueryId::Q2a),
            65.6,
            0.6
        )); // paper 65.2
    }

    #[test]
    fn dasdbs_dsm_rows_match_paper() {
        // Full read ≈ header + 2.23 data pages (paper: 3.02 with its 2.02).
        let q1a = total(ModelVariant::DasdbsDsm, QueryId::Q1a);
        assert!(close(q1a, 3.23, 0.05), "{q1a}");
        // q2b ≈ 9.9 (OCR fragment 9.87 at the paper's sizes).
        let q2b = total(ModelVariant::DasdbsDsm, QueryId::Q2b);
        assert!(close(q2b, 9.9, 0.3), "{q2b}");
        // Primed navigation drops the header page: q2a ≈ 21.9 (paper 21.7).
        let q2a_p = total(ModelVariant::DasdbsDsmPrime, QueryId::Q2a);
        assert!(close(q2a_p, 21.9, 0.3), "{q2a_p}");
    }

    #[test]
    fn nsm_row_matches_paper() {
        assert!(estimate(ModelVariant::Nsm, QueryId::Q1a, &inputs()).is_none());
        // q1b = scan everything = 116+219+559+2813 = 3707 (paper 3820 with
        // its slightly larger platform relation).
        assert!(close(total(ModelVariant::Nsm, QueryId::Q1b), 3707.0, 5.0));
        // q1c ≈ 2.47 (paper 2.55).
        assert!(close(total(ModelVariant::Nsm, QueryId::Q1c), 2.47, 0.05));
        // q2a = connection scan + station scan = 675 (paper 700).
        assert!(close(total(ModelVariant::Nsm, QueryId::Q2a), 675.0, 2.0));
        // q2b = 675/300 = 2.25 (paper fragment 2.25, exact).
        assert!(close(total(ModelVariant::Nsm, QueryId::Q2b), 2.25, 0.01));
        // q3a ≈ 690.6 (paper 692).
        assert!(close(total(ModelVariant::Nsm, QueryId::Q3a), 690.6, 2.0));
        // q3b = 2.25 + 116/300 = 2.64 (paper 2.64, exact).
        assert!(close(total(ModelVariant::Nsm, QueryId::Q3b), 2.64, 0.01));
    }

    #[test]
    fn nsm_index_row_matches_paper() {
        // q1a = 1 + 1.05 + 1.28 + 2.63 = 5.96 (paper 5.96, exact).
        let q1a = total(ModelVariant::NsmIndexed, QueryId::Q1a);
        assert!(close(q1a, 5.96, 0.02), "{q1a}");
        // q1b = 116 + 4.96 = 120.96 (paper 121).
        let q1b = total(ModelVariant::NsmIndexed, QueryId::Q1b);
        assert!(close(q1b, 121.0, 0.2), "{q1b}");
        // q1c = 2.47 (paper 2.47).
        assert!(close(
            total(ModelVariant::NsmIndexed, QueryId::Q1c),
            2.47,
            0.05
        ));
        // q2a ≈ 22.2 (paper 23.2).
        let q2a = total(ModelVariant::NsmIndexed, QueryId::Q2a);
        assert!(close(q2a, 22.2, 0.4), "{q2a}");
    }

    #[test]
    fn dasdbs_nsm_rows_match_paper() {
        // Primed q1a = 1 root + 1 platform + 1 connection + 2 sightseeing
        // = 5.00 (paper, exact); unprimed carries the header page: 6.00.
        assert!(close(
            total(ModelVariant::DasdbsNsmPrime, QueryId::Q1a),
            5.0,
            1e-9
        ));
        assert!(close(
            total(ModelVariant::DasdbsNsm, QueryId::Q1a),
            6.0,
            1e-9
        ));
        // q1b = m_station + (q1a − 1) = 116 + 4 = 120 (paper 120, exact).
        assert!(close(
            total(ModelVariant::DasdbsNsmPrime, QueryId::Q1b),
            120.0,
            1e-9
        ));
        // q2a ≈ 20.7 (paper 21.8).
        let q2a = total(ModelVariant::DasdbsNsm, QueryId::Q2a);
        assert!(close(q2a, 20.7, 0.5), "{q2a}");
        // q2b ≈ 2.2 pages per loop ("about 2 pages per loop", §5.4).
        let q2b = total(ModelVariant::DasdbsNsm, QueryId::Q2b);
        assert!(close(q2b, 2.2, 0.2), "{q2b}");
        // q3b − q2b = 116/300 (the paper's 0.387 root-page writes).
        let delta = total(ModelVariant::DasdbsNsm, QueryId::Q3b)
            - total(ModelVariant::DasdbsNsm, QueryId::Q2b);
        assert!(close(delta, 0.387, 0.01), "{delta}");
    }

    // ---- structural properties -------------------------------------------

    #[test]
    fn table3_has_eight_rows_and_one_missing_cell() {
        let t3 = table3(&inputs());
        assert_eq!(t3.len(), 8);
        let missing: usize = t3
            .iter()
            .flat_map(|r| r.cells.iter())
            .filter(|c| c.is_none())
            .count();
        assert_eq!(missing, 1, "only NSM query 1a is not relevant");
    }

    #[test]
    fn paper_conclusions_hold_in_the_estimates() {
        // (i) DASDBS-DSM ≤ DSM everywhere on reads.
        for q in QueryId::all() {
            let dsm = estimate(ModelVariant::Dsm, q, &inputs()).unwrap();
            let ddsm = estimate(ModelVariant::DasdbsDsm, q, &inputs()).unwrap();
            assert!(
                ddsm.pages_read <= dsm.pages_read + 1e-9,
                "query {q}: DASDBS-DSM reads {} > DSM {}",
                ddsm.pages_read,
                dsm.pages_read
            );
        }
        // (ii) DASDBS-NSM beats every other model on cold navigation (2a),
        // and beats the direct models on cached navigation (2b). Pure NSM's
        // analytic 2b (2.25) is its unrealistic in-memory-join best case, as
        // the paper notes — measured, NSM is far worse (Table 6).
        let dn = total(ModelVariant::DasdbsNsm, QueryId::Q2a);
        for v in [
            ModelVariant::Dsm,
            ModelVariant::DasdbsDsm,
            ModelVariant::Nsm,
        ] {
            assert!(dn <= total(v, QueryId::Q2a) + 1e-9, "query 2a vs {v}");
        }
        let dn = total(ModelVariant::DasdbsNsm, QueryId::Q2b);
        for v in [ModelVariant::Dsm, ModelVariant::DasdbsDsm] {
            assert!(dn <= total(v, QueryId::Q2b) + 1e-9, "query 2b vs {v}");
        }
        // (iii) NSM's value lookup is orders of magnitude worse than
        // DASDBS-NSM's.
        assert!(
            total(ModelVariant::Nsm, QueryId::Q1b)
                > 25.0 * total(ModelVariant::DasdbsNsm, QueryId::Q1b)
        );
        // (iv) DASDBS-DSM is the worst updater per loop (the page-pool
        // anomaly) among the non-NSM models on 3b writes.
        let ddsm_w = estimate(ModelVariant::DasdbsDsm, QueryId::Q3b, &inputs())
            .unwrap()
            .pages_written;
        let dn_w = estimate(ModelVariant::DasdbsNsm, QueryId::Q3b, &inputs())
            .unwrap()
            .pages_written;
        assert!(ddsm_w > 10.0 * dn_w, "{ddsm_w} vs {dn_w}");
    }

    #[test]
    fn small_object_profile_collapses_direct_models() {
        // §5.3: with 0 sightseeings the direct models' objects share pages
        // and DSM == DASDBS-DSM on reads.
        let small = EstimatorInputs::new(BenchProfile {
            max_sightseeing: 0,
            ..Default::default()
        });
        for q in [QueryId::Q1a, QueryId::Q1c, QueryId::Q2a, QueryId::Q2b] {
            let a = estimate(ModelVariant::Dsm, q, &small).unwrap().pages_read;
            let b = estimate(ModelVariant::DasdbsDsm, q, &small)
                .unwrap()
                .pages_read;
            assert!(close(a, b, 1e-9), "query {q}: {a} vs {b}");
        }
    }

    #[test]
    fn loop_queries_amortize() {
        // 2b per loop must be far below 2a (cache effect).
        for v in [
            ModelVariant::Dsm,
            ModelVariant::DasdbsDsm,
            ModelVariant::Nsm,
            ModelVariant::DasdbsNsm,
        ] {
            assert!(total(v, QueryId::Q2b) < total(v, QueryId::Q2a) / 2.0, "{v}");
        }
    }
}
