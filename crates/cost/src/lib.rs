//! # starfish-cost — the analytical disk-I/O cost model
//!
//! Implements the paper's Equations 1–8 (§3–§4) and the per-query,
//! per-storage-model page-I/O estimators that regenerate **Table 3**, plus
//! the cache-aware best/worst-case curves of **Figure 6**.
//!
//! | Equation | Function |
//! |----------|----------|
//! | Eq. 1 `C = d1·calls + d2·pages` | [`formulas::disk_cost`] |
//! | Eq. 2 `p = ⌈S_tuple/S_page⌉` | [`formulas::pages_per_tuple`] |
//! | Eq. 3 `t·p` | [`formulas::pages_large_entire`] |
//! | Eq. 4 random small tuples (Bernstein) | [`formulas::bernstein`] (and exact [`formulas::yao`]) |
//! | Eq. 5 DASDBS-DSM partial reads | [`formulas::partial_object_pages`] |
//! | Eq. 6 one cluster of consecutive tuples | [`formulas::cluster_run`] |
//! | Eq. 7 many clusters at random locations | [`formulas::clustered_groups`] |
//! | Eq. 8 distinct objects drawn with replacement | [`formulas::distinct_selected`] |
//!
//! Two of the paper's formulas (Eqs. 5 and 7) are OCR-garbled in the source
//! we reproduce from; `DESIGN.md` §5 documents the reconstructions and the
//! constraints from the paper text they honour. The estimator reproduces the
//! recoverable Table 3 anchor cells exactly (e.g. NSM+index query 1a = 5.96,
//! DSM query 3a = 154, NSM query 3b = 2.64 — see `estimator` tests).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod estimator;
pub mod formulas;
pub mod planwalk;
pub mod profile;
pub mod timing;

pub use cache::{fig6_curves, CacheCurve};
pub use estimator::{
    estimate, estimate_loops, table3, CostRow, EstimatorInputs, ModelVariant, QueryCost,
};
pub use planwalk::{estimate_plan, HotInfo, PlanContext, PlanEstimate, PlanOp};
pub use profile::{BenchProfile, RelParams, Table2Analytic};
pub use timing::CostWeights;

/// The seven benchmark queries (§2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryId {
    /// Retrieve a single object by OID (address).
    Q1a,
    /// Retrieve a single object by key value.
    Q1b,
    /// Retrieve all objects (values per object).
    Q1c,
    /// One navigation loop (object → children → grand-children roots).
    Q2a,
    /// Navigation loop repeated `db/5` times (values per loop).
    Q2b,
    /// Query 2a plus update of the grand-children root records.
    Q3a,
    /// Query 2b plus the update at the end of each loop.
    Q3b,
}

impl QueryId {
    /// All queries in table order.
    pub fn all() -> [QueryId; 7] {
        [
            QueryId::Q1a,
            QueryId::Q1b,
            QueryId::Q1c,
            QueryId::Q2a,
            QueryId::Q2b,
            QueryId::Q3a,
            QueryId::Q3b,
        ]
    }

    /// The paper's label.
    pub fn label(self) -> &'static str {
        match self {
            QueryId::Q1a => "1a",
            QueryId::Q1b => "1b",
            QueryId::Q1c => "1c",
            QueryId::Q2a => "2a",
            QueryId::Q2b => "2b",
            QueryId::Q3a => "3a",
            QueryId::Q3b => "3b",
        }
    }

    /// Number of loops the paper runs for a database of `n` objects
    /// (§5.4: "we executed the query loop ⅕·'database size' times"), for the
    /// loop queries; 1 otherwise.
    pub fn loops(self, n_objects: u64) -> u64 {
        match self {
            QueryId::Q2b | QueryId::Q3b => (n_objects / 5).max(1),
            _ => 1,
        }
    }
}

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_labels_and_loops() {
        assert_eq!(QueryId::Q1a.label(), "1a");
        assert_eq!(QueryId::Q3b.label(), "3b");
        assert_eq!(QueryId::Q2b.loops(1500), 300);
        assert_eq!(QueryId::Q3b.loops(100), 20);
        assert_eq!(QueryId::Q2a.loops(1500), 1);
        assert_eq!(QueryId::Q2b.loops(3), 1, "never zero loops");
        assert_eq!(QueryId::all().len(), 7);
    }
}
