//! Response-time weights for Equation 1 (§3: `C_disk_IO = d1·X_IO_calls +
//! d2·X_IO_pages`), extended with the CPU term the paper tracks through
//! buffer fixes.
//!
//! The paper reports one wall-clock anecdote to calibrate against (§5.2):
//! on a Sun 3/60, NSM's query-2b program with its >370,000 page fixes "took
//! about 2.5 hours, whereas the same query was executed within at most 0.5
//! hour for the other storage models". [`CostWeights::sun_3_60_era`]
//! reproduces exactly that ratio from our measured counts (see the
//! `ext_timing` harness experiment).

/// Cost weights turning logical counts into estimated milliseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostWeights {
    /// `d1`: per-I/O-call positioning cost (seek + rotation + syscall), ms.
    pub ms_per_io_call: f64,
    /// `d2`: per-page transfer cost, ms (2 KiB pages).
    pub ms_per_page: f64,
    /// CPU cost per buffer fix (latch, lookup, tuple processing), ms.
    pub ms_per_fix: f64,
}

impl CostWeights {
    /// Late-1980s workstation (Sun 3/60-class, SCSI disk ≈30 ms access,
    /// ≈1 MB/s transfer, ≈3 MIPS CPU). `ms_per_fix` is calibrated from the
    /// paper's own anecdote: 2.5 h / 370 k fixes ≈ 20 ms of processing per
    /// fixed page (decode + join work included).
    pub fn sun_3_60_era() -> CostWeights {
        CostWeights {
            ms_per_io_call: 30.0,
            ms_per_page: 2.0,
            ms_per_fix: 20.0,
        }
    }

    /// A 2020s NVMe drive and CPU: calls are nearly free, fixes are
    /// sub-microsecond. Used as an ablation: which of the paper's 1993
    /// conclusions survive modern hardware?
    pub fn modern_nvme() -> CostWeights {
        CostWeights {
            ms_per_io_call: 0.02,
            ms_per_page: 0.002,
            ms_per_fix: 0.0005,
        }
    }

    /// Estimated time for a measured (calls, pages, fixes) triple, in ms.
    pub fn cost_ms(&self, io_calls: f64, pages: f64, fixes: f64) -> f64 {
        self.ms_per_io_call * io_calls + self.ms_per_page * pages + self.ms_per_fix * fixes
    }

    /// Pretty-prints a millisecond figure as ms / s / min / h.
    pub fn human(ms: f64) -> String {
        if ms < 1_000.0 {
            format!("{ms:.0} ms")
        } else if ms < 120_000.0 {
            format!("{:.1} s", ms / 1_000.0)
        } else if ms < 7_200_000.0 {
            format!("{:.1} min", ms / 60_000.0)
        } else {
            format!("{:.1} h", ms / 3_600_000.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_weighting() {
        let w = CostWeights {
            ms_per_io_call: 10.0,
            ms_per_page: 1.0,
            ms_per_fix: 0.0,
        };
        assert_eq!(w.cost_ms(3.0, 7.0, 100.0), 37.0);
    }

    #[test]
    fn sun_era_reproduces_the_papers_anecdote() {
        let w = CostWeights::sun_3_60_era();
        // NSM query 2b at full scale: ≈672 calls, ≈670 pages, ≈369k fixes.
        let nsm = w.cost_ms(672.0, 670.0, 369_000.0);
        assert!(
            (2.0..3.0).contains(&(nsm / 3_600_000.0)),
            "NSM should take ≈2.5 h, got {}",
            CostWeights::human(nsm)
        );
        // DSM: ≈8 800 calls, ≈16 700 pages, ≈22.5k fixes — well under 0.5 h.
        let dsm = w.cost_ms(8_800.0, 16_700.0, 22_500.0);
        assert!(
            dsm / 3_600_000.0 <= 0.5,
            "DSM should stay within 0.5 h, got {}",
            CostWeights::human(dsm)
        );
    }

    #[test]
    fn human_formatting() {
        assert_eq!(CostWeights::human(500.0), "500 ms");
        assert_eq!(CostWeights::human(2_500.0), "2.5 s");
        assert_eq!(CostWeights::human(600_000.0), "10.0 min");
        assert_eq!(CostWeights::human(9_000_000.0), "2.5 h");
    }
}
