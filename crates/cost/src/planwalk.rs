//! A `WorkloadSpec` plan-walker: per-plan page-I/O estimates built from the
//! Table 3 estimators.
//!
//! [`estimate`](crate::estimate) prices the seven fixed benchmark queries.
//! The workload IR of `starfish-workload` composes the same primitive
//! accesses (pick an object, navigate, fetch roots, update roots, scan)
//! into arbitrary loops and mixes, so a spec's expected I/O is a *walk*
//! over a neutral plan IR ([`PlanOp`]) that maps each primitive back onto
//! the Table 3 machinery via [`estimate_loops`] — navigation inside an
//! `L`-iteration loop is priced as query 2b amortized over `L`, a single
//! navigation as query 2a, updates as the write part of queries 3a/3b,
//! and so on. `starfish-workload` provides the lowering from
//! `WorkloadSpec` to `Vec<PlanOp>` (the dependency points that way:
//! workload → cost).
//!
//! # The hot-span miss model
//!
//! Table 3 assumes a large cache and uniform random picks. Drifting
//! workloads break both: most picks land in a *hot set* whose physical
//! span decides whether it fits the buffer. When a [`PlanOp::Pick`]
//! carries [`HotInfo`] and the [`PlanContext`] supplies the hot set's
//! physical span `S`, the hot fraction of the loop's accesses is priced
//! with a span-aware model instead of the uniform amortization:
//!
//! * `A_h` hot accesses touching `r` pages each want `A_h·r` page reads;
//! * at most the span can fault in cold: `S_touched = min(S, A_h·r)`;
//! * if `S ≤ B` (buffer pages) the hot set stays resident after warm-up
//!   and the cost is just `S_touched`;
//! * if `S > B`, revisits re-miss in proportion to the overhang:
//!   `S_touched + (A_h·r − S_touched)·(S − B)/S`.
//!
//! The model is monotone non-decreasing in `S`, so packing the same hot
//! set into fewer pages can never *increase* the estimate — the predicted
//! reorganization win always has the right sign. Pure NSM navigation is
//! scan-based (span-independent), so the hot model does not apply there
//! and the predicted win is zero — consistent with a reorganizer that
//! never fires for it.

use crate::estimator::{estimate_loops, EstimatorInputs, ModelVariant, QueryCost};
use crate::formulas::distinct_selected;
use crate::QueryId;

/// Skew information for a [`PlanOp::Pick`]: which fraction of picks lands
/// in the hot set and how many distinct objects that set covers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HotInfo {
    /// Fraction of picks (0.0–1.0) that hit the hot set.
    pub pct_hot: f64,
    /// Number of distinct objects the hot set covers over the whole plan
    /// (drift widens this beyond the instantaneous window).
    pub coverage_objects: u64,
}

/// One operator of the neutral plan IR.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanOp {
    /// Chooses the current object. Free by itself; its skew shapes the
    /// cost of the accesses that follow it in the same loop body.
    Pick {
        /// Universe size picked from.
        n: u64,
        /// Skew of the pick distribution; `None` = uniform.
        hot: Option<HotInfo>,
    },
    /// Full scan of every relation (query 1c over all objects).
    Scan,
    /// Reads the current object entirely by OID (query 1a). Not priceable
    /// under pure NSM ("with NSM we have no identifiers").
    GetByOid,
    /// Reads one object selected by key value (query 1b).
    GetByKey,
    /// Navigates from the current object: children, then grand-children,
    /// `depth` hops (query 2a cold / 2b amortized; `depth` 2 is the
    /// benchmark's, other depths scale by expected draw counts).
    Navigate {
        /// Navigation depth in hops.
        depth: u32,
    },
    /// Fetches the root records of the objects the navigation reached.
    /// Free in the walk: the query 2/3 cells already include the
    /// grand-children root draws (the lowering emits it after
    /// [`PlanOp::Navigate`], never standalone).
    FetchRoots,
    /// Updates the fetched root records on `fraction` of iterations
    /// (write part of queries 3a/3b).
    UpdateRoots {
        /// Fraction of loop iterations (0.0–1.0) that apply the update.
        fraction: f64,
    },
    /// Flush + drop the cache. Priced as free: its flush writes belong to
    /// the dirty pages already accounted to the updates.
    ColdRestart,
    /// Runs `body` `count` times, amortizing repeated accesses (Eq. 8).
    Loop {
        /// Iteration count.
        count: u64,
        /// Operators run each iteration.
        body: Vec<PlanOp>,
    },
}

/// Environment the plan runs in.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlanContext {
    /// Buffer-pool capacity in pages.
    pub buffer_pages: f64,
    /// Physical span (pages) over which the hot set's pages are spread —
    /// scattered placement makes this large, a reorganized layout packs
    /// it. `None` disables the hot-span model (uniform Table 3 pricing).
    pub hot_span_pages: Option<f64>,
}

/// Estimated page I/Os for a whole plan.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PlanEstimate {
    /// Expected pages read over the whole plan.
    pub pages_read: f64,
    /// Expected pages written over the whole plan.
    pub pages_written: f64,
}

impl PlanEstimate {
    /// Total page I/Os.
    pub fn total(&self) -> f64 {
        self.pages_read + self.pages_written
    }

    fn add(&mut self, read: f64, written: f64) {
        self.pages_read += read;
        self.pages_written += written;
    }
}

/// Walks `ops` and returns the expected page I/Os of the plan under
/// `variant`, or `None` if the plan uses a primitive the model cannot
/// execute (OID access under pure NSM).
pub fn estimate_plan(
    variant: ModelVariant,
    inputs: &EstimatorInputs,
    ctx: &PlanContext,
    ops: &[PlanOp],
) -> Option<PlanEstimate> {
    let mut est = PlanEstimate::default();
    for op in ops {
        let part = match op {
            PlanOp::Loop { count, body } => loop_cost(variant, inputs, ctx, *count, body)?,
            single => loop_cost(variant, inputs, ctx, 1, std::slice::from_ref(single))?,
        };
        est.add(part.pages_read, part.pages_written);
    }
    Some(est)
}

/// Prices one loop of `count` iterations over `body`.
fn loop_cost(
    variant: ModelVariant,
    inputs: &EstimatorInputs,
    ctx: &PlanContext,
    count: u64,
    body: &[PlanOp],
) -> Option<PlanEstimate> {
    let l = (count.max(1)) as f64;
    let n = inputs.profile.n_objects as f64;
    // A cold restart inside the body drops the cache every iteration —
    // nothing amortizes across the loop (the query-1a sample protocol).
    let restarts = body.iter().any(|op| matches!(op, PlanOp::ColdRestart));
    let mut est = PlanEstimate::default();
    let mut hot: Option<HotInfo> = None;

    for op in body {
        match op {
            PlanOp::Pick { hot: h, .. } => hot = *h,
            PlanOp::FetchRoots | PlanOp::ColdRestart => {}
            PlanOp::Scan => {
                let scan = cell(variant, QueryId::Q1c, inputs, 1.0)?.pages_read * n;
                est.add(rescan_cost(scan, l, ctx, restarts), 0.0);
            }
            PlanOp::GetByKey => {
                let one = cell(variant, QueryId::Q1b, inputs, 1.0)?.pages_read;
                est.add(rescan_cost(one, l, ctx, restarts), 0.0);
            }
            PlanOp::GetByOid => {
                // Distinct picked objects each cost a cold full read;
                // revisits stay cached (large-cache best case, Eq. 8) —
                // unless a restart re-chills the cache each iteration.
                let one = cell(variant, QueryId::Q1a, inputs, 1.0)?.pages_read;
                let per_loop = |loops: f64| {
                    if restarts {
                        one
                    } else {
                        distinct_selected(n, loops) / loops * one
                    }
                };
                est.add(hot_adjusted(variant, ctx, hot, l, one, per_loop), 0.0);
            }
            PlanOp::Navigate { depth } => {
                let f = depth_factor(inputs, *depth);
                let cold = cell(variant, QueryId::Q2a, inputs, 1.0)?.pages_read * f;
                let per_loop = |loops: f64| -> f64 {
                    let q = if loops > 1.0 && !restarts {
                        QueryId::Q2b
                    } else {
                        QueryId::Q2a
                    };
                    // `cell` cannot fail here: the Q2 cells exist for every
                    // variant (only Q1a under pure NSM is missing).
                    estimate_loops(variant, q, inputs, loops)
                        .expect("query 2 cells exist for every variant")
                        .pages_read
                        * f
                };
                est.add(hot_adjusted(variant, ctx, hot, l, cold, per_loop), 0.0);
            }
            PlanOp::UpdateRoots { fraction } => {
                // Write part of queries 3a/3b; root-page writes go to
                // random distinct objects, span-insensitive.
                let q = if l > 1.0 { QueryId::Q3b } else { QueryId::Q3a };
                let w = cell(variant, q, inputs, l)?.pages_written;
                est.add(0.0, l * fraction.clamp(0.0, 1.0) * w);
            }
            PlanOp::Loop { count, body } => {
                let inner = loop_cost(variant, inputs, ctx, *count, body)?;
                est.add(l * inner.pages_read, l * inner.pages_written);
            }
        }
    }
    Some(est)
}

fn cell(
    variant: ModelVariant,
    query: QueryId,
    inputs: &EstimatorInputs,
    loops: f64,
) -> Option<QueryCost> {
    estimate_loops(variant, query, inputs, loops)
}

/// Repeated set-oriented accesses (scans, key lookups): the first pass is
/// cold; re-runs stay cached only if the touched pages fit the buffer and
/// no per-iteration restart empties it.
fn rescan_cost(one_pass: f64, l: f64, ctx: &PlanContext, restarts: bool) -> f64 {
    if !restarts && (l <= 1.0 || one_pass <= ctx.buffer_pages) {
        one_pass
    } else {
        l * one_pass
    }
}

/// Expected draw count of a `depth`-hop navigation relative to the
/// benchmark's 2-hop loop: hop 1 draws `c1` children, hop 2 `c2`
/// grand-children, deeper hops fan out by `c1` per hop.
fn depth_factor(inputs: &EstimatorInputs, depth: u32) -> f64 {
    let c1 = inputs.profile.avg_children();
    let c2 = inputs.profile.avg_grandchildren();
    let draws = |d: u32| -> f64 {
        let mut total = 1.0;
        if d >= 1 {
            total += c1;
        }
        let mut hop = c2;
        for _ in 2..=d {
            total += hop;
            hop *= c1;
        }
        total
    };
    draws(depth) / draws(2)
}

/// Total reads of `l` accesses whose per-access cold footprint is `r`
/// pages: uniform Table 3 amortization when no skew applies, the module's
/// hot-span miss model when it does.
fn hot_adjusted(
    variant: ModelVariant,
    ctx: &PlanContext,
    hot: Option<HotInfo>,
    l: f64,
    r: f64,
    per_loop: impl Fn(f64) -> f64,
) -> f64 {
    let span_sensitive = variant != ModelVariant::Nsm;
    match (hot, ctx.hot_span_pages) {
        (Some(h), Some(span)) if span_sensitive && h.pct_hot > 0.0 => {
            let a_hot = l * h.pct_hot.clamp(0.0, 1.0);
            let want = a_hot * r;
            let s_touched = span.min(want);
            let hot_cost = if span <= ctx.buffer_pages {
                s_touched
            } else {
                s_touched + (want - s_touched) * (span - ctx.buffer_pages) / span
            };
            let cold_loops = l - a_hot;
            let cold_cost = if cold_loops >= 1.0 {
                cold_loops * per_loop(cold_loops)
            } else {
                0.0
            };
            hot_cost + cold_cost
        }
        _ => l * per_loop(l),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::estimate;
    use crate::profile::BenchProfile;

    fn inputs() -> EstimatorInputs {
        EstimatorInputs::new(BenchProfile::default())
    }

    fn ctx() -> PlanContext {
        PlanContext {
            buffer_pages: 1200.0,
            hot_span_pages: None,
        }
    }

    fn pick() -> PlanOp {
        PlanOp::Pick { n: 1500, hot: None }
    }

    fn nav_loop(count: u64, update: bool) -> Vec<PlanOp> {
        let mut body = vec![pick(), PlanOp::Navigate { depth: 2 }, PlanOp::FetchRoots];
        if update {
            body.push(PlanOp::UpdateRoots { fraction: 1.0 });
        }
        vec![PlanOp::Loop { count, body }]
    }

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn walker_matches_table3_cells_for_all_variants() {
        let inputs = inputs();
        let n = inputs.profile.n_objects;
        for v in ModelVariant::all() {
            // Query 1a: one OID read.
            let plan = vec![pick(), PlanOp::GetByOid];
            let walked = estimate_plan(v, &inputs, &ctx(), &plan);
            match estimate(v, QueryId::Q1a, &inputs) {
                None => assert!(walked.is_none(), "{v}: Q1a should be unpriceable"),
                Some(c) => {
                    let w = walked.expect("priceable").pages_read;
                    assert!(close(w, c.pages_read, 1e-9), "{v} Q1a: {w} vs {c:?}");
                }
            }
            // Query 1b: one key select.
            let w = estimate_plan(v, &inputs, &ctx(), &[PlanOp::GetByKey])
                .unwrap()
                .pages_read;
            let c = estimate(v, QueryId::Q1b, &inputs).unwrap().pages_read;
            assert!(close(w, c, 1e-9), "{v} Q1b: {w} vs {c}");
            // Query 1c: the scan op covers all n objects; the cell is per
            // object.
            let w = estimate_plan(v, &inputs, &ctx(), &[PlanOp::Scan])
                .unwrap()
                .pages_read;
            let c = estimate(v, QueryId::Q1c, &inputs).unwrap().pages_read * n as f64;
            assert!(close(w, c, 1e-9), "{v} Q1c: {w} vs {c}");
            // Query 2a: a single navigation loop.
            let w = estimate_plan(v, &inputs, &ctx(), &nav_loop(1, false))
                .unwrap()
                .pages_read;
            let c = estimate(v, QueryId::Q2a, &inputs).unwrap().pages_read;
            assert!(close(w, c, 1e-9), "{v} Q2a: {w} vs {c}");
            // Query 2b: the paper's n/5-iteration loop; the cell is per
            // loop.
            let loops = QueryId::Q2b.loops(n);
            let w = estimate_plan(v, &inputs, &ctx(), &nav_loop(loops, false))
                .unwrap()
                .pages_read;
            let c = estimate(v, QueryId::Q2b, &inputs).unwrap().pages_read * loops as f64;
            assert!(close(w, c, 1e-9), "{v} Q2b: {w} vs {c}");
            // Queries 3a/3b: navigation reads + root-update writes.
            for (count, q) in [(1, QueryId::Q3a), (QueryId::Q3b.loops(n), QueryId::Q3b)] {
                let w = estimate_plan(v, &inputs, &ctx(), &nav_loop(count, true)).unwrap();
                let c = estimate(v, q, &inputs).unwrap();
                assert!(
                    close(w.pages_read, c.pages_read * count as f64, 1e-9),
                    "{v} {q} reads: {} vs {}",
                    w.pages_read,
                    c.pages_read * count as f64
                );
                assert!(
                    close(w.pages_written, c.pages_written * count as f64, 1e-9),
                    "{v} {q} writes: {} vs {}",
                    w.pages_written,
                    c.pages_written * count as f64
                );
            }
        }
    }

    fn hot_plan(pct_hot: f64) -> Vec<PlanOp> {
        vec![PlanOp::Loop {
            count: 400,
            body: vec![
                PlanOp::Pick {
                    n: 1500,
                    hot: Some(HotInfo {
                        pct_hot,
                        coverage_objects: 32,
                    }),
                },
                PlanOp::Navigate { depth: 2 },
                PlanOp::FetchRoots,
            ],
        }]
    }

    fn at_span(v: ModelVariant, span: f64) -> f64 {
        let ctx = PlanContext {
            buffer_pages: 100.0,
            hot_span_pages: Some(span),
        };
        estimate_plan(v, &inputs(), &ctx, &hot_plan(0.9))
            .unwrap()
            .pages_read
    }

    #[test]
    fn hot_span_cost_is_monotone_in_the_span() {
        for v in [
            ModelVariant::Dsm,
            ModelVariant::NsmIndexed,
            ModelVariant::DasdbsNsm,
        ] {
            let mut prev = 0.0;
            for span in [20.0, 80.0, 100.0, 400.0, 2000.0, 6000.0] {
                let cost = at_span(v, span);
                assert!(
                    cost >= prev - 1e-9,
                    "{v}: cost at span {span} fell: {cost} < {prev}"
                );
                prev = cost;
            }
            // A hot set that fits the buffer is far cheaper than one
            // scattered over a span much larger than the buffer.
            assert!(at_span(v, 80.0) < 0.5 * at_span(v, 6000.0), "{v}");
        }
    }

    #[test]
    fn pure_nsm_navigation_is_span_independent() {
        assert!(
            (at_span(ModelVariant::Nsm, 20.0) - at_span(ModelVariant::Nsm, 6000.0)).abs() < 1e-9,
            "pure NSM scans; packing the hot set cannot help it"
        );
    }

    #[test]
    fn depth_scaling_brackets_the_benchmark_loop() {
        let inputs = inputs();
        assert!(close(depth_factor(&inputs, 2), 1.0, 1e-12));
        assert!(depth_factor(&inputs, 1) < 1.0);
        assert!(depth_factor(&inputs, 3) > 1.0);
    }

    #[test]
    fn uniform_pick_reduces_to_table3_amortization() {
        // With no hot info the span must not matter at all.
        let with_span = PlanContext {
            buffer_pages: 100.0,
            hot_span_pages: Some(5000.0),
        };
        let a = estimate_plan(
            ModelVariant::Dsm,
            &inputs(),
            &with_span,
            &nav_loop(300, false),
        )
        .unwrap()
        .pages_read;
        let b = estimate_plan(ModelVariant::Dsm, &inputs(), &ctx(), &nav_loop(300, false))
            .unwrap()
            .pages_read;
        assert!(close(a, b, 1e-12));
    }
}
