//! Expected benchmark-structure parameters and the analytic derivation of
//! the paper's Table 2 (average tuple sizes, `k`, `p`, `m` per relation and
//! storage model).
//!
//! Sizes follow the calibrated encoding overhead model of
//! [`starfish_nf2::overhead`] (DESIGN.md §6) with the benchmark's 4-byte
//! ints/links and 100-byte strings, plus the 4-byte page slot entry for
//! page-sharing tuples — reproducing the recoverable Table 2 cells exactly
//! (NSM-Connection 170 B / k=11 / m=559, NSM-Station k=13 / m=116,
//! NSM-Sightseeing k=4 / m=2813).

use starfish_nf2::overhead;

/// Usable bytes per page (2048 − 36).
pub const S_PAGE: f64 = 2012.0;
/// Page slot entry bytes.
pub const SLOT: f64 = 4.0;
const INT: f64 = 4.0;
const STR: f64 = 102.0; // 100 payload + 2-byte length prefix
const LINK: f64 = 4.0;

/// Expected structure of the generated benchmark database.
///
/// Matches §2.1: `fanout` slots at each of the three generation levels
/// (platforms, railroads, connections-per-railroad), each materialized with
/// probability `prob`; `0..=max_sightseeing` sightseeings uniformly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenchProfile {
    /// Number of complex objects (default 1500).
    pub n_objects: u64,
    /// Sub-object slots per level (default 2).
    pub fanout: u32,
    /// Materialization probability per slot (default 0.8).
    pub prob: f64,
    /// Maximum sightseeings per station (default 15; uniform 0..=max).
    pub max_sightseeing: u32,
}

impl Default for BenchProfile {
    fn default() -> Self {
        BenchProfile {
            n_objects: 1500,
            fanout: 2,
            prob: 0.8,
            max_sightseeing: 15,
        }
    }
}

impl BenchProfile {
    /// The paper's data-skew variant (§5.5): probability 20%, fanout 8.
    pub fn skewed() -> Self {
        BenchProfile {
            prob: 0.2,
            fanout: 8,
            ..Default::default()
        }
    }

    /// Expected platforms per station: `fanout · prob` (default 1.6).
    pub fn avg_platforms(&self) -> f64 {
        self.fanout as f64 * self.prob
    }

    /// Expected connections per platform: `(fanout · prob)²` (default 2.56).
    pub fn avg_connections_per_platform(&self) -> f64 {
        self.avg_platforms() * self.avg_platforms()
    }

    /// Expected connections (= children) per station:
    /// `(fanout · prob)³` (default 4.096 — the paper's "4.10 children").
    pub fn avg_children(&self) -> f64 {
        self.avg_platforms() * self.avg_connections_per_platform()
    }

    /// Expected grand-children per station (default ≈ 16.78 — "16.7").
    pub fn avg_grandchildren(&self) -> f64 {
        self.avg_children() * self.avg_children()
    }

    /// Expected sightseeings per station (default 7.5).
    pub fn avg_sightseeings(&self) -> f64 {
        self.max_sightseeing as f64 / 2.0
    }

    // ----- expected encoded sizes (closed forms over the overhead model) ---

    /// Encoded bytes of one `Connection` sub-tuple (exact: 150).
    pub fn connection_encoded(&self) -> f64 {
        tuple_base(4) + 3.0 * INT + STR // LineNr, KeyConnection, Oid, Times
            - INT
            + LINK // one of the ints is the 4-byte LINK (same size)
    }

    /// Expected encoded bytes of one `Platform` sub-tuple including its
    /// nested connections.
    pub fn platform_encoded(&self) -> f64 {
        tuple_base(5)
            + 3.0 * INT
            + STR
            + subrel(
                self.avg_connections_per_platform(),
                self.connection_encoded(),
            )
    }

    /// Encoded bytes of one `Sightseeing` sub-tuple (exact: 452).
    pub fn sightseeing_encoded(&self) -> f64 {
        tuple_base(5) + INT + 4.0 * STR
    }

    /// Expected encoded bytes of a whole `Station` object (the direct
    /// models' data payload).
    pub fn station_encoded(&self) -> f64 {
        tuple_base(6)
            + 3.0 * INT
            + STR
            + subrel(self.avg_platforms(), self.platform_encoded())
            + subrel(self.avg_sightseeings(), self.sightseeing_encoded())
    }

    /// Expected bytes of the station root record region (tuple header +
    /// offset table + the four atomic attributes) — what query 2/3 touch on
    /// the grand-children.
    pub fn root_region_bytes(&self) -> f64 {
        tuple_base(6) + 3.0 * INT + STR
    }

    /// Expected bytes of the navigation prefix (root region + the whole
    /// `Platform` sub-relation including nested connections) — what
    /// queries 2/3 touch when extracting children references. The
    /// `Sightseeing` suffix is never part of it.
    pub fn navigation_bytes(&self) -> f64 {
        self.root_region_bytes() + subrel(self.avg_platforms(), self.platform_encoded())
    }

    /// Analytic Table 2 for all storage models.
    pub fn table2(&self) -> Table2Analytic {
        let n = self.n_objects as f64;
        let pl = self.avg_platforms();
        let co = self.avg_children();
        let se = self.avg_sightseeings();

        // --- direct models: one relation of whole objects --------------
        // Objects that fit a page share pages (§5.3: with small objects the
        // direct models "do not have separate header and data pages any
        // longer. Rather, several objects will share a single page").
        let data = self.station_encoded();
        let dsm = if data + SLOT > S_PAGE {
            RelParams::spanned("DSM-Station", 1.0, n, data, 1.0)
        } else {
            RelParams::small("DSM-Station", 1.0, n, data + SLOT)
        };

        // --- NSM: four flat relations ----------------------------------
        let nsm_station = RelParams::small(
            "NSM-Station",
            1.0,
            n,
            tuple_base(4) + 3.0 * INT + STR + SLOT,
        );
        let nsm_platform = RelParams::small(
            "NSM-Platform",
            pl,
            n * pl,
            tuple_base(6) + 5.0 * INT + STR + SLOT,
        );
        let nsm_connection = RelParams::small(
            "NSM-Connection",
            co,
            n * co,
            tuple_base(6) + 4.0 * INT + LINK + STR + SLOT,
        );
        let nsm_sightseeing = RelParams::small(
            "NSM-Sightseeing",
            se,
            n * se,
            tuple_base(6) + 2.0 * INT + 4.0 * STR + SLOT,
        );

        // --- DASDBS-NSM: one (possibly nested) tuple per object --------
        let dn_station = RelParams::small(
            "DASDBS-NSM-Station",
            1.0,
            n,
            tuple_base(4) + 3.0 * INT + STR + SLOT,
        );
        let dn_platform_inner = tuple_base(5) + 4.0 * INT + STR;
        let dn_platform = RelParams::small(
            "DASDBS-NSM-Platform",
            1.0,
            n,
            tuple_base(2) + INT + subrel(pl, dn_platform_inner) + SLOT,
        );
        let dn_conn_mid = tuple_base(2)
            + INT
            + subrel(
                self.avg_connections_per_platform(),
                self.connection_encoded(),
            );
        let dn_connection = RelParams::small(
            "DASDBS-NSM-Connection",
            1.0,
            n,
            tuple_base(2) + INT + subrel(pl, dn_conn_mid) + SLOT,
        );
        let dn_seeing_bytes = tuple_base(2) + INT + subrel(se, self.sightseeing_encoded());
        let dn_sightseeing = if dn_seeing_bytes + SLOT > S_PAGE {
            RelParams::spanned("DASDBS-NSM-Sightseeing", 1.0, n, dn_seeing_bytes, 1.0)
        } else {
            RelParams::small("DASDBS-NSM-Sightseeing", 1.0, n, dn_seeing_bytes + SLOT)
        };

        Table2Analytic {
            dsm,
            nsm: [nsm_station, nsm_platform, nsm_connection, nsm_sightseeing],
            dasdbs_nsm: [dn_station, dn_platform, dn_connection, dn_sightseeing],
        }
    }
}

/// Tuple header + per-attribute directory entries.
fn tuple_base(nattrs: u32) -> f64 {
    (overhead::TUPLE_HEADER + overhead::PER_ATTR * nattrs as usize) as f64
}

/// Sub-relation header + expected member encodings with address entries.
fn subrel(avg_members: f64, member_bytes: f64) -> f64 {
    overhead::SUBREL_HEADER as f64 + avg_members * (overhead::PER_SUBTUPLE as f64 + member_bytes)
}

/// Analytic per-relation parameters (one Table 2 row).
#[derive(Clone, Debug, PartialEq)]
pub struct RelParams {
    /// Relation name.
    pub name: String,
    /// Expected tuples per station.
    pub tuples_per_object: f64,
    /// Expected total tuples.
    pub total_tuples: f64,
    /// Expected stored tuple size `S_tuple` (slot entry included for
    /// page-sharing tuples; data bytes only for page-spanning tuples,
    /// header pages accounted separately via `header_pages`).
    pub s_tuple: f64,
    /// Tuples per page (`k`) for page-sharing relations.
    pub k: Option<u64>,
    /// Allocated pages per tuple (`p = h + ⌈data/S_page⌉`) for spanning
    /// relations.
    pub p: Option<u64>,
    /// Header pages per tuple for spanning relations.
    pub header_pages: f64,
    /// Total pages `m`.
    pub m: f64,
}

impl RelParams {
    fn small(name: &str, per_obj: f64, total: f64, s_tuple: f64) -> RelParams {
        let k = (S_PAGE / s_tuple).floor().max(1.0);
        RelParams {
            name: name.into(),
            tuples_per_object: per_obj,
            total_tuples: total,
            s_tuple,
            k: Some(k as u64),
            p: None,
            header_pages: 0.0,
            m: (total / k).ceil(),
        }
    }

    fn spanned(
        name: &str,
        per_obj: f64,
        total: f64,
        data_bytes: f64,
        header_pages: f64,
    ) -> RelParams {
        let p = header_pages + (data_bytes / S_PAGE).ceil();
        RelParams {
            name: name.into(),
            tuples_per_object: per_obj,
            total_tuples: total,
            s_tuple: data_bytes,
            k: None,
            p: Some(p as u64),
            header_pages,
            m: total * p,
        }
    }

    /// Fractional data pages (`D = data/S_page`) for spanning relations.
    pub fn data_pages(&self) -> f64 {
        self.s_tuple / S_PAGE
    }
}

/// The analytic Table 2: per-relation parameters for each storage model.
/// (DASDBS-DSM shares DSM's physical layout and therefore its row.)
#[derive(Clone, Debug, PartialEq)]
pub struct Table2Analytic {
    /// The direct models' single relation.
    pub dsm: RelParams,
    /// NSM's four flat relations (Station, Platform, Connection,
    /// Sightseeing).
    pub nsm: [RelParams; 4],
    /// DASDBS-NSM's four relations.
    pub dasdbs_nsm: [RelParams; 4],
}

impl Table2Analytic {
    /// All rows in presentation order.
    pub fn rows(&self) -> Vec<&RelParams> {
        let mut v = vec![&self.dsm];
        v.extend(self.nsm.iter());
        v.extend(self.dasdbs_nsm.iter());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn structure_expectations_match_paper() {
        let p = BenchProfile::default();
        assert!(close(p.avg_platforms(), 1.6, 1e-12));
        assert!(close(p.avg_connections_per_platform(), 2.56, 1e-12));
        // "each Platform has at most four Connections, which are each
        // generated with a probability of 0.64" ⇒ 2.56 per platform.
        assert!(close(p.avg_children(), 4.096, 1e-12), "4.10 children");
        assert!(
            close(p.avg_grandchildren(), 16.78, 0.01),
            "16.7 grand-children"
        );
        assert!(close(p.avg_sightseeings(), 7.5, 1e-12));
    }

    #[test]
    fn skew_profile_preserves_averages() {
        // §5.5: probability 20% / fanout 8 keeps the same expected counts.
        let s = BenchProfile::skewed();
        assert!(close(s.avg_children(), 4.096, 1e-9));
        assert!(close(s.avg_grandchildren(), 16.78, 0.01));
    }

    #[test]
    fn encoded_sizes_match_fixed_points() {
        let p = BenchProfile::default();
        assert!(close(p.connection_encoded(), 150.0, 1e-12));
        assert!(close(p.sightseeing_encoded(), 452.0, 1e-12));
        // Expected platform ≈ 162 + 154·2.56 = 556.24.
        assert!(close(p.platform_encoded(), 556.24, 0.01));
        // Expected station ≈ 4490.4 (DESIGN.md §6).
        assert!(close(p.station_encoded(), 4490.4, 0.5));
        // Navigation prefix is ~¼ of the object; root region is tiny.
        assert!(p.navigation_bytes() < p.station_encoded() / 3.0);
        assert!(close(p.root_region_bytes(), 158.0, 1e-12));
    }

    #[test]
    fn table2_reproduces_recoverable_paper_cells() {
        let t2 = BenchProfile::default().table2();
        // NSM-Station: S=154, k=13, m=116 (§5.1: "all 116 pages").
        let st = &t2.nsm[0];
        assert!(close(st.s_tuple, 154.0, 1e-9));
        assert_eq!(st.k, Some(13));
        assert!(close(st.m, 116.0, 1e-9));
        // NSM-Connection: S=170, k=11, m=⌈6144/11⌉=559 (Table 2, exact).
        let co = &t2.nsm[2];
        assert!(close(co.s_tuple, 170.0, 1e-9));
        assert_eq!(co.k, Some(11));
        assert!(close(co.total_tuples, 6144.0, 0.5));
        assert!(close(co.m, 559.0, 1.0));
        // NSM-Sightseeing: k=4, m=2813 (Table 2; paper S≈456, ours 464).
        let se = &t2.nsm[3];
        assert_eq!(se.k, Some(4));
        assert!(close(se.m, 2813.0, 1.0));
        assert!(close(se.s_tuple, 464.0, 1e-9));
        // DSM-Station: p=4 allocated pages, m=6000 (Table 2).
        assert_eq!(t2.dsm.p, Some(4));
        assert!(close(t2.dsm.m, 6000.0, 1.0));
    }

    #[test]
    fn dasdbs_nsm_rows_are_one_tuple_per_object() {
        let t2 = BenchProfile::default().table2();
        for r in &t2.dasdbs_nsm {
            assert!(close(r.tuples_per_object, 1.0, 1e-12), "{}", r.name);
            assert!(close(r.total_tuples, 1500.0, 1e-9));
        }
        // Station root k=13 like NSM's.
        assert_eq!(t2.dasdbs_nsm[0].k, Some(13));
        // Sightseeing nested tuples span pages (avg ≈ 3.46 KB ⇒ p = 3).
        assert_eq!(t2.dasdbs_nsm[3].p, Some(3));
        // Connection nested tuples still share pages (k = 2).
        assert_eq!(t2.dasdbs_nsm[2].k, Some(2));
    }

    #[test]
    fn zero_sightseeing_profile_shrinks_objects_below_a_page() {
        // §5.3: with 0 sightseeings DSM stations become smaller than a page.
        let p = BenchProfile {
            max_sightseeing: 0,
            ..Default::default()
        };
        assert!(p.station_encoded() + SLOT < S_PAGE);
        let t2 = p.table2();
        // The analytic table models them as page-sharing in that regime
        // (our spanned() is only used when data exceeds a page).
        assert!(t2.dsm.s_tuple < S_PAGE);
    }

    #[test]
    fn rows_enumerates_nine_relations() {
        let t2 = BenchProfile::default().table2();
        assert_eq!(t2.rows().len(), 9);
    }
}
