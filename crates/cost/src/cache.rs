//! Database-caching analysis (paper §5.4, Figure 6).
//!
//! Figure 6 plots, for query 2b and varying database sizes (100…1500
//! objects, loops = size/5, logarithmic x-axis), three things per storage
//! model:
//!
//! * the **measured** pages per loop (from the simulation harness),
//! * the **best-case** analytic value — the Table 3 query-2b estimate,
//!   which assumes no cache overflow (Equation 8 distinct-object
//!   amortization),
//! * the **worst-case** analytic value — the query-2a estimate, i.e. no
//!   cache hits at all ("we may regard the analytically calculated value
//!   for query 2a as a worst case estimate for query 2b").

use crate::estimator::{estimate, EstimatorInputs, ModelVariant};
use crate::profile::BenchProfile;
use crate::QueryId;

/// Analytic envelope for one model at one database size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheCurve {
    /// Number of objects in the database.
    pub n_objects: u64,
    /// Loops executed (`n/5`).
    pub loops: u64,
    /// Best-case pages per loop (query 2b estimate, large cache).
    pub best_case: f64,
    /// Worst-case pages per loop (query 2a estimate, no cache hits).
    pub worst_case: f64,
}

/// Computes the Figure 6 analytic envelope for `variant` across database
/// sizes.
pub fn fig6_curves(variant: ModelVariant, sizes: &[u64]) -> Vec<CacheCurve> {
    sizes
        .iter()
        .map(|&n| {
            let profile = BenchProfile {
                n_objects: n,
                ..Default::default()
            };
            let inputs = EstimatorInputs::new(profile);
            let best = estimate(variant, QueryId::Q2b, &inputs)
                .expect("2b defined for all models")
                .total();
            let worst = estimate(variant, QueryId::Q2a, &inputs)
                .expect("2a defined for all models")
                .total();
            CacheCurve {
                n_objects: n,
                loops: QueryId::Q2b.loops(n),
                best_case: best,
                worst_case: worst,
            }
        })
        .collect()
}

/// The database sizes the paper sweeps in Figure 6 (log-scale axis from 100
/// to 1500 objects).
pub const FIG6_SIZES: [u64; 6] = [100, 200, 400, 800, 1200, 1500];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_case_below_worst_case_everywhere() {
        for v in [
            ModelVariant::Dsm,
            ModelVariant::DasdbsDsm,
            ModelVariant::DasdbsNsm,
        ] {
            for c in fig6_curves(v, &FIG6_SIZES) {
                assert!(
                    c.best_case <= c.worst_case + 1e-9,
                    "{v} at {}: best {} > worst {}",
                    c.n_objects,
                    c.best_case,
                    c.worst_case
                );
            }
        }
    }

    #[test]
    fn dsm_worst_case_matches_paper_narrative() {
        // §5.4: with 3 pages per object (DSM'), the worst case for 1500
        // objects is ~65.2, "very close to the measured value for large
        // database sizes".
        let c = fig6_curves(ModelVariant::DsmPrime, &[1500])[0];
        assert!((c.worst_case - 65.6).abs() < 1.0, "{}", c.worst_case);
        assert_eq!(c.loops, 300);
    }

    #[test]
    fn model_ordering_is_preserved_across_sizes() {
        // DSM most cache-sensitive, DASDBS-NSM least (§5.4).
        for &n in &FIG6_SIZES {
            let dsm = fig6_curves(ModelVariant::Dsm, &[n])[0];
            let ddsm = fig6_curves(ModelVariant::DasdbsDsm, &[n])[0];
            let dnsm = fig6_curves(ModelVariant::DasdbsNsm, &[n])[0];
            assert!(dsm.worst_case > ddsm.worst_case);
            assert!(ddsm.worst_case > dnsm.worst_case);
        }
    }

    #[test]
    fn small_databases_have_fewer_loops() {
        let c = fig6_curves(ModelVariant::Dsm, &[100])[0];
        assert_eq!(c.loops, 20);
    }
}
