//! Monte-Carlo cross-validation of the page-access formulas.
//!
//! The paper validates its analytical model against DASDBS measurements; we
//! additionally validate each formula against direct stochastic simulation
//! of the placement process it models. This pins down the two OCR-garbled
//! equations (5 and 7) far more tightly than the surviving table cells can.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use starfish_cost::formulas::{bernstein, cluster_run, clustered_groups, distinct_selected, yao};
use std::collections::HashSet;

const TRIALS: usize = 4000;

/// Simulates Eq. 4's process: `t` tuples drawn uniformly (with replacement,
/// like Bernstein's approximation assumes) over `m` pages; returns the mean
/// number of distinct pages.
fn simulate_random_tuples(t: usize, m: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0usize;
    for _ in 0..TRIALS {
        let mut pages = HashSet::new();
        for _ in 0..t {
            pages.insert(rng.random_range(0..m));
        }
        total += pages.len();
    }
    total as f64 / TRIALS as f64
}

/// Simulates Yao's process exactly: `t` *distinct* tuples sampled without
/// replacement from `m·k` tuples stored `k` per page.
fn simulate_yao(t: usize, m: usize, k: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = m * k;
    let mut total = 0usize;
    let mut ids: Vec<usize> = (0..n).collect();
    for _ in 0..TRIALS {
        // Partial Fisher-Yates: first t entries are a uniform sample.
        for i in 0..t {
            let j = rng.random_range(i..n);
            ids.swap(i, j);
        }
        let pages: HashSet<usize> = ids[..t].iter().map(|&id| id / k).collect();
        total += pages.len();
    }
    total as f64 / TRIALS as f64
}

/// Simulates Eq. 6's process: one run of `t` consecutive tuples starting at
/// a uniformly random offset within a page, `k` tuples per page.
fn simulate_cluster_run(t: usize, k: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0usize;
    for _ in 0..TRIALS {
        let offset = rng.random_range(0..k);
        total += (offset + t).div_ceil(k);
    }
    total as f64 / TRIALS as f64
}

/// Simulates Eq. 7's process: `i` clusters of `g` consecutive tuples, each
/// cluster placed at an independently random tuple position in a relation
/// of `m` pages × `k` tuples; counts distinct pages touched.
fn simulate_clustered_groups(i: usize, g: usize, m: usize, k: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = m * k;
    let mut total = 0usize;
    for _ in 0..TRIALS {
        let mut pages = HashSet::new();
        for _ in 0..i {
            let start = rng.random_range(0..n - g);
            for p in (start / k)..=((start + g - 1) / k) {
                pages.insert(p);
            }
        }
        total += pages.len();
    }
    total as f64 / TRIALS as f64
}

/// Simulates Eq. 8's process: `n_num` draws with replacement from `n_tot`
/// objects; counts distinct objects.
fn simulate_distinct(n_tot: usize, n_num: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let trials = 400;
    let mut total = 0usize;
    for _ in 0..trials {
        let mut seen = HashSet::new();
        for _ in 0..n_num {
            seen.insert(rng.random_range(0..n_tot));
        }
        total += seen.len();
    }
    total as f64 / trials as f64
}

fn assert_close(formula: f64, simulated: f64, rel_tol: f64, what: &str) {
    let rel = (formula - simulated).abs() / simulated.max(1e-9);
    assert!(
        rel <= rel_tol,
        "{what}: formula {formula:.3} vs simulation {simulated:.3} (rel err {rel:.3})"
    );
}

#[test]
fn eq4_bernstein_matches_simulation() {
    for (t, m) in [(5, 50), (17, 116), (100, 116), (40, 559), (300, 116)] {
        let sim = simulate_random_tuples(t, m, 42 + t as u64);
        assert_close(
            bernstein(t as f64, m as f64),
            sim,
            0.01,
            &format!("bernstein({t},{m})"),
        );
    }
}

#[test]
fn yao_matches_without_replacement_simulation() {
    for (t, m, k) in [(17, 116, 13), (50, 116, 13), (30, 559, 11), (8, 20, 4)] {
        let sim = simulate_yao(t, m, k, 7 + t as u64);
        assert_close(
            yao(t as u64, m as u64, k as u64),
            sim,
            0.01,
            &format!("yao({t},{m},{k})"),
        );
    }
}

#[test]
fn yao_exceeds_bernstein_slightly() {
    // Sampling without replacement spreads over more pages than with
    // replacement, so Yao ≥ Bernstein with equality in the limit.
    for (t, m, k) in [(17, 116, 13), (100, 559, 11)] {
        let y = yao(t, m, k);
        let b = bernstein(t as f64, m as f64);
        assert!(y >= b - 1e-9, "yao {y} < bernstein {b}");
        assert!(y - b < 1.0, "approximation gap too large: {y} vs {b}");
    }
}

#[test]
fn eq6_cluster_run_matches_simulation_exactly() {
    // Eq. 6 is an exact expectation; simulation converges to it.
    for (t, k) in [(1, 13), (7, 4), (13, 13), (25, 11), (100, 4)] {
        let sim = simulate_cluster_run(t, k, 99 + t as u64);
        assert_close(
            cluster_run(t as f64, 1e9, k as f64),
            sim,
            0.01,
            &format!("cluster_run({t},k={k})"),
        );
    }
}

#[test]
fn eq7_clustered_groups_matches_simulation_small_g() {
    // g ≤ 2k−2 branch (the Bernstein-corrected branch).
    for (i, g, m, k) in [
        (4, 4, 559, 11),
        (17, 4, 116, 13),
        (10, 2, 50, 4),
        (40, 6, 219, 11),
    ] {
        let sim = simulate_clustered_groups(i, g, m, k, 1234 + (i * g) as u64);
        let formula = clustered_groups((i * g) as f64, g as f64, m as f64, k as f64);
        assert_close(
            formula,
            sim,
            0.06,
            &format!("clustered_groups(i={i},g={g},m={m},k={k})"),
        );
    }
}

#[test]
fn eq7_clustered_groups_matches_simulation_recursive_branch() {
    // g > 2k−2 triggers the reconstructed recursion.
    for (i, g, m, k) in [(3, 30, 1000, 4), (5, 12, 400, 4), (2, 40, 800, 11)] {
        let sim = simulate_clustered_groups(i, g, m, k, 777 + (i * g) as u64);
        let formula = clustered_groups((i * g) as f64, g as f64, m as f64, k as f64);
        assert_close(
            formula,
            sim,
            0.08,
            &format!("clustered_groups recursive(i={i},g={g},m={m},k={k})"),
        );
    }
}

#[test]
fn eq8_distinct_matches_simulation() {
    for (n_tot, n_num) in [(1500, 300), (1500, 6540), (100, 50), (250, 4000)] {
        let sim = simulate_distinct(n_tot, n_num, 3 + n_num as u64);
        assert_close(
            distinct_selected(n_tot as f64, n_num as f64),
            sim,
            0.01,
            &format!("distinct({n_tot},{n_num})"),
        );
    }
}
