//! `starfish-repro` — regenerate every table and figure of the ICDE 1993
//! evaluation.
//!
//! ```text
//! starfish-repro [--fast] [--only <id>[,<id>…]] [--markdown] [--seed N]
//!                [--policy <name>] [--threads N]
//!
//!   --fast       300 objects / 240-page buffer (same DB:buffer ratio)
//!   --only       run a subset: table2,table3,table4,table5,table6,
//!                fig5,fig6,table7,table8,ext-timing,ext-buffer,
//!                ext-policy,ext-concurrency,ext-distributed,
//!                ext-clustering,ext-alignment
//!   --markdown   emit GitHub-flavoured markdown instead of plain text
//!   --json       emit one JSON object per experiment (one per line)
//!   --seed N     dataset seed (default 4242)
//!   --policy P   buffer-replacement policy for every measurement:
//!                lru (paper default), clock, mru, fifo, lru2.
//!                ext-policy always sweeps all five.
//!   --threads N  client count for ext-concurrency (default: sweep
//!                1/2/4/8). With N=1 the experiment reproduces the serial
//!                per-unit counters exactly.
//! ```

use starfish_harness::experiments;
use starfish_harness::runner::{measure_grid, parse_threads, HarnessConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "starfish-repro [--fast] [--only <ids>] [--markdown] [--seed N] \
             [--policy lru|clock|mru|fifo|lru2] [--threads N]\n\
             regenerates the tables/figures of 'An Evaluation of Physical Disk \
             I/Os for Complex Object Processing' (ICDE 1993)\n\
             --policy selects the buffer-replacement policy behind every \
             measurement (default lru, the paper's §5.1 buffer); the \
             ext-policy experiment sweeps all five policies regardless\n\
             --threads pins the ext-concurrency client count (default sweep: \
             1/2/4/8 clients over the sharded pool)"
        );
        return;
    }
    let mut config = if args.iter().any(|a| a == "--fast") {
        HarnessConfig::fast()
    } else {
        HarnessConfig::default()
    };
    if let Some(i) = args.iter().position(|a| a == "--seed") {
        if let Some(seed) = args.get(i + 1).and_then(|s| s.parse().ok()) {
            config.dataset_seed = seed;
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--policy") {
        match args.get(i + 1).map(|s| s.parse()) {
            Some(Ok(policy)) => config.policy = policy,
            Some(Err(e)) => {
                eprintln!("starfish-repro: {e}");
                std::process::exit(2);
            }
            None => {
                eprintln!("starfish-repro: --policy needs a value");
                std::process::exit(2);
            }
        }
    }
    let threads: Option<usize> = match parse_threads(&args) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("starfish-repro: {msg}");
            std::process::exit(2);
        }
    };
    let run_concurrency = |config: &HarnessConfig| match threads {
        Some(n) => experiments::ext_concurrency::run_with(config, &[n]),
        None => experiments::ext_concurrency::run(config),
    };
    let markdown = args.iter().any(|a| a == "--markdown");
    let json = args.iter().any(|a| a == "--json");
    let only: Option<Vec<String>> = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').map(|x| x.trim().to_string()).collect());

    eprintln!(
        "starfish-repro: {} objects, {}-page buffer ({}), dataset seed {}",
        config.n_objects, config.buffer_pages, config.policy, config.dataset_seed
    );

    let reports = match &only {
        None => match threads {
            Some(n) => experiments::run_all_with(&config, &[n]).unwrap_or_else(die),
            None => experiments::run_all(&config).unwrap_or_else(die),
        },
        Some(ids) => {
            let mut out = Vec::new();
            // Tables 4–6 and 8 share one measured grid; build it lazily.
            let mut grid = None;
            let mut ensure_grid = || {
                measure_grid(&config.dataset(), &config, &experiments::grid_models())
                    .unwrap_or_else(die)
            };
            for id in ids {
                let report = match id.as_str() {
                    "table2" => experiments::table2::run(&config).unwrap_or_else(die),
                    "table3" => experiments::table3::run(&config),
                    "table4" => {
                        let g = grid.get_or_insert_with(&mut ensure_grid);
                        experiments::table4::run(g)
                    }
                    "table5" => {
                        let g = grid.get_or_insert_with(&mut ensure_grid);
                        experiments::table5::run(g)
                    }
                    "table6" => {
                        let g = grid.get_or_insert_with(&mut ensure_grid);
                        experiments::table6::run(g)
                    }
                    "table8" => {
                        let g = grid.get_or_insert_with(&mut ensure_grid);
                        experiments::table8::run(g)
                    }
                    "fig5" => experiments::fig5::run(&config).unwrap_or_else(die),
                    "fig6" => experiments::fig6::run(&config).unwrap_or_else(die),
                    "table7" => experiments::table7::run(&config).unwrap_or_else(die),
                    "ext-timing" => {
                        let g = grid.get_or_insert_with(&mut ensure_grid);
                        experiments::ext_timing::run(g)
                    }
                    "ext-alignment" => experiments::ext_alignment::run(&config).unwrap_or_else(die),
                    "ext-buffer" => experiments::ext_buffer::run(&config).unwrap_or_else(die),
                    "ext-policy" | "ext_policy" => {
                        experiments::ext_policy::run(&config).unwrap_or_else(die)
                    }
                    "ext-concurrency" | "ext_concurrency" => {
                        run_concurrency(&config).unwrap_or_else(die)
                    }
                    "ext-clustering" => {
                        experiments::ext_clustering::run(&config).unwrap_or_else(die)
                    }
                    "ext-distributed" => {
                        experiments::ext_distributed::run(&config).unwrap_or_else(die)
                    }
                    other => {
                        eprintln!("unknown experiment id: {other}");
                        std::process::exit(2);
                    }
                };
                out.push(report);
            }
            out
        }
    };

    for report in &reports {
        if json {
            println!("{}", report.render_json());
        } else if markdown {
            println!("{}", report.render_markdown());
        } else {
            println!("{}", report.render());
        }
    }
}

fn die<T>(err: starfish_core::CoreError) -> T {
    eprintln!("starfish-repro failed: {err}");
    std::process::exit(1);
}
