//! `starfish-repro` — regenerate every table and figure of the ICDE 1993
//! evaluation, and run declarative workloads beyond it.
//!
//! ```text
//! starfish-repro [--fast] [--only <id>[,<id>…]] [--markdown] [--json]
//!                [--seed N] [--policy <name>] [--threads N] [--fsync M]
//!                [--queue-depth N] [--workload <file.json>|<builtin>]
//!                [--sweep] [--nodes N] [--list]
//!
//!   --fast       300 objects / 240-page buffer (same DB:buffer ratio)
//!   --only       run a subset of experiments (ids from --list)
//!   --markdown   emit GitHub-flavoured markdown instead of plain text
//!   --json       emit one JSON object per experiment (one per line)
//!   --seed N     dataset seed (default 4242)
//!   --policy P   buffer-replacement policy for every measurement:
//!                lru (paper default), clock, mru, fifo, lru2.
//!                ext-policy always sweeps all five.
//!   --threads N  client count for ext-concurrency and workers-per-node
//!                for ext-distributed's serving sweep (default: sweep
//!                1/2/4/8). With N=1 the experiments reproduce the serial
//!                per-unit counters exactly. Combined with --workload, runs
//!                the spec over the concurrent surface with N clients.
//!   --fsync M    restrict ext-durability to one WAL flush mode: per
//!                (flush the log on every commit) or group (leader
//!                flushes a batch). Default: sweep both. Other
//!                experiments run with the WAL off and ignore it.
//!   --queue-depth N
//!                cap the queue depths ext-concurrency's batched-I/O
//!                sweep drives (default 8: depths 1/2/4/8 with the
//!                submission/completion engine enabled). Other
//!                experiments run with the engine off and ignore it.
//!   --workload   run one declarative workload spec (a JSON file path or a
//!                built-in name like deep-nav) across the five storage
//!                models instead of the experiment suite; add --threads N
//!                to serve it from N client threads
//!   --sweep      with --workload: cross the spec with every replacement
//!                policy × the client-count list through the shared
//!                reporting path (concurrency, cluster and drift scenarios
//!                render identically); add --nodes N to serve every cell
//!                from a routed N-node cluster instead of the shared
//!                surface
//!   --nodes N    cluster size for --workload --sweep (requires --sweep)
//!   --list       enumerate experiments, built-in queries and shipped
//!                workload specs, then exit
//! ```

use starfish_harness::experiments;
use starfish_harness::runner::{
    parse_fsync, parse_nodes, parse_queue_depth, parse_threads, HarnessConfig,
};
use starfish_workload::WorkloadSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "starfish-repro [--fast] [--only <ids>] [--markdown] [--json] [--seed N] \
             [--policy lru|clock|mru|fifo|lru2] [--threads N] [--fsync per|group] \
             [--queue-depth N] [--workload <file.json>|<name>] [--sweep] \
             [--nodes N] [--list]\n\
             regenerates the tables/figures of 'An Evaluation of Physical Disk \
             I/Os for Complex Object Processing' (ICDE 1993)\n\
             --policy selects the buffer-replacement policy behind every \
             measurement (default lru, the paper's §5.1 buffer); the \
             ext-policy experiment sweeps all five policies regardless\n\
             --threads pins the ext-concurrency client count and the \
             ext-distributed workers-per-node (default sweep: 1/2/4/8)\n\
             --fsync restricts the ext-durability WAL sweep to one flush mode \
             (per = flush on every commit, group = leader flushes a batch; \
             default both)\n\
             --queue-depth caps the queue depths of ext-concurrency's \
             batched-I/O sweep (submission/completion engine enabled, client \
             count = queue depth; default cap 8)\n\
             --workload runs one declarative AccessPlan spec (JSON file or \
             built-in name) across the five storage models; with --threads N \
             it runs over the concurrent surface from N client threads\n\
             --sweep crosses the --workload spec with every policy × the \
             client-count list through one shared reporting path; --nodes N \
             serves every sweep cell from a routed N-node cluster\n\
             --list shows every experiment id, built-in query and shipped \
             workload spec"
        );
        return;
    }
    if args.iter().any(|a| a == "--list") {
        print_list();
        return;
    }
    let mut config = if args.iter().any(|a| a == "--fast") {
        HarnessConfig::fast()
    } else {
        HarnessConfig::default()
    };
    if let Some(i) = args.iter().position(|a| a == "--seed") {
        if let Some(seed) = args.get(i + 1).and_then(|s| s.parse().ok()) {
            config.dataset_seed = seed;
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--policy") {
        match args.get(i + 1).map(|s| s.parse()) {
            Some(Ok(policy)) => config.policy = policy,
            Some(Err(e)) => {
                eprintln!("starfish-repro: {e}");
                std::process::exit(2);
            }
            None => {
                eprintln!("starfish-repro: --policy needs a value");
                std::process::exit(2);
            }
        }
    }
    match parse_fsync(&args) {
        Ok(fsync) => config.fsync = fsync,
        Err(msg) => {
            eprintln!("starfish-repro: {msg}");
            std::process::exit(2);
        }
    }
    match parse_queue_depth(&args) {
        Ok(depth) => config.queue_depth = depth,
        Err(msg) => {
            eprintln!("starfish-repro: {msg}");
            std::process::exit(2);
        }
    }
    let threads: Option<usize> = match parse_threads(&args) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("starfish-repro: {msg}");
            std::process::exit(2);
        }
    };
    let thread_list: Vec<usize> = match threads {
        Some(n) => vec![n],
        None => experiments::ext_concurrency::THREADS.to_vec(),
    };
    let nodes: Option<usize> = match parse_nodes(&args) {
        Ok(n) => n,
        Err(msg) => {
            eprintln!("starfish-repro: {msg}");
            std::process::exit(2);
        }
    };
    let sweep = args.iter().any(|a| a == "--sweep");
    if (sweep || nodes.is_some()) && !args.iter().any(|a| a == "--workload") {
        eprintln!("starfish-repro: --sweep and --nodes require --workload <spec>");
        std::process::exit(2);
    }
    let markdown = args.iter().any(|a| a == "--markdown");
    let json = args.iter().any(|a| a == "--json");

    eprintln!(
        "starfish-repro: {} objects, {}-page buffer ({}), dataset seed {}",
        config.n_objects, config.buffer_pages, config.policy, config.dataset_seed
    );

    // --workload replaces the experiment suite with one declarative spec.
    let reports = if let Some(i) = args.iter().position(|a| a == "--workload") {
        let Some(arg) = args.get(i + 1) else {
            eprintln!("starfish-repro: --workload needs a JSON file path or a built-in name");
            std::process::exit(2);
        };
        let spec = load_workload(arg);
        if nodes.is_some() && !sweep {
            eprintln!("starfish-repro: --nodes requires --workload --sweep");
            std::process::exit(2);
        }
        let report = if sweep {
            // --sweep: policies × client counts through the shared
            // reporting path; --nodes serves every cell from a routed
            // cluster instead of the shared surface.
            experiments::ext_workload::report_for_spec_sweep(&config, &spec, &thread_list, nodes)
        } else {
            match threads {
                // An explicit client count runs the spec over the concurrent
                // surface (N threads × N shards); counters stay invariant.
                Some(n) => experiments::ext_workload::report_for_spec_concurrent(&config, &spec, n),
                None => experiments::ext_workload::report_for_spec(&config, &spec),
            }
        };
        vec![report.unwrap_or_else(die)]
    } else {
        let only: Option<Vec<String>> = args
            .iter()
            .position(|a| a == "--only")
            .and_then(|i| args.get(i + 1))
            .map(|s| s.split(',').map(|x| x.trim().to_string()).collect());
        let ids: Vec<String> = match only {
            Some(ids) => ids,
            None => experiments::REGISTRY
                .iter()
                .map(|e| e.id.to_string())
                .collect(),
        };
        // Tables 4–6/8 and ext-timing share one measured grid; run_one
        // builds it at most once across the whole id list.
        let mut grid = None;
        ids.iter()
            .map(|id| {
                experiments::run_one(id, &config, &thread_list, &mut grid).unwrap_or_else(|e| {
                    eprintln!("starfish-repro: {e}");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    for report in &reports {
        if json {
            println!("{}", report.render_json());
        } else if markdown {
            println!("{}", report.render_markdown());
        } else {
            println!("{}", report.render());
        }
    }
}

/// Resolves a `--workload` argument: a JSON file path first, then a
/// built-in spec name.
///
/// An argument that *looks* like a file path (contains a separator or ends
/// in `.json`) is treated as one even when it does not exist, so a typo'd
/// path reports the path and the OS error instead of the misleading
/// "neither a file nor a built-in" catch-all.
fn load_workload(arg: &str) -> WorkloadSpec {
    let file_like = arg.contains(std::path::MAIN_SEPARATOR)
        || arg.contains('/')
        || std::path::Path::new(arg)
            .extension()
            .is_some_and(|e| e.eq_ignore_ascii_case("json"));
    if file_like || std::path::Path::new(arg).exists() {
        let text = std::fs::read_to_string(arg).unwrap_or_else(|e| {
            eprintln!("starfish-repro: cannot read workload file '{arg}': {e}");
            std::process::exit(2);
        });
        WorkloadSpec::from_json(&text).unwrap_or_else(|e| {
            eprintln!("starfish-repro: {arg} is not a valid workload spec: {e}");
            std::process::exit(2);
        })
    } else if let Some(spec) = WorkloadSpec::builtin(arg) {
        spec
    } else {
        eprintln!(
            "starfish-repro: '{arg}' is neither a readable file nor a built-in \
             workload (run --list to see the built-ins)"
        );
        std::process::exit(2);
    }
}

/// `--list`: everything `--only` and `--workload` accept.
fn print_list() {
    println!("experiments (--only, comma-separated):");
    for e in experiments::REGISTRY {
        println!("  {:<16} {}", e.id, e.summary);
    }
    println!("\nbuilt-in queries (paper §2.2; available as --workload specs):");
    for q in starfish_cost::QueryId::all() {
        let spec = WorkloadSpec::for_query(q);
        println!("  {:<16} {}", spec.name, spec.description);
    }
    println!("\nshipped workload specs (--workload <name>, or any JSON file in the same format):");
    for spec in WorkloadSpec::shipped() {
        println!("  {:<16} {}", spec.name, spec.description);
    }
    for mix in starfish_workload::MixKind::all() {
        let spec = WorkloadSpec::mixed(mix);
        println!("  {:<16} {}", spec.name, spec.description);
    }
}

fn die<T>(err: starfish_core::CoreError) -> T {
    eprintln!("starfish-repro failed: {err}");
    std::process::exit(1);
}
