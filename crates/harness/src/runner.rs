//! Shared measurement machinery: build a dataset, load it into the stores,
//! run all queries, collect the grid that Tables 4–6 render.

use crate::Result;
use serde::Serialize;
use starfish_core::{
    make_shared_store, make_store, ComplexObjectStore, FsyncMode, ModelKind, PartitionedStore,
    Placement, PolicyKind, StoreConfig,
};
use starfish_cost::QueryId;
use starfish_nf2::station::Station;
use starfish_workload::{
    generate, DatasetParams, DatasetStats, Executor, PlanOutcome, QueryOutcome, QueryRunner,
    WorkloadSpec,
};

/// Configuration for the experiment harness.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct HarnessConfig {
    /// Objects in the default dataset (paper: 1500).
    pub n_objects: usize,
    /// Buffer capacity in pages (paper: 1200).
    pub buffer_pages: usize,
    /// Buffer-replacement policy (paper: LRU).
    pub policy: PolicyKind,
    /// Dataset seed.
    pub dataset_seed: u64,
    /// Query-sequence seed.
    pub query_seed: u64,
    /// WAL fsync mode restriction for the durability experiment: `None`
    /// sweeps both per-commit and group commit, `Some(mode)` measures only
    /// that mode (the CLI's `--fsync`). Every other experiment runs with
    /// the WAL off and ignores this.
    pub fsync: Option<FsyncMode>,
    /// Cap on the queue depths the concurrency experiment's batched-I/O
    /// sweep drives (`None` = the default cap of 8; the CLI's
    /// `--queue-depth`). Every other experiment runs with the engine off
    /// and ignores this.
    pub queue_depth: Option<usize>,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            n_objects: 1500,
            buffer_pages: 1200,
            policy: PolicyKind::Lru,
            dataset_seed: 4242,
            query_seed: 1993,
            fsync: None,
            queue_depth: None,
        }
    }
}

impl HarnessConfig {
    /// A scaled-down configuration for quick runs and tests (same buffer /
    /// database *ratio* as the paper, so cache-overflow behaviour is
    /// preserved qualitatively).
    pub fn fast() -> Self {
        HarnessConfig {
            n_objects: 300,
            buffer_pages: 240,
            ..Default::default()
        }
    }

    /// Dataset parameters at this scale.
    pub fn dataset(&self) -> DatasetParams {
        DatasetParams {
            n_objects: self.n_objects,
            seed: self.dataset_seed,
            ..Default::default()
        }
    }
}

/// Parses the `--threads` argument out of a CLI argument list.
///
/// Returns `Ok(None)` when the flag is absent (callers sweep the default
/// client counts), `Ok(Some(n))` for a valid `--threads n`, and `Err` with
/// a user-facing message for a missing, non-numeric or **zero** value —
/// zero clients cannot serve anything, and letting it through used to
/// reach `SharedBufferPool::new(_, _, 0)`'s "need at least one shard"
/// panic deep in the stack instead of a clean CLI error.
pub fn parse_threads(args: &[String]) -> std::result::Result<Option<usize>, String> {
    let Some(i) = args.iter().position(|a| a == "--threads") else {
        return Ok(None);
    };
    match args.get(i + 1).map(|s| s.parse::<usize>()) {
        Some(Ok(n)) if n >= 1 => Ok(Some(n)),
        Some(Ok(0)) => Err("--threads needs a client count >= 1 (got 0)".into()),
        Some(_) => Err(format!(
            "--threads needs a client count >= 1 (got '{}')",
            args[i + 1]
        )),
        None => Err("--threads needs a client count >= 1".into()),
    }
}

/// Parses the `--nodes` argument out of a CLI argument list.
///
/// Returns `Ok(None)` when the flag is absent (workload runs use the
/// single-store surfaces), `Ok(Some(n))` for a valid `--nodes n`, and
/// `Err` with a user-facing message for a missing, non-numeric or
/// **zero** value — a zero-node cluster can own no object.
pub fn parse_nodes(args: &[String]) -> std::result::Result<Option<usize>, String> {
    let Some(i) = args.iter().position(|a| a == "--nodes") else {
        return Ok(None);
    };
    match args.get(i + 1).map(|s| s.parse::<usize>()) {
        Some(Ok(n)) if n >= 1 => Ok(Some(n)),
        Some(Ok(0)) => Err("--nodes needs a node count >= 1 (got 0)".into()),
        Some(_) => Err(format!(
            "--nodes needs a node count >= 1 (got '{}')",
            args[i + 1]
        )),
        None => Err("--nodes needs a node count >= 1".into()),
    }
}

/// Parses the `--queue-depth` argument out of a CLI argument list.
///
/// Returns `Ok(None)` when the flag is absent (the concurrency experiment
/// sweeps up to its default depth cap), `Ok(Some(n))` for a valid
/// `--queue-depth n`, and `Err` with a user-facing message for a missing,
/// non-numeric or **zero** value — a zero-depth queue can hold no request.
pub fn parse_queue_depth(args: &[String]) -> std::result::Result<Option<usize>, String> {
    let Some(i) = args.iter().position(|a| a == "--queue-depth") else {
        return Ok(None);
    };
    match args.get(i + 1).map(|s| s.parse::<usize>()) {
        Some(Ok(n)) if n >= 1 => Ok(Some(n)),
        Some(Ok(0)) => Err("--queue-depth needs a depth >= 1 (got 0)".into()),
        Some(_) => Err(format!(
            "--queue-depth needs a depth >= 1 (got '{}')",
            args[i + 1]
        )),
        None => Err("--queue-depth needs a depth >= 1".into()),
    }
}

/// Parses the `--fsync` argument out of a CLI argument list.
///
/// Returns `Ok(None)` when the flag is absent (the durability experiment
/// sweeps both modes), `Ok(Some(mode))` for a valid `--fsync per|group`,
/// and `Err` with a user-facing message otherwise.
pub fn parse_fsync(args: &[String]) -> std::result::Result<Option<FsyncMode>, String> {
    let Some(i) = args.iter().position(|a| a == "--fsync") else {
        return Ok(None);
    };
    match args.get(i + 1) {
        Some(s) => s.parse::<FsyncMode>().map(Some),
        None => Err("--fsync needs a mode: per or group".into()),
    }
}

/// One measured cell: per-unit pages/calls/fixes, or `None` where the model
/// does not support the query.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct MeasuredCell {
    /// Pages read per unit.
    pub reads: f64,
    /// Pages written per unit.
    pub writes: f64,
    /// Pages read+written per unit (Table 4).
    pub pages: f64,
    /// I/O calls per unit (Table 5).
    pub calls: f64,
    /// Buffer fixes per unit (Table 6).
    pub fixes: f64,
}

impl MeasuredCell {
    /// The one place counter deltas become per-unit ratios — shared by the
    /// query grid, the single-query sweeps and the workload measurements.
    pub fn per_unit(snapshot: &starfish_core::IoSnapshot, units: u64) -> MeasuredCell {
        let per = |v: u64| v as f64 / units.max(1) as f64;
        MeasuredCell {
            reads: per(snapshot.pages_read),
            writes: per(snapshot.pages_written),
            pages: per(snapshot.pages_io()),
            calls: per(snapshot.io_calls()),
            fixes: per(snapshot.fixes),
        }
    }
}

/// The measured model × query grid behind Tables 4–6.
#[derive(Clone, Debug)]
pub struct MeasuredGrid {
    /// Configuration used.
    pub config: HarnessConfig,
    /// Observed dataset statistics.
    pub stats: DatasetStats,
    /// Rows: one per model, cells in [`QueryId::all`] order.
    pub rows: Vec<(ModelKind, [Option<MeasuredCell>; 7])>,
}

impl MeasuredGrid {
    /// The cell for `(model, query)`, if present.
    pub fn cell(&self, model: ModelKind, query: QueryId) -> Option<MeasuredCell> {
        let qi = QueryId::all().iter().position(|q| *q == query)?;
        self.rows
            .iter()
            .find(|(m, _)| *m == model)
            .and_then(|(_, cells)| cells[qi])
    }
}

/// Builds a store of `kind`, loads `db`, and returns it with its runner.
pub fn load_store(
    kind: ModelKind,
    db: &[Station],
    config: &HarnessConfig,
) -> Result<(Box<dyn ComplexObjectStore>, QueryRunner)> {
    let mut store = make_store(
        kind,
        StoreConfig::with_buffer_pages(config.buffer_pages).policy(config.policy),
    );
    let refs = store.load(db)?;
    let runner = QueryRunner::new(refs, config.query_seed);
    Ok((store, runner))
}

/// Runs every query of the benchmark against every model in `models` on the
/// dataset described by `params`.
pub fn measure_grid(
    params: &DatasetParams,
    config: &HarnessConfig,
    models: &[ModelKind],
) -> Result<MeasuredGrid> {
    measure_grid_on(&generate(params), config, models)
}

/// [`measure_grid`] over an already-generated dataset — use this when
/// measuring the same database under several configurations (e.g. the
/// policy sweep) to avoid regenerating it per run.
pub fn measure_grid_on(
    db: &[Station],
    config: &HarnessConfig,
    models: &[ModelKind],
) -> Result<MeasuredGrid> {
    let stats = DatasetStats::compute(db);
    let mut rows = Vec::with_capacity(models.len());
    for &kind in models {
        let (mut store, runner) = load_store(kind, db, config)?;
        let mut cells: [Option<MeasuredCell>; 7] = Default::default();
        for (i, q) in QueryId::all().into_iter().enumerate() {
            cells[i] = match runner.run(store.as_mut(), q)? {
                QueryOutcome::Measured(m) => Some(MeasuredCell::per_unit(&m.snapshot, m.units)),
                QueryOutcome::Unsupported => None,
            };
        }
        rows.push((kind, cells));
    }
    Ok(MeasuredGrid {
        config: *config,
        stats,
        rows,
    })
}

/// Runs a single query for a set of models (used by the sweeps of Figures
/// 5/6 and Table 7). Returns per-unit cells in `models` order.
pub fn measure_query(
    params: &DatasetParams,
    config: &HarnessConfig,
    models: &[ModelKind],
    query: QueryId,
) -> Result<Vec<(ModelKind, Option<MeasuredCell>)>> {
    let db = generate(params);
    let mut out = Vec::with_capacity(models.len());
    for &kind in models {
        let (mut store, runner) = load_store(kind, &db, config)?;
        let cell = match runner.run(store.as_mut(), query)? {
            QueryOutcome::Measured(m) => Some(MeasuredCell::per_unit(&m.snapshot, m.units)),
            QueryOutcome::Unsupported => None,
        };
        out.push((kind, cell));
    }
    Ok(out)
}

/// One model's measurement of a declarative workload spec: the per-unit
/// I/O cell plus the model-invariant observation counts (units, per-hop
/// navigation cardinalities, scanned objects) that every model must agree
/// on — the spec-level analogue of the paper's "shared database" guarantee.
#[derive(Clone, Debug)]
pub struct WorkloadRow {
    /// The storage model measured.
    pub model: ModelKind,
    /// Per-unit counters (`None` where the model does not support an op of
    /// the plan — e.g. OID access under pure NSM).
    pub cell: Option<MeasuredCell>,
    /// Normalization denominator the cell was divided by.
    pub units: u64,
    /// Objects seen per navigation hop, summed over units.
    pub nav_seen: Vec<u64>,
    /// Objects materialized by scans.
    pub scanned: u64,
    /// Update ops that actually ran (after mix gating).
    pub updates: u64,
}

/// Runs a declarative [`WorkloadSpec`] serially against every model in
/// `models` over an already-generated dataset, under the usual measurement
/// protocol (cold start, disconnect flush, per-unit normalization).
pub fn measure_workload_on(
    db: &[Station],
    config: &HarnessConfig,
    models: &[ModelKind],
    spec: &WorkloadSpec,
) -> Result<Vec<WorkloadRow>> {
    let mut out = Vec::with_capacity(models.len());
    for &kind in models {
        let (mut store, runner) = load_store(kind, db, config)?;
        let row = match runner.executor().run(store.as_mut(), spec)? {
            PlanOutcome::Measured(run) => WorkloadRow {
                model: kind,
                cell: Some(MeasuredCell::per_unit(&run.snapshot, run.units)),
                units: run.units,
                nav_seen: run.nav_seen,
                scanned: run.scanned,
                updates: run.updates_applied,
            },
            PlanOutcome::Unsupported => WorkloadRow {
                model: kind,
                cell: None,
                units: 0,
                nav_seen: Vec::new(),
                scanned: 0,
                updates: 0,
            },
        };
        out.push(row);
    }
    Ok(out)
}

/// [`measure_workload_on`] over the concurrent surface: every model runs
/// the plan with `threads` client threads sharing a pool of `threads`
/// lock-striped shards. Answers and fix counts are thread-count invariant
/// (the executor's contract); with 1 thread the counters reproduce the
/// serial measurement exactly. A plan shape the concurrent executor
/// rejects (a loop body consuming the previous iteration's selection)
/// surfaces as `Err`.
pub fn measure_workload_concurrent_on(
    db: &[Station],
    config: &HarnessConfig,
    models: &[ModelKind],
    spec: &WorkloadSpec,
    threads: usize,
) -> Result<Vec<WorkloadRow>> {
    let threads = threads.max(1);
    let mut out = Vec::with_capacity(models.len());
    for &kind in models {
        let mut store = make_shared_store(
            kind,
            StoreConfig::with_buffer_pages(config.buffer_pages).policy(config.policy),
            threads,
        );
        let refs = store.load(db)?;
        let runner = QueryRunner::new(refs, config.query_seed);
        let run = runner
            .executor()
            .run_concurrent(store.as_mut(), spec, threads)?;
        let row = match run.outcome {
            PlanOutcome::Measured(run) => WorkloadRow {
                model: kind,
                cell: Some(MeasuredCell::per_unit(&run.snapshot, run.units)),
                units: run.units,
                nav_seen: run.nav_seen,
                scanned: run.scanned,
                updates: run.updates_applied,
            },
            PlanOutcome::Unsupported => WorkloadRow {
                model: kind,
                cell: None,
                units: 0,
                nav_seen: Vec::new(),
                scanned: 0,
                updates: 0,
            },
        };
        out.push(row);
    }
    Ok(out)
}

/// [`measure_workload_on`] over a routed cluster: every model runs the
/// plan on a [`PartitionedStore`] of `nodes` nodes (round-robin
/// whole-object placement, a proportional buffer share per node,
/// `workers_per_node` lock-striped shards each) served by
/// `workers_per_node` reactor workers per node and `clients` client
/// threads ([`Executor::run_cluster`]). Answers, fix counts and per-node
/// disk bytes are (clients × workers)-invariant — the routed analogue of
/// the shared surface's thread-count invariance.
pub fn measure_workload_cluster_on(
    db: &[Station],
    config: &HarnessConfig,
    models: &[ModelKind],
    spec: &WorkloadSpec,
    nodes: usize,
    clients: usize,
    workers_per_node: usize,
) -> Result<Vec<WorkloadRow>> {
    let nodes = nodes.max(1);
    let per_node_buffer = (config.buffer_pages / nodes).max(16);
    let mut out = Vec::with_capacity(models.len());
    for &kind in models {
        let mut cluster = PartitionedStore::with_shards(
            kind,
            nodes,
            Placement::RoundRobin,
            StoreConfig::with_buffer_pages(per_node_buffer).policy(config.policy),
            workers_per_node.max(1),
        );
        let refs = cluster.load(db)?;
        let exec = Executor::new(refs, config.query_seed);
        let run = exec.run_cluster(&mut cluster, spec, clients, workers_per_node)?;
        let row = match run.run.outcome {
            PlanOutcome::Measured(run) => WorkloadRow {
                model: kind,
                cell: Some(MeasuredCell::per_unit(&run.snapshot, run.units)),
                units: run.units,
                nav_seen: run.nav_seen,
                scanned: run.scanned,
                updates: run.updates_applied,
            },
            PlanOutcome::Unsupported => WorkloadRow {
                model: kind,
                cell: None,
                units: 0,
                nav_seen: Vec::new(),
                scanned: 0,
                updates: 0,
            },
        };
        out.push(row);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_grid_measures_all_models() {
        let config = HarnessConfig::fast();
        let grid = measure_grid(&config.dataset(), &config, &ModelKind::measured_models()).unwrap();
        assert_eq!(grid.rows.len(), 4);
        // NSM has no q1a; everything else is measured.
        let missing: usize = grid
            .rows
            .iter()
            .flat_map(|(_, cells)| cells.iter())
            .filter(|c| c.is_none())
            .count();
        assert_eq!(missing, 1);
        // DSM must read more pages than DASDBS-NSM on navigation (2a).
        let dsm = grid.cell(ModelKind::Dsm, QueryId::Q2a).unwrap();
        let dnsm = grid.cell(ModelKind::DasdbsNsm, QueryId::Q2a).unwrap();
        assert!(dsm.pages > dnsm.pages, "{} vs {}", dsm.pages, dnsm.pages);
    }

    #[test]
    fn parse_threads_accepts_positive_counts_only() {
        let args = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_threads(&args(&["--fast"])), Ok(None));
        assert_eq!(parse_threads(&args(&["--threads", "4"])), Ok(Some(4)));
        assert_eq!(
            parse_threads(&args(&["--fast", "--threads", "1"])),
            Ok(Some(1))
        );
        // Zero clients is a clean CLI error, not a downstream panic.
        let err = parse_threads(&args(&["--threads", "0"])).unwrap_err();
        assert!(err.contains(">= 1"), "{err}");
        assert!(parse_threads(&args(&["--threads"])).is_err());
        assert!(parse_threads(&args(&["--threads", "many"])).is_err());
        assert!(parse_threads(&args(&["--threads", "-2"])).is_err());
    }

    #[test]
    fn parse_nodes_accepts_positive_counts_only() {
        let args = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_nodes(&args(&["--fast"])), Ok(None));
        assert_eq!(parse_nodes(&args(&["--nodes", "3"])), Ok(Some(3)));
        assert_eq!(parse_nodes(&args(&["--fast", "--nodes", "1"])), Ok(Some(1)));
        let err = parse_nodes(&args(&["--nodes", "0"])).unwrap_err();
        assert!(err.contains(">= 1"), "{err}");
        assert!(parse_nodes(&args(&["--nodes"])).is_err());
        assert!(parse_nodes(&args(&["--nodes", "all"])).is_err());
        assert!(parse_nodes(&args(&["--nodes", "-3"])).is_err());
    }

    #[test]
    fn parse_queue_depth_accepts_positive_depths_only() {
        let args = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_queue_depth(&args(&["--fast"])), Ok(None));
        assert_eq!(
            parse_queue_depth(&args(&["--queue-depth", "8"])),
            Ok(Some(8))
        );
        assert_eq!(
            parse_queue_depth(&args(&["--fast", "--queue-depth", "1"])),
            Ok(Some(1))
        );
        let err = parse_queue_depth(&args(&["--queue-depth", "0"])).unwrap_err();
        assert!(err.contains(">= 1"), "{err}");
        assert!(parse_queue_depth(&args(&["--queue-depth"])).is_err());
        assert!(parse_queue_depth(&args(&["--queue-depth", "deep"])).is_err());
        assert!(parse_queue_depth(&args(&["--queue-depth", "-4"])).is_err());
    }

    #[test]
    fn parse_fsync_accepts_known_modes_only() {
        let args = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_fsync(&args(&["--fast"])), Ok(None));
        assert_eq!(
            parse_fsync(&args(&["--fsync", "per"])),
            Ok(Some(FsyncMode::PerCommit))
        );
        assert_eq!(
            parse_fsync(&args(&["--fast", "--fsync", "group"])),
            Ok(Some(FsyncMode::Group))
        );
        let err = parse_fsync(&args(&["--fsync", "always"])).unwrap_err();
        assert!(err.contains("fsync mode"), "{err}");
        assert!(parse_fsync(&args(&["--fsync"])).is_err());
    }

    #[test]
    fn measure_query_single() {
        let config = HarnessConfig::fast();
        let out = measure_query(
            &config.dataset(),
            &config,
            &[ModelKind::DasdbsNsm],
            QueryId::Q2b,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].1.unwrap().pages > 0.0);
    }
}
