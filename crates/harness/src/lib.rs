//! # starfish-harness — regenerating the paper's evaluation
//!
//! One experiment module per table/figure of the ICDE 1993 paper:
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`experiments::table2`] | Table 2 — average tuple sizes, `k`, `p`, `m` |
//! | [`experiments::table3`] | Table 3 — analytical page-I/O estimates |
//! | [`experiments::table4`] | Table 4 — measured physical page I/Os |
//! | [`experiments::table5`] | Table 5 — measured I/O calls |
//! | [`experiments::table6`] | Table 6 — buffer fixes |
//! | [`experiments::fig5`] | Figure 5 — object-size sweep (max sightseeings 0/15/30) |
//! | [`experiments::fig6`] | Figure 6 — caching vs database size |
//! | [`experiments::table7`] | Table 7 — data skew |
//! | [`experiments::table8`] | Table 8 — overall qualitative ranking |
//!
//! Each module produces an [`report::ExperimentReport`] (a rendered table
//! plus notes comparing against the paper values that are recoverable from
//! our source text). The `starfish-repro` binary runs them all and emits the
//! material behind `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod paper;
pub mod report;
pub mod runner;

pub use report::{ExperimentReport, Table};
pub use runner::{HarnessConfig, MeasuredCell, MeasuredGrid};

/// Result alias (errors bubble up from the storage models).
pub type Result<T> = std::result::Result<T, starfish_core::CoreError>;
