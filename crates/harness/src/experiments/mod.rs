//! One module per table/figure of the paper's evaluation, plus extension
//! experiments (`ext_*`) that go beyond the paper: response-time estimates
//! under Equation 1, the buffer-size and replacement-policy ablations, and
//! the §5.5 shared-nothing distribution study.

pub mod ext_alignment;
pub mod ext_buffer;
pub mod ext_clustering;
pub mod ext_concurrency;
pub mod ext_distributed;
pub mod ext_policy;
pub mod ext_timing;
pub mod fig5;
pub mod fig6;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8;

use crate::report::ExperimentReport;
use crate::runner::{measure_grid, HarnessConfig};
use crate::Result;
use starfish_core::ModelKind;

/// The models measured in Tables 4–6: the paper's four plus (extra, marked)
/// NSM+index.
pub fn grid_models() -> Vec<ModelKind> {
    vec![
        ModelKind::Dsm,
        ModelKind::DasdbsDsm,
        ModelKind::Nsm,
        ModelKind::NsmIndexed,
        ModelKind::DasdbsNsm,
    ]
}

/// Runs every experiment at the given scale, in paper order.
pub fn run_all(config: &HarnessConfig) -> Result<Vec<ExperimentReport>> {
    run_all_with(config, &ext_concurrency::THREADS)
}

/// [`run_all`] with an explicit client-count list for the concurrency
/// sweep (`starfish_repro --threads N` passes `[N]`).
pub fn run_all_with(
    config: &HarnessConfig,
    concurrency_threads: &[usize],
) -> Result<Vec<ExperimentReport>> {
    let grid = measure_grid(&config.dataset(), config, &grid_models())?;
    Ok(vec![
        table2::run(config)?,
        table3::run(config),
        table4::run(&grid),
        table5::run(&grid),
        table6::run(&grid),
        fig5::run(config)?,
        fig6::run(config)?,
        table7::run(config)?,
        table8::run(&grid),
        ext_timing::run(&grid),
        ext_buffer::run(config)?,
        ext_policy::run(config)?,
        ext_concurrency::run_with(config, concurrency_threads)?,
        ext_distributed::run(config)?,
        ext_clustering::run(config)?,
        ext_alignment::run(config)?,
    ])
}
