//! One module per table/figure of the paper's evaluation, plus extension
//! experiments (`ext_*`) that go beyond the paper: response-time estimates
//! under Equation 1, the buffer-size and replacement-policy ablations, the
//! §5.5 shared-nothing distribution study, concurrent serving, and the
//! declarative-workload sweep.
//!
//! Every experiment is an entry in [`REGISTRY`] — the single table behind
//! [`run_all`], `starfish_repro --only` dispatch and `starfish_repro
//! --list`. Adding an experiment means adding a module, a registry row and
//! a [`run_one`] match arm; nothing else.

pub mod ext_alignment;
pub mod ext_buffer;
pub mod ext_clustering;
pub mod ext_concurrency;
pub mod ext_distributed;
pub mod ext_drift;
pub mod ext_durability;
pub mod ext_policy;
pub mod ext_timing;
pub mod ext_workload;
pub mod fig5;
pub mod fig6;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8;

use crate::report::ExperimentReport;
use crate::runner::{measure_grid, HarnessConfig, MeasuredGrid};
use crate::Result;
use starfish_core::{CoreError, ModelKind};

/// The models measured in Tables 4–6: the paper's four plus (extra, marked)
/// NSM+index.
pub fn grid_models() -> Vec<ModelKind> {
    vec![
        ModelKind::Dsm,
        ModelKind::DasdbsDsm,
        ModelKind::Nsm,
        ModelKind::NsmIndexed,
        ModelKind::DasdbsNsm,
    ]
}

/// One registry row: the experiment's canonical id and a one-line summary
/// for `--list`.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentInfo {
    /// Canonical id (`--only` accepts it with `-` or `_` separators).
    pub id: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// Every experiment, in paper order then extensions — the one table behind
/// [`run_all`], `--only` dispatch and `--list`.
pub const REGISTRY: &[ExperimentInfo] = &[
    ExperimentInfo {
        id: "table2",
        summary: "average tuple sizes, k, p, m per relation",
    },
    ExperimentInfo {
        id: "table3",
        summary: "analytical page-I/O estimates (Equations 2-8)",
    },
    ExperimentInfo {
        id: "table4",
        summary: "measured physical page I/Os per query x model",
    },
    ExperimentInfo {
        id: "table5",
        summary: "measured I/O calls per query x model",
    },
    ExperimentInfo {
        id: "table6",
        summary: "buffer fixes per query x model",
    },
    ExperimentInfo {
        id: "fig5",
        summary: "object-size sweep (max sightseeings 0/15/30)",
    },
    ExperimentInfo {
        id: "fig6",
        summary: "caching vs database size",
    },
    ExperimentInfo {
        id: "table7",
        summary: "data skew (probability 20%, fanout 8)",
    },
    ExperimentInfo {
        id: "table8",
        summary: "overall qualitative ranking",
    },
    ExperimentInfo {
        id: "ext-timing",
        summary: "response-time estimates under Equation 1 weights",
    },
    ExperimentInfo {
        id: "ext-buffer",
        summary: "buffer capacity x replacement policy ablation",
    },
    ExperimentInfo {
        id: "ext-policy",
        summary: "replacement-policy deltas vs the LRU baseline",
    },
    ExperimentInfo {
        id: "ext-concurrency",
        summary: "multi-client read/write serving over the sharded pool",
    },
    ExperimentInfo {
        id: "ext-distributed",
        summary: "shared-nothing distribution study (5.5) + routed cluster serving sweep",
    },
    ExperimentInfo {
        id: "ext-cluster-baseline",
        summary: "deterministic cluster serving fingerprint (BENCH_cluster.json)",
    },
    ExperimentInfo {
        id: "ext-clustering",
        summary: "reference-clustered placement ablation",
    },
    ExperimentInfo {
        id: "ext-alignment",
        summary: "tuple-alignment ablation",
    },
    ExperimentInfo {
        id: "ext-workload",
        summary: "declarative non-paper workloads (static trio + drift scenarios)",
    },
    ExperimentInfo {
        id: "ext-drift",
        summary: "drifting hot sets and phase changes vs the static baseline",
    },
    ExperimentInfo {
        id: "ext-durability",
        summary: "WAL commit durability: fsync mode x writer count",
    },
];

/// Runs one experiment by id. `threads` is the client-count list for the
/// concurrency sweep; `grid` caches the measured model × query grid shared
/// by tables 4/5/6/8 and ext-timing (pass the same `&mut None` across
/// calls to build it at most once). Ids accept `-` or `_` separators.
pub fn run_one(
    id: &str,
    config: &HarnessConfig,
    threads: &[usize],
    grid: &mut Option<MeasuredGrid>,
) -> Result<ExperimentReport> {
    fn ensure_grid<'a>(
        grid: &'a mut Option<MeasuredGrid>,
        config: &HarnessConfig,
    ) -> Result<&'a MeasuredGrid> {
        if grid.is_none() {
            *grid = Some(measure_grid(&config.dataset(), config, &grid_models())?);
        }
        Ok(grid.as_ref().expect("grid just built"))
    }
    let canonical = id.replace('_', "-");
    match canonical.as_str() {
        "table2" => table2::run(config),
        "table3" => Ok(table3::run(config)),
        "table4" => Ok(table4::run(ensure_grid(grid, config)?)),
        "table5" => Ok(table5::run(ensure_grid(grid, config)?)),
        "table6" => Ok(table6::run(ensure_grid(grid, config)?)),
        "fig5" => fig5::run(config),
        "fig6" => fig6::run(config),
        "table7" => table7::run(config),
        "table8" => Ok(table8::run(ensure_grid(grid, config)?)),
        "ext-timing" => Ok(ext_timing::run(ensure_grid(grid, config)?)),
        "ext-buffer" => ext_buffer::run(config),
        "ext-policy" => ext_policy::run(config),
        "ext-concurrency" => ext_concurrency::run_with(config, threads),
        "ext-distributed" => ext_distributed::run_with(config, threads),
        "ext-cluster-baseline" => ext_distributed::cluster_baseline(config),
        "ext-clustering" => ext_clustering::run(config),
        "ext-alignment" => ext_alignment::run(config),
        "ext-workload" => ext_workload::run(config),
        "ext-drift" => ext_drift::run(config),
        "ext-durability" => ext_durability::run_with(config, threads),
        other => Err(CoreError::NotFound {
            what: format!("experiment '{other}' (run starfish_repro --list for valid ids)"),
        }),
    }
}

/// Runs every experiment at the given scale, in [`REGISTRY`] order.
pub fn run_all(config: &HarnessConfig) -> Result<Vec<ExperimentReport>> {
    run_all_with(config, &ext_concurrency::THREADS)
}

/// [`run_all`] with an explicit client-count list for the concurrency
/// sweep (`starfish_repro --threads N` passes `[N]`).
pub fn run_all_with(
    config: &HarnessConfig,
    concurrency_threads: &[usize],
) -> Result<Vec<ExperimentReport>> {
    let mut grid = None;
    REGISTRY
        .iter()
        .map(|e| run_one(e.id, config, concurrency_threads, &mut grid))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_dispatch_knows_every_id() {
        let config = HarnessConfig::fast();
        let mut grid = None;
        // Dispatch each grid-backed experiment through the registry path;
        // the grid must be measured exactly once (cheap ids only, to keep
        // the test fast).
        for id in ["table4", "table5", "table8", "ext-timing"] {
            let report = run_one(id, &config, &[1], &mut grid).unwrap();
            assert_eq!(report.id.replace('_', "-"), id.replace('_', "-"));
        }
        assert!(grid.is_some());
        // Underscore aliases resolve to the same experiment.
        let a = run_one("ext_timing", &config, &[1], &mut grid).unwrap();
        assert_eq!(a.id, "ext-timing");
        // Unknown ids are a clean error naming --list.
        let err = run_one("table99", &config, &[1], &mut grid).unwrap_err();
        assert!(err.to_string().contains("--list"), "{err}");
    }

    #[test]
    fn registry_ids_are_unique_and_canonical() {
        for e in REGISTRY {
            assert_eq!(e.id, e.id.replace('_', "-"), "{} not canonical", e.id);
            assert!(!e.summary.is_empty());
        }
        let mut ids: Vec<&str> = REGISTRY.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), REGISTRY.len(), "duplicate registry ids");
    }
}
