//! Figure 5 — measured page I/Os while the maximum number of sightseeings
//! is 0 (white bars), 15 (grey) and 30 (black), for queries 1c, 2b and 3b.
//!
//! "The larger the sub-objects not used, the larger the advantage of
//! DASDBS-DSM over DSM" (§5.3).

use crate::report::{fmt_pages, ExperimentReport, Table};
use crate::runner::{load_store, HarnessConfig, MeasuredCell};
use crate::Result;
use starfish_core::ModelKind;
use starfish_cost::QueryId;
use starfish_workload::{generate, DatasetStats, QueryOutcome};

/// The sightseeing maxima the paper sweeps.
pub const SIGHTSEEING_MAXIMA: [u32; 3] = [0, 15, 30];

/// Models shown in Figure 5 ("pure NSM has not shown to be particularly
/// suited ... we do not consider this storage model any longer").
pub const FIG5_MODELS: [ModelKind; 3] =
    [ModelKind::Dsm, ModelKind::DasdbsDsm, ModelKind::DasdbsNsm];

/// Queries shown in Figure 5.
pub const FIG5_QUERIES: [QueryId; 3] = [QueryId::Q1c, QueryId::Q2b, QueryId::Q3b];

/// Raw sweep results: `cells[query][model][sightseeing_variant]`.
pub struct Fig5Data {
    /// Average sightseeings observed per variant.
    pub avg_sightseeings: [f64; 3],
    /// Measured cells.
    pub cells: Vec<Vec<Vec<Option<MeasuredCell>>>>,
}

/// Runs the sweep.
pub fn sweep(config: &HarnessConfig) -> Result<Fig5Data> {
    let mut avg = [0.0f64; 3];
    let mut cells =
        vec![vec![vec![None; SIGHTSEEING_MAXIMA.len()]; FIG5_MODELS.len()]; FIG5_QUERIES.len()];
    for (si, &max_s) in SIGHTSEEING_MAXIMA.iter().enumerate() {
        let params = config.dataset().with_max_sightseeing(max_s);
        let db = generate(&params);
        avg[si] = DatasetStats::compute(&db).avg_sightseeings;
        for (mi, &model) in FIG5_MODELS.iter().enumerate() {
            let (mut store, runner) = load_store(model, &db, config)?;
            for (qi, &q) in FIG5_QUERIES.iter().enumerate() {
                if let QueryOutcome::Measured(m) = runner.run(store.as_mut(), q)? {
                    cells[qi][mi][si] = Some(MeasuredCell {
                        reads: m.reads_per_unit(),
                        writes: m.writes_per_unit(),
                        pages: m.pages_per_unit(),
                        calls: m.calls_per_unit(),
                        fixes: m.fixes_per_unit(),
                    });
                }
            }
        }
    }
    Ok(Fig5Data {
        avg_sightseeings: avg,
        cells,
    })
}

/// Regenerates Figure 5 as a table (query × model rows, one column per
/// sightseeing maximum).
pub fn run(config: &HarnessConfig) -> Result<ExperimentReport> {
    let data = sweep(config)?;
    let mut table = Table::new(vec!["QUERY / MODEL", "maxSee=0", "maxSee=15", "maxSee=30"]);
    for (qi, &q) in FIG5_QUERIES.iter().enumerate() {
        for (mi, &model) in FIG5_MODELS.iter().enumerate() {
            let mut row = vec![format!("{q}  {}", model.paper_name())];
            for si in 0..SIGHTSEEING_MAXIMA.len() {
                row.push(match &data.cells[qi][mi][si] {
                    Some(c) => fmt_pages(c.pages),
                    None => "-".into(),
                });
            }
            table.push_row(row);
        }
    }

    let gap = |qi: usize, si: usize| -> f64 {
        let dsm = data.cells[qi][0][si].map(|c| c.pages).unwrap_or(f64::NAN);
        let ddsm = data.cells[qi][1][si].map(|c| c.pages).unwrap_or(f64::NAN);
        dsm - ddsm
    };
    let dnsm_2b: Vec<f64> = (0..3)
        .map(|si| data.cells[1][2][si].map(|c| c.pages).unwrap_or(f64::NAN))
        .collect();
    let notes = vec![
        format!(
            "observed sightseeings per station: {:.2} / {:.2} / {:.2} \
             (paper: 0 / 7.64 / 15.3)",
            data.avg_sightseeings[0], data.avg_sightseeings[1], data.avg_sightseeings[2]
        ),
        format!(
            "paper shape — the DSM−(DASDBS-DSM) gap on query 2b grows with unused \
             sub-object volume: {:.2} → {:.2} → {:.2} pages/loop",
            gap(1, 0),
            gap(1, 1),
            gap(1, 2)
        ),
        format!(
            "paper shape — DASDBS-NSM query 2b is independent of the sightseeing \
             size (paper: 2.05 / 2.05 / 2.05): {:.2} / {:.2} / {:.2}",
            dnsm_2b[0], dnsm_2b[1], dnsm_2b[2]
        ),
        "paper shape — with the update query 3b the advantage of DASDBS-NSM over \
         the direct models remains, and DASDBS-DSM is hurt by its page-pool \
         change-attribute updates, especially for small objects"
            .into(),
    ];

    Ok(ExperimentReport {
        id: "fig5".into(),
        title: "Page I/Os vs object size (max sightseeings 0 / 15 / 30)".into(),
        table,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shapes_match_paper() {
        let config = HarnessConfig::fast();
        let data = sweep(&config).unwrap();
        // DASDBS-NSM 2b flat across sightseeing sizes (within noise).
        let v: Vec<f64> = (0..3)
            .map(|si| data.cells[1][2][si].unwrap().pages)
            .collect();
        assert!(
            (v[0] - v[2]).abs() < 0.8,
            "DASDBS-NSM q2b should not depend on sightseeings: {v:?}"
        );
        // The DSM vs DASDBS-DSM q2b gap grows with object size.
        let gap0 = data.cells[1][0][0].unwrap().pages - data.cells[1][1][0].unwrap().pages;
        let gap2 = data.cells[1][0][2].unwrap().pages - data.cells[1][1][2].unwrap().pages;
        assert!(gap2 > gap0, "gap must grow: {gap0} -> {gap2}");
        // Bigger objects cost more pages for DSM on q1c.
        let dsm0 = data.cells[0][0][0].unwrap().pages;
        let dsm2 = data.cells[0][0][2].unwrap().pages;
        assert!(dsm2 > dsm0);
    }

    #[test]
    fn report_renders() {
        let report = run(&HarnessConfig::fast()).unwrap();
        assert_eq!(report.table.rows.len(), 9);
        assert!(report.render().contains("maxSee=30"));
    }
}
