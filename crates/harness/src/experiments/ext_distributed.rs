//! Extension experiment: whole-object placement on a shared-nothing
//! cluster — testing the paper's closing §5.5 hypothesis, then *serving*
//! that cluster concurrently.
//!
//! > "with data skew the disk I/Os are likely to be less equally
//! > distributed over the nodes if we store a single object on a single
//! > node."
//!
//! **Part 1 — the §5.5 distribution study** (the original experiment):
//! query 2b on an 8-node cluster (each node with a proportional share of
//! the buffer) under the default and skewed generators, reporting the
//! per-node page-I/O distribution: with skew, a few large objects
//! concentrate work on their owner nodes.
//!
//! **Part 2 — the scale-out serving sweep** (new with the routed
//! dispatch front-end): query 3b served through `Executor::run_cluster`
//! — every node a sharded `ConcurrentObjectStore` behind its own reactor,
//! ops routed to their owning node, updates and the disconnect flush
//! fanned out deterministically — across models × replacement policies ×
//! node counts × reactor workers per node, under 64 and 256 simulated
//! clients. Reported per cell: queries/s and the speedup over the first
//! worker count (wall-clock, hardware-dependent), the per-node
//! buffer-fix imbalance (the part-1 §5.5 metrics applied to the serving
//! cluster), the routers' submission-queue high-water mark, the batched
//! I/O engine's coalescing counters, and a `disks` verdict: per-node
//! `disk_checksum` fingerprints and fix counts compared against a
//! serially-driven oracle cluster of the same shape. Concurrency may move
//! physical reads and wall-clock — never the answers, the fix counts or
//! the bytes on any node's disk.
//!
//! **The identity anchor**: 1 node × 1 worker × 1 client over read-only
//! query 2b replays the serial cluster measurement counter for counter
//! (checked per model; the result lands in the notes).
//!
//! [`cluster_baseline`] (`--only ext-cluster-baseline`) emits the
//! deterministic subset of the sweep — units, fixes, update counts,
//! navigation footprint, per-node fixes and per-node disk fingerprints
//! across a nodes × workers grid — for byte-exact CI diffing against
//! `BENCH_cluster.json` (the `BENCH_drift.json` pattern): the diff
//! passing *is* the scheduling-independence proof on the CI machine.

use crate::report::{fmt_pages, ExperimentReport, Table};
use crate::runner::HarnessConfig;
use crate::Result;
use starfish_core::{
    ComplexObjectStore, IoEngineConfig, ModelKind, PartitionedStore, Placement, PolicyKind,
    StoreConfig,
};
use starfish_cost::QueryId;
use starfish_workload::{
    generate, DatasetParams, Executor, PlanOutcome, PlanRun, QueryOutcome, QueryRunner,
    WorkloadSpec,
};

/// Cluster size of the part-1 distribution study.
pub const NODES: usize = 8;

/// Models compared in part 1 (as in Figure 5 / Table 7).
pub const MODELS: [ModelKind; 3] = [ModelKind::Dsm, ModelKind::DasdbsDsm, ModelKind::DasdbsNsm];

/// Models the serving sweep and the baseline grid run (one direct, one
/// normalized — the two ends of the paper's layout spectrum).
pub const SWEEP_MODELS: [ModelKind; 2] = [ModelKind::Dsm, ModelKind::DasdbsNsm];

/// Node counts the serving sweep crosses with workers-per-node.
pub const SWEEP_NODES: [usize; 2] = [2, 4];

/// Simulated client loads of the serving sweep.
pub const CLIENT_LOADS: [usize; 2] = [64, 256];

/// Default workers-per-node list (`--threads N` narrows it to `[N]`).
pub const DEFAULT_WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Per-node imbalance of a load vector: max/mean (1.0 = perfectly even).
pub(crate) fn imbalance(loads: &[u64]) -> f64 {
    let total: u64 = loads.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / loads.len() as f64;
    loads.iter().copied().max().unwrap_or(0) as f64 / mean
}

/// Coefficient of variation (σ/μ) of a load vector.
pub(crate) fn cv(loads: &[u64]) -> f64 {
    let n = loads.len() as f64;
    let mean = loads.iter().sum::<u64>() as f64 / n;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = loads
        .iter()
        .map(|&l| (l as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

/// Builds a serving cluster: `nodes` nodes, each a shared store with
/// `shards_per_node` lock-striped shards, a proportional buffer share and
/// the batched I/O engine enabled (so the sweep's coalescing columns are
/// live).
fn cluster_store(
    kind: ModelKind,
    nodes: usize,
    policy: PolicyKind,
    config: &HarnessConfig,
    shards_per_node: usize,
) -> PartitionedStore {
    let per_node_buffer = (config.buffer_pages / nodes).max(16);
    PartitionedStore::with_shards(
        kind,
        nodes,
        Placement::RoundRobin,
        StoreConfig::with_buffer_pages(per_node_buffer)
            .policy(policy)
            .io_engine(IoEngineConfig::enabled()),
        shards_per_node,
    )
}

/// What a serving cell must reproduce: the serially-driven cluster's
/// measurement, per-node fix counts and per-node disk fingerprints.
struct Oracle {
    run: PlanRun,
    fixes: Vec<u64>,
    disks: Vec<u64>,
}

/// Drives the same cluster shape serially (one client, no router) — the
/// determinism oracle for every (clients × workers) cell of that shape.
fn serial_oracle(
    kind: ModelKind,
    nodes: usize,
    policy: PolicyKind,
    config: &HarnessConfig,
    db: &[starfish_nf2::station::Station],
    spec: &WorkloadSpec,
) -> Result<Oracle> {
    let mut cluster = cluster_store(kind, nodes, policy, config, 1);
    let refs = cluster.load(db)?;
    let exec = Executor::new(refs, config.query_seed);
    let run = match exec.run(&mut cluster, spec)? {
        PlanOutcome::Measured(run) => run,
        PlanOutcome::Unsupported => unreachable!("sweep spec supported on swept models"),
    };
    let fixes = cluster.node_snapshots().iter().map(|s| s.fixes).collect();
    Ok(Oracle {
        run,
        fixes,
        disks: cluster.node_checksums(),
    })
}

/// Runs query 2b serially on the part-1 cluster and returns (pages/loop,
/// per-node pages).
fn run_clustered(
    kind: ModelKind,
    params: &DatasetParams,
    config: &HarnessConfig,
) -> Result<(f64, Vec<u64>)> {
    let db = generate(params);
    let per_node_buffer = (config.buffer_pages / NODES).max(16);
    let mut store = PartitionedStore::new(
        kind,
        NODES,
        Placement::RoundRobin,
        StoreConfig::with_buffer_pages(per_node_buffer),
    );
    let refs = store.load(&db)?;
    let runner = QueryRunner::new(refs, config.query_seed);
    let QueryOutcome::Measured(m) = runner.run(&mut store, QueryId::Q2b)? else {
        unreachable!("query 2b is supported everywhere");
    };
    let per_node: Vec<u64> = store
        .node_snapshots()
        .iter()
        .map(|s| s.pages_read + s.pages_written)
        .collect();
    Ok((m.pages_per_unit(), per_node))
}

/// Replacement policies the serving sweep crosses with the cluster
/// shapes: LRU (the paper's buffer), LRU-2 (the scan-resistant contrast)
/// and — when `--policy` selected something else — that one too.
fn sweep_policies(config: &HarnessConfig) -> Vec<PolicyKind> {
    let mut policies = vec![PolicyKind::Lru, PolicyKind::Lru2];
    if !policies.contains(&config.policy) {
        policies.push(config.policy);
    }
    policies
}

/// Runs parts 1 + 2 with the default workers-per-node list.
pub fn run(config: &HarnessConfig) -> Result<ExperimentReport> {
    run_with(config, &DEFAULT_WORKERS)
}

/// Runs the distribution study and the serving sweep; `threads` is the
/// workers-per-node list (`starfish_repro --threads N` passes `[N]`).
pub fn run_with(config: &HarnessConfig, threads: &[usize]) -> Result<ExperimentReport> {
    let mut table = Table::new(vec![
        "MODEL",
        "POLICY",
        "PART",
        "NODES",
        "wrk/node",
        "CLIENTS",
        "units",
        "pages/u",
        "queries/s",
        "speedup",
        "node max/mean",
        "node cv",
        "queue hw",
        "batch/coalesced",
        "disks",
    ]);

    // ---- Part 1: the §5.5 skew study (serial, 8 nodes) ------------------
    let default_params = config.dataset();
    let skew_params = DatasetParams {
        n_objects: config.n_objects,
        seed: config.dataset_seed,
        ..DatasetParams::skewed()
    };
    let mut imbalances = Vec::new();
    for &kind in &MODELS {
        for (label, params) in [("5.5 default", &default_params), ("5.5 skew", &skew_params)] {
            let (pages, per_node) = run_clustered(kind, params, config)?;
            let imb = imbalance(&per_node);
            table.push_row(vec![
                kind.paper_name().to_string(),
                PolicyKind::Lru.name().to_string(),
                label.to_string(),
                NODES.to_string(),
                "-".to_string(),
                "1".to_string(),
                "-".to_string(),
                fmt_pages(pages),
                "-".to_string(),
                "-".to_string(),
                format!("{imb:.2}"),
                format!("{:.3}", cv(&per_node)),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
            imbalances.push((kind, label, imb, cv(&per_node)));
        }
    }

    // ---- Part 2: the routed serving sweep -------------------------------
    let db = generate(&default_params);
    let spec = WorkloadSpec::for_query(QueryId::Q3b);
    let policies = sweep_policies(config);
    let mut disks_diverged: Vec<String> = Vec::new();
    let mut best_speedup: Option<(ModelKind, usize, usize, f64)> = None;
    for &kind in &SWEEP_MODELS {
        for &policy in &policies {
            for &nodes in &SWEEP_NODES {
                let oracle = serial_oracle(kind, nodes, policy, config, &db, &spec)?;
                for &clients in &CLIENT_LOADS {
                    let mut base_qps: Option<f64> = None;
                    for &workers in threads {
                        let workers = workers.max(1);
                        let mut store = cluster_store(kind, nodes, policy, config, workers);
                        let refs = store.load(&db)?;
                        let exec = Executor::new(refs, config.query_seed);
                        let got = exec.run_cluster(&mut store, &spec, clients, workers)?;
                        let run = match &got.run.outcome {
                            PlanOutcome::Measured(run) => run.clone(),
                            PlanOutcome::Unsupported => {
                                unreachable!("sweep spec supported on swept models")
                            }
                        };
                        let node_fixes: Vec<u64> =
                            store.node_snapshots().iter().map(|s| s.fixes).collect();
                        let disks_ok = store.node_checksums() == oracle.disks
                            && node_fixes == oracle.fixes
                            && run.units == oracle.run.units
                            && run.snapshot.fixes == oracle.run.snapshot.fixes
                            && run.nav_seen == oracle.run.nav_seen
                            && run.updates_applied == oracle.run.updates_applied;
                        if !disks_ok {
                            disks_diverged
                                .push(format!("{kind}/{policy}/{nodes}n/{workers}w/{clients}c"));
                        }
                        let qps = got.units_per_sec();
                        let speedup = match base_qps {
                            None => {
                                base_qps = Some(qps);
                                1.0
                            }
                            Some(base) if base > 0.0 => qps / base,
                            Some(_) => 0.0,
                        };
                        if workers >= 4 && best_speedup.is_none_or(|(.., s)| speedup > s) {
                            best_speedup = Some((kind, nodes, workers, speedup));
                        }
                        let hw = got.queue_high_water.iter().copied().max().unwrap_or(0);
                        table.push_row(vec![
                            kind.paper_name().to_string(),
                            policy.name().to_string(),
                            "serve 3b".to_string(),
                            nodes.to_string(),
                            workers.to_string(),
                            clients.to_string(),
                            run.units.to_string(),
                            fmt_pages(run.snapshot.pages_io() as f64 / run.units.max(1) as f64),
                            fmt_pages(qps),
                            format!("{speedup:.2}x"),
                            format!("{:.2}", imbalance(&node_fixes)),
                            format!("{:.3}", cv(&node_fixes)),
                            hw.to_string(),
                            format!(
                                "{}/{}",
                                run.snapshot.batched_read_calls, run.snapshot.coalesced_pages
                            ),
                            if disks_ok { "ok" } else { "DIVERGED" }.to_string(),
                        ]);
                    }
                }
            }
        }
    }

    // ---- The identity anchor: 1 node × 1 worker × 1 client --------------
    let spec_2b = WorkloadSpec::for_query(QueryId::Q2b);
    let mut anchor_bad: Vec<String> = Vec::new();
    for &kind in &SWEEP_MODELS {
        let mut serial = cluster_store(kind, 1, PolicyKind::Lru, config, 1);
        let refs = serial.load(&db)?;
        let exec = Executor::new(refs, config.query_seed);
        let want = match exec.run(&mut serial, &spec_2b)? {
            PlanOutcome::Measured(run) => run,
            PlanOutcome::Unsupported => unreachable!("2b supported"),
        };
        let mut routed = cluster_store(kind, 1, PolicyKind::Lru, config, 1);
        let refs = routed.load(&db)?;
        let exec = Executor::new(refs, config.query_seed);
        let got = exec.run_cluster(&mut routed, &spec_2b, 1, 1)?;
        let identical = matches!(&got.run.outcome, PlanOutcome::Measured(run) if *run == want)
            && routed.node_checksums() == serial.node_checksums();
        if !identical {
            anchor_bad.push(kind.to_string());
        }
    }

    let mut notes = vec![format!(
        "part 1 (5.5 rows): {NODES}-node cluster, whole-object round-robin \
         placement, per-node buffer = {}/{} pages, serial query 2b; loads \
         are per-node pages read+written over the whole run",
        config.buffer_pages, NODES
    )];
    for &kind in &MODELS {
        let d = imbalances
            .iter()
            .find(|(k, l, ..)| *k == kind && *l == "5.5 default");
        let s = imbalances
            .iter()
            .find(|(k, l, ..)| *k == kind && *l == "5.5 skew");
        if let (Some((.., d_imb, d_cv)), Some((.., s_imb, s_cv))) = (d, s) {
            notes.push(format!(
                "{}: node-load cv {:.3} (default) → {:.3} (skew), max/mean {:.2} → {:.2}{}",
                kind.paper_name(),
                d_cv,
                s_cv,
                d_imb,
                s_imb,
                if s_cv > d_cv {
                    " — skew concentrates the I/O, as §5.5 predicted"
                } else {
                    ""
                }
            ));
        }
    }
    notes.push(format!(
        "serve-3b rows: query 3b dealt by {CLIENT_LOADS:?} client threads \
         through the routed dispatch front-end — each node a sharded \
         ConcurrentObjectStore behind its own reactor with (wrk/node) \
         worker threads, ops routed to the owning node, updates and the \
         disconnect flush fanned out in ascending node order; swept \
         policies {:?} × nodes {SWEEP_NODES:?} × workers {threads:?}",
        policies.iter().map(|p| p.name()).collect::<Vec<_>>()
    ));
    notes.push(
        "disks column: per-node disk_checksum fingerprints, per-node fix \
         counts and the measurement's units/fixes/nav/update counts \
         compared against a serially-driven oracle cluster of the same \
         shape — 'ok' means concurrent serving moved nothing but timing"
            .to_string(),
    );
    notes.push(
        "queries/s and speedup (vs the first wrk/node cell of the same \
         shape) are wall-clock and hardware-dependent — on a single core \
         expect ≈1.0x, where the sweep measures routing overhead instead; \
         queue hw is the per-node submission-queue high-water mark (max \
         over nodes), batch/coalesced the I/O engine's multi-page reads"
            .to_string(),
    );
    notes.push(match best_speedup {
        Some((kind, nodes, workers, s)) => format!(
            "best serving throughput at >= 4 workers/node: {s:.2}x over the \
             first worker count ({kind}, {nodes} nodes, {workers} \
             workers/node) — wall-clock, hardware-dependent"
        ),
        None => "no >= 4 workers/node cell in this sweep (run with \
                 --threads 4 or the default list to measure scale-out)"
            .to_string(),
    });
    notes.push(if anchor_bad.is_empty() {
        "identity anchor held: 1 node × 1 worker × 1 client replays the \
         serial cluster's read-only 2b measurement counter for counter, \
         disks byte-identical"
            .to_string()
    } else {
        format!(
            "WARNING: 1×1×1 diverged from the serial measurement at {} — \
             the routing layer is not behaviour-preserving",
            anchor_bad.join(", ")
        )
    });
    notes.push(if disks_diverged.is_empty() {
        "every serving cell matched its serial oracle: answers, fix \
         partitions and per-node disks are (clients × workers)-invariant"
            .to_string()
    } else {
        format!(
            "WARNING: serving cells diverged from the serial oracle at {} — \
             scheduling leaked into the answers or the disks",
            disks_diverged.join(", ")
        )
    });
    notes.push(
        "total pages/loop of part 1 match the single-node Table 7 values — \
         partitioning redistributes the same I/Os, it does not change \
         their count"
            .into(),
    );

    Ok(ExperimentReport {
        id: "ext-distributed".into(),
        title: "Extension — shared-nothing cluster: §5.5 I/O distribution and routed \
                concurrent serving"
            .into(),
        table,
        notes,
    })
}

/// Baseline grid clients (fixed: the baseline pins determinism, not load).
const BASELINE_CLIENTS: usize = 8;

/// Node counts of the baseline grid.
const BASELINE_NODES: [usize; 2] = [1, 3];
/// Workers-per-node of the baseline grid.
const BASELINE_WORKERS: [usize; 2] = [1, 4];

/// The deterministic cluster fingerprint behind `BENCH_cluster.json`:
/// query 3b served at [`BASELINE_CLIENTS`] clients across a nodes ×
/// workers grid, emitting only scheduling-independent columns — units,
/// total fixes, update count, navigation footprint, per-node fixes and
/// per-node disk checksums. Rows of the same (model, nodes) must be
/// identical across worker counts; CI diffs the JSON byte-for-byte.
pub fn cluster_baseline(config: &HarnessConfig) -> Result<ExperimentReport> {
    let db = generate(&config.dataset());
    let spec = WorkloadSpec::for_query(QueryId::Q3b);
    let mut table = Table::new(vec![
        "MODEL",
        "NODES",
        "wrk/node",
        "CLIENTS",
        "units",
        "fixes",
        "updates",
        "nav",
        "node fixes",
        "node disks",
    ]);
    for &kind in &SWEEP_MODELS {
        for &nodes in &BASELINE_NODES {
            for &workers in &BASELINE_WORKERS {
                let mut store = cluster_store(kind, nodes, config.policy, config, workers);
                let refs = store.load(&db)?;
                let exec = Executor::new(refs, config.query_seed);
                let got = exec.run_cluster(&mut store, &spec, BASELINE_CLIENTS, workers)?;
                let run = match &got.run.outcome {
                    PlanOutcome::Measured(run) => run.clone(),
                    PlanOutcome::Unsupported => unreachable!("3b supported on baseline models"),
                };
                let join = |v: &[u64]| {
                    v.iter()
                        .map(|x| x.to_string())
                        .collect::<Vec<_>>()
                        .join("/")
                };
                let disks = store
                    .node_checksums()
                    .iter()
                    .map(|c| format!("{c:016x}"))
                    .collect::<Vec<_>>()
                    .join("/");
                let node_fixes: Vec<u64> = store.node_snapshots().iter().map(|s| s.fixes).collect();
                table.push_row(vec![
                    kind.paper_name().to_string(),
                    nodes.to_string(),
                    workers.to_string(),
                    BASELINE_CLIENTS.to_string(),
                    run.units.to_string(),
                    run.snapshot.fixes.to_string(),
                    run.updates_applied.to_string(),
                    join(&run.nav_seen),
                    join(&node_fixes),
                    disks,
                ]);
            }
        }
    }
    Ok(ExperimentReport {
        id: "ext-cluster-baseline".into(),
        title: "Extension — deterministic cluster serving fingerprint (BENCH_cluster.json)".into(),
        table,
        notes: vec![
            format!(
                "query 3b served at {BASELINE_CLIENTS} clients through the routed \
                 front-end, nodes {BASELINE_NODES:?} × workers/node \
                 {BASELINE_WORKERS:?}; every column is scheduling-independent \
                 (answers, fixes, per-node fix partitions, post-flush disk \
                 fingerprints) — wall-clock is deliberately absent"
            ),
            "rows of the same (MODEL, NODES) must be identical across worker \
             counts; a CI diff against the checked-in BENCH_cluster.json \
             failing means scheduling leaked into the answers or the disks"
                .to_string(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_metrics() {
        assert!((imbalance(&[10, 10, 10, 10]) - 1.0).abs() < 1e-12);
        assert!((imbalance(&[40, 0, 0, 0]) - 4.0).abs() < 1e-12);
        assert_eq!(cv(&[5, 5, 5, 5]), 0.0);
        assert!(cv(&[10, 0, 10, 0]) > 0.9);
        assert_eq!(imbalance(&[0, 0]), 1.0);
    }

    #[test]
    fn cluster_totals_match_single_node_counts() {
        let config = HarnessConfig::fast();
        let (pages, per_node) =
            run_clustered(ModelKind::DasdbsNsm, &config.dataset(), &config).unwrap();
        assert!(pages > 0.0);
        assert_eq!(per_node.len(), NODES);
        assert!(per_node.iter().filter(|&&l| l > 0).count() >= NODES / 2);
    }

    #[test]
    fn report_covers_skew_study_and_serving_sweep() {
        let config = HarnessConfig::fast();
        let report = run_with(&config, &[2]).unwrap();
        let part1 = MODELS.len() * 2;
        let part2 = SWEEP_MODELS.len()
            * sweep_policies(&config).len()
            * SWEEP_NODES.len()
            * CLIENT_LOADS.len();
        assert_eq!(report.table.rows.len(), part1 + part2);
        assert!(report.render().contains("5.5 skew"));
        // Every serving cell matched its serial oracle and the 1×1×1
        // anchor held — no WARNING notes.
        assert!(
            !report.notes.iter().any(|n| n.contains("WARNING")),
            "determinism failed: {:?}",
            report.notes
        );
        for row in report.table.rows.iter().filter(|r| r[2] == "serve 3b") {
            assert_eq!(row[14], "ok", "disks diverged: {row:?}");
            assert!(CLIENT_LOADS.map(|c| c.to_string()).contains(&row[5]));
        }
    }

    #[test]
    fn baseline_grid_is_worker_count_invariant() {
        let report = cluster_baseline(&HarnessConfig::fast()).unwrap();
        let rows = &report.table.rows;
        assert_eq!(
            rows.len(),
            SWEEP_MODELS.len() * BASELINE_NODES.len() * BASELINE_WORKERS.len()
        );
        // The deterministic columns (everything from `units` on) must be
        // identical across worker counts of the same (model, nodes) —
        // the property the CI diff pins.
        for pair in rows.chunks(BASELINE_WORKERS.len()) {
            assert_eq!(pair[0][0], pair[1][0]);
            assert_eq!(pair[0][1], pair[1][1]);
            assert_eq!(pair[0][4..], pair[1][4..], "worker count leaked: {pair:?}");
        }
    }
}
