//! Extension experiment: whole-object placement on a shared-nothing
//! cluster — testing the paper's closing §5.5 hypothesis:
//!
//! > "with data skew the disk I/Os are likely to be less equally
//! > distributed over the nodes if we store a single object on a single
//! > node."
//!
//! We run query 2b on an 8-node cluster (each node with a proportional
//! share of the buffer) under the default and skewed generators and report
//! the per-node page-I/O distribution: with skew, a few large objects
//! concentrate work on their owner nodes.

use crate::report::{fmt_pages, ExperimentReport, Table};
use crate::runner::HarnessConfig;
use crate::Result;
use starfish_core::{ComplexObjectStore, ModelKind, PartitionedStore, Placement, StoreConfig};
use starfish_cost::QueryId;
use starfish_workload::{generate, DatasetParams, QueryOutcome, QueryRunner};

/// Cluster size.
pub const NODES: usize = 8;

/// Models compared (as in Figure 5 / Table 7).
pub const MODELS: [ModelKind; 3] = [ModelKind::Dsm, ModelKind::DasdbsDsm, ModelKind::DasdbsNsm];

/// Per-node imbalance of a load vector: max/mean (1.0 = perfectly even).
pub(crate) fn imbalance(loads: &[u64]) -> f64 {
    let total: u64 = loads.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / loads.len() as f64;
    loads.iter().copied().max().unwrap_or(0) as f64 / mean
}

/// Coefficient of variation (σ/μ) of a load vector.
pub(crate) fn cv(loads: &[u64]) -> f64 {
    let n = loads.len() as f64;
    let mean = loads.iter().sum::<u64>() as f64 / n;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = loads
        .iter()
        .map(|&l| (l as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

/// Runs query 2b on the cluster and returns (pages/loop, per-node pages).
fn run_clustered(
    kind: ModelKind,
    params: &DatasetParams,
    config: &HarnessConfig,
) -> Result<(f64, Vec<u64>)> {
    let db = generate(params);
    let per_node_buffer = (config.buffer_pages / NODES).max(16);
    let mut store = PartitionedStore::new(
        kind,
        NODES,
        Placement::RoundRobin,
        StoreConfig::with_buffer_pages(per_node_buffer),
    );
    let refs = store.load(&db)?;
    let runner = QueryRunner::new(refs, config.query_seed);
    let QueryOutcome::Measured(m) = runner.run(&mut store, QueryId::Q2b)? else {
        unreachable!("query 2b is supported everywhere");
    };
    let per_node: Vec<u64> = store
        .node_snapshots()
        .iter()
        .map(|s| s.pages_read + s.pages_written)
        .collect();
    Ok((m.pages_per_unit(), per_node))
}

/// Builds the distribution table.
pub fn run(config: &HarnessConfig) -> Result<ExperimentReport> {
    let default_params = config.dataset();
    let skew_params = DatasetParams {
        n_objects: config.n_objects,
        seed: config.dataset_seed,
        ..DatasetParams::skewed()
    };

    let mut table = Table::new(vec![
        "MODEL",
        "dataset",
        "2b pages/loop",
        "node max/mean",
        "node cv",
    ]);
    let mut imbalances = Vec::new();
    for &kind in &MODELS {
        for (label, params) in [("default", &default_params), ("skew", &skew_params)] {
            let (pages, per_node) = run_clustered(kind, params, config)?;
            let imb = imbalance(&per_node);
            table.push_row(vec![
                kind.paper_name().to_string(),
                label.to_string(),
                fmt_pages(pages),
                format!("{imb:.2}"),
                format!("{:.3}", cv(&per_node)),
            ]);
            imbalances.push((kind, label, imb, cv(&per_node)));
        }
    }

    let mut notes = vec![format!(
        "{NODES}-node shared-nothing cluster, whole-object round-robin placement, \
         per-node buffer = {}/{} pages; loads are per-node pages read+written \
         over the whole query-2b run",
        config.buffer_pages, NODES
    )];
    for &kind in &MODELS {
        let d = imbalances
            .iter()
            .find(|(k, l, ..)| *k == kind && *l == "default");
        let s = imbalances
            .iter()
            .find(|(k, l, ..)| *k == kind && *l == "skew");
        if let (Some((.., d_imb, d_cv)), Some((.., s_imb, s_cv))) = (d, s) {
            notes.push(format!(
                "{}: node-load cv {:.3} (default) → {:.3} (skew), max/mean {:.2} → {:.2}{}",
                kind.paper_name(),
                d_cv,
                s_cv,
                d_imb,
                s_imb,
                if s_cv > d_cv {
                    " — skew concentrates the I/O, as §5.5 predicted"
                } else {
                    ""
                }
            ));
        }
    }
    notes.push(
        "total pages/loop match the single-node Table 7 values — partitioning \
         redistributes the same I/Os, it does not change their count"
            .into(),
    );

    Ok(ExperimentReport {
        id: "ext-distributed".into(),
        title: "Extension — per-node I/O distribution on a shared-nothing cluster (§5.5)".into(),
        table,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_metrics() {
        assert!((imbalance(&[10, 10, 10, 10]) - 1.0).abs() < 1e-12);
        assert!((imbalance(&[40, 0, 0, 0]) - 4.0).abs() < 1e-12);
        assert_eq!(cv(&[5, 5, 5, 5]), 0.0);
        assert!(cv(&[10, 0, 10, 0]) > 0.9);
        assert_eq!(imbalance(&[0, 0]), 1.0);
    }

    #[test]
    fn cluster_totals_match_single_node_counts() {
        let config = HarnessConfig::fast();
        let (pages, per_node) =
            run_clustered(ModelKind::DasdbsNsm, &config.dataset(), &config).unwrap();
        assert!(pages > 0.0);
        assert_eq!(per_node.len(), NODES);
        assert!(per_node.iter().filter(|&&l| l > 0).count() >= NODES / 2);
    }

    #[test]
    fn report_renders_with_both_datasets() {
        let report = run(&HarnessConfig::fast()).unwrap();
        assert_eq!(report.table.rows.len(), MODELS.len() * 2);
        assert!(report.render().contains("skew"));
    }
}
