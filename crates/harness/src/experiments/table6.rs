//! Table 6 — buffer fixes (the paper's CPU-load indicator).

use crate::paper::{compare, TABLE6_ANCHORS};
use crate::report::{fmt_pages, ExperimentReport, Table};
use crate::runner::MeasuredGrid;
use starfish_core::ModelKind;
use starfish_cost::QueryId;

/// Renders Table 6 (page fixes in buffer per object / per loop).
pub fn run(grid: &MeasuredGrid) -> ExperimentReport {
    let mut table = Table::new(vec!["MODEL", "1a", "1b", "1c", "2a", "2b", "3a", "3b"]);
    for (model, cells) in &grid.rows {
        let mut row = vec![super::table4::label(*model)];
        for c in cells {
            row.push(match c {
                Some(c) => fmt_pages(c.fixes),
                None => "-".into(),
            });
        }
        table.push_row(row);
    }

    let mut notes = vec![
        "every page access through the buffer counts one fix, hit or miss — the \
         paper uses this as the CPU-load indicator (§5.2)"
            .into(),
    ];
    if let (Some(nsm), Some(dnsm)) = (
        grid.cell(ModelKind::Nsm, QueryId::Q2b),
        grid.cell(ModelKind::DasdbsNsm, QueryId::Q2b),
    ) {
        let loops = (grid.config.n_objects / 5).max(1) as f64;
        notes.push(format!(
            "NSM query 2b touches {:.0} fixes/loop (its per-loop relation re-scans) \
             vs {:.1} for DASDBS-NSM — ×{:.0}; over the whole run NSM burns ≈{:.0} \
             fixes (paper: \"more than 370,000 page fixes\", ≈2.5 h on the Sun 3/60)",
            nsm.fixes,
            dnsm.fixes,
            nsm.fixes / dnsm.fixes.max(1e-9),
            nsm.fixes * loops,
        ));
    }
    if grid.config.n_objects == 1500 {
        for anchor in TABLE6_ANCHORS {
            if let Some(ours) = lookup(grid, anchor.what) {
                notes.push(compare(anchor, ours));
            }
        }
    }

    ExperimentReport {
        id: "table6".into(),
        title: "Measured buffer fixes".into(),
        table,
        notes,
    }
}

fn lookup(grid: &MeasuredGrid, what: &str) -> Option<f64> {
    let model = ModelKind::all()
        .into_iter()
        .filter(|m| {
            what.starts_with(m.paper_name())
                && what.as_bytes().get(m.paper_name().len()) == Some(&b' ')
        })
        .max_by_key(|m| m.paper_name().len())?;
    let q = QueryId::all()
        .into_iter()
        .find(|q| what.contains(&format!("q{q} ")))?;
    grid.cell(model, q).map(|c| c.fixes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::grid_models;
    use crate::runner::{measure_grid, HarnessConfig};

    #[test]
    fn nsm_burns_the_most_fixes_on_navigation() {
        let config = HarnessConfig::fast();
        let grid = measure_grid(&config.dataset(), &config, &grid_models()).unwrap();
        let report = run(&grid);
        assert_eq!(report.table.rows.len(), 5);
        let nsm = grid.cell(ModelKind::Nsm, QueryId::Q2b).unwrap().fixes;
        for m in [ModelKind::Dsm, ModelKind::DasdbsDsm, ModelKind::DasdbsNsm] {
            let other = grid.cell(m, QueryId::Q2b).unwrap().fixes;
            assert!(
                nsm > other,
                "NSM ({nsm}) must exceed {m} ({other}) on fixes"
            );
        }
        // The ×50+ blowup vs DASDBS-NSM in the paper scales with relation
        // size; at this reduced scale it is still an order of magnitude.
        let dnsm = grid.cell(ModelKind::DasdbsNsm, QueryId::Q2b).unwrap().fixes;
        assert!(
            nsm > 8.0 * dnsm,
            "NSM ({nsm}) must dwarf DASDBS-NSM ({dnsm})"
        );
        // Fixes ≥ misses ≥ 0 and fixes ≥ pages read per unit.
        for (_, cells) in &grid.rows {
            for c in cells.iter().flatten() {
                assert!(c.fixes + 1e-9 >= c.reads, "every miss is a fix");
            }
        }
    }
}
