//! Extension experiment: buffer-replacement-policy sweep.
//!
//! Every number in the paper flows through one 1200-page **LRU** buffer
//! (§5.1–§5.2); the policy is an evaluation axis the paper never varied.
//! This experiment reruns queries 1a–3b under every shipped policy × every
//! model and reports page *reads* per unit with the delta against the
//! paper's LRU baseline. Writes are deferred identically under every policy
//! (write-back on eviction or disconnect), so reads are where policies
//! separate; fix counts are access counts and must be *identical* across
//! policies — the experiment verifies that invariant and says so in its
//! notes.

use crate::report::{fmt_pages, ExperimentReport, Table};
use crate::runner::{measure_grid_on, HarnessConfig, MeasuredGrid};
use crate::Result;
use starfish_core::PolicyKind;
use starfish_cost::QueryId;
use starfish_workload::generate;

/// Runs the sweep: one measured grid per policy (over one shared dataset),
/// rendered as model × policy rows with per-query read columns.
pub fn run(config: &HarnessConfig) -> Result<ExperimentReport> {
    let db = generate(&config.dataset());
    let mut grids: Vec<(PolicyKind, MeasuredGrid)> = Vec::new();
    for policy in PolicyKind::all() {
        let cfg = HarnessConfig { policy, ..*config };
        grids.push((policy, measure_grid_on(&db, &cfg, &super::grid_models())?));
    }
    let (_, baseline) = &grids[0];
    debug_assert_eq!(grids[0].0, PolicyKind::Lru, "LRU is the baseline");

    let mut headers = vec!["MODEL".to_string(), "POLICY".to_string()];
    headers.extend(QueryId::all().iter().map(|q| format!("{q} reads")));
    let mut table = Table::new(headers);

    let mut fixes_diverged: Vec<String> = Vec::new();
    for (kind, _) in &baseline.rows {
        for (policy, grid) in &grids {
            let mut row = vec![kind.paper_name().to_string(), policy.name().to_string()];
            for q in QueryId::all() {
                let cell = grid.cell(*kind, q);
                let base = baseline.cell(*kind, q);
                row.push(match (cell, base) {
                    (Some(c), Some(b)) if *policy != PolicyKind::Lru => {
                        if c.fixes != b.fixes {
                            fixes_diverged.push(format!("{kind}/{q}/{policy}"));
                        }
                        let delta = if b.reads > 0.0 {
                            100.0 * (c.reads - b.reads) / b.reads
                        } else {
                            0.0
                        };
                        format!("{} ({:+.1}%)", fmt_pages(c.reads), delta)
                    }
                    (Some(c), _) => fmt_pages(c.reads),
                    (None, _) => "-".to_string(),
                });
            }
            table.push_row(row);
        }
    }

    let mut notes = vec![
        format!(
            "{} objects, {}-page buffer; every cell reruns the full protocol \
             (cold start, query, disconnect flush) under that policy",
            config.n_objects, config.buffer_pages
        ),
        "deltas are page reads per unit vs. the paper's LRU baseline; \
         negative = the policy reads fewer pages than LRU did"
            .to_string(),
    ];
    notes.push(if fixes_diverged.is_empty() {
        "fix counts verified identical across all policies for every \
         (model, query) — policies change physical I/O only, never the \
         access pattern"
            .to_string()
    } else {
        format!(
            "WARNING: fix counts diverged across policies at {} — a buffer \
             bug, since fixes count accesses, not I/O",
            fixes_diverged.join(", ")
        )
    });
    notes.push(
        "reading the table: LRU and CLOCK track each other (second chance \
         approximates recency) and FIFO trails them slightly; MRU pins the \
         coldest frames forever, which can pay off for a pure cyclic scan \
         just over the buffer size but loses heavily on the skewed reuse of \
         the navigation loops (2b/3b under the direct models); LRU-2 \
         refuses to keep single-touch pages, which costs it on sequential \
         re-scans (1c) whose pages are exactly single-touch per pass"
            .to_string(),
    );

    Ok(ExperimentReport {
        id: "ext-policy".into(),
        title: "Extension — replacement-policy sweep (queries 1a–3b, every model)".into(),
        table,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use starfish_core::ModelKind;

    #[test]
    fn policy_sweep_covers_every_model_policy_pair() {
        let report = run(&HarnessConfig::fast()).unwrap();
        let models = super::super::grid_models().len();
        let policies = PolicyKind::all().len();
        assert_eq!(report.table.rows.len(), models * policies);
        // Every policy appears for every model, LRU first.
        for chunk in report.table.rows.chunks(policies) {
            assert_eq!(chunk[0][1], "LRU");
            assert!(chunk.iter().all(|r| r[0] == chunk[0][0]));
        }
        // Fix-count invariant held (no WARNING note).
        assert!(
            report
                .notes
                .iter()
                .any(|n| n.contains("verified identical")),
            "fix counts must not depend on the policy: {:?}",
            report.notes
        );
        // The LRU baseline row for DSM matches the plain grid measurement.
        let cfg = HarnessConfig::fast();
        let grid = measure_grid_on(&generate(&cfg.dataset()), &cfg, &[ModelKind::Dsm]).unwrap();
        let q2b = grid.cell(ModelKind::Dsm, QueryId::Q2b).unwrap();
        let lru_dsm_row = report
            .table
            .rows
            .iter()
            .find(|r| r[0] == "DSM" && r[1] == "LRU")
            .unwrap();
        assert_eq!(lru_dsm_row[6], fmt_pages(q2b.reads));
    }
}
