//! Table 5 — measured I/O calls.

use crate::paper::{compare, TABLE5_ANCHORS};
use crate::report::{fmt_pages, ExperimentReport, Table};
use crate::runner::MeasuredGrid;
use starfish_core::ModelKind;
use starfish_cost::QueryId;

/// Renders Table 5 (I/O calls per object / per loop) from a measured grid.
pub fn run(grid: &MeasuredGrid) -> ExperimentReport {
    let mut table = Table::new(vec!["MODEL", "1a", "1b", "1c", "2a", "2b", "3a", "3b"]);
    for (model, cells) in &grid.rows {
        let mut row = vec![super::table4::label(*model)];
        for c in cells {
            row.push(match c {
                Some(c) => fmt_pages(c.calls),
                None => "-".into(),
            });
        }
        table.push_row(row);
    }

    let mut notes = vec![
        "one call transfers a contiguous page run: the direct models read a large \
         object as root-page call + header calls + data-run call (≈2 pages/call); \
         the normalized models' scans read one page per call; flush-time writes \
         are grouped (≤32 pages per call), as DASDBS's deferred writes were"
            .into(),
    ];
    // Pages-per-call ratios, the §5.2 discussion.
    for model in [ModelKind::Dsm, ModelKind::Nsm] {
        if let (Some(p), Some(c)) = (
            grid.cell(model, QueryId::Q1c),
            grid.cell(model, QueryId::Q1c),
        ) {
            if c.calls > 0.0 {
                notes.push(format!(
                    "{}: {:.2} pages per read call on the full scan (paper: ≈2 for \
                     DSM, 1 for NSM)",
                    model.paper_name(),
                    p.pages / c.calls
                ));
            }
        }
    }
    if grid.config.n_objects == 1500 {
        for anchor in TABLE5_ANCHORS {
            if let Some(ours) = lookup(grid, anchor.what) {
                notes.push(compare(anchor, ours));
            }
        }
    }

    ExperimentReport {
        id: "table5".into(),
        title: "Measured I/O calls (X_IO_calls)".into(),
        table,
        notes,
    }
}

fn lookup(grid: &MeasuredGrid, what: &str) -> Option<f64> {
    // Longest-prefix match guards against "DASDBS-DSM" vs "DSM" etc.
    let model = ModelKind::all()
        .into_iter()
        .filter(|m| {
            what.starts_with(m.paper_name())
                && what.as_bytes().get(m.paper_name().len()) == Some(&b' ')
        })
        .max_by_key(|m| m.paper_name().len())?;
    let q = QueryId::all()
        .into_iter()
        .find(|q| what.contains(&format!("q{q} ")))?;
    grid.cell(model, q).map(|c| c.calls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::grid_models;
    use crate::runner::{measure_grid, HarnessConfig};

    #[test]
    fn calls_never_exceed_pages() {
        let config = HarnessConfig::fast();
        let grid = measure_grid(&config.dataset(), &config, &grid_models()).unwrap();
        let report = run(&grid);
        assert_eq!(report.table.rows.len(), 5);
        for (_, cells) in &grid.rows {
            for c in cells.iter().flatten() {
                assert!(c.calls <= c.pages + 1e-9, "a call moves ≥ 1 page");
            }
        }
    }

    #[test]
    fn direct_models_move_multiple_pages_per_call() {
        let config = HarnessConfig::fast();
        let grid = measure_grid(&config.dataset(), &config, &[ModelKind::Dsm]).unwrap();
        let c = grid.cell(ModelKind::Dsm, QueryId::Q1a).unwrap();
        assert!(
            c.pages / c.calls > 1.2,
            "DSM reads ≈2 pages per call, got {}",
            c.pages / c.calls
        );
    }
}
