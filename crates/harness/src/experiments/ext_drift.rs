//! Extension experiment: replacement policies under drifting hot sets.
//!
//! The paper's workloads are *stationary*: the pick distribution never
//! changes within a run, so a policy that learns the hot set once keeps it
//! forever. The drift vocabulary of the AccessPlan IR breaks that
//! assumption three ways ([`WorkloadSpec::drift_gradual`],
//! [`WorkloadSpec::drift_sudden`], [`WorkloadSpec::drift_cycle`]):
//!
//! * **drift-gradual** — the 16-object hot window slides 4 objects every 4
//!   loops (the DOEF "moving window" regime): recency policies keep up,
//!   frequency-leaning ones hold stale pages;
//! * **drift-sudden** — the window jumps 137 objects every 60 loops: a
//!   policy that over-committed to the old hot set pays for the whole next
//!   phase;
//! * **drift-cycle** — a `phase` op rotates tight-hot-set → uniform →
//!   wide-warm-set every 20 loops, alternating cacheable and scan-like
//!   regimes.
//!
//! Each is measured against the **static** hot-set baseline
//! ([`WorkloadSpec::hot_set`]) across every replacement policy on the two
//! bracket models (DSM and DASDBS-NSM), with the buffer scaled down to the
//! paper's DB ≫ buffer regime (§5.1) — at full cache nothing evicts and
//! every policy ties. Reported per cell: reads per unit, the delta against
//! the same policy on the static workload (the *price of drift*), and the
//! delta against LRU on the same scenario. The notes call out where the
//! policy ranking under drift differs from the static ranking — the
//! experiment's point: the paper's single-policy buffer (§5.1) would have
//! picked differently had its workloads moved.

use crate::report::{fmt_pages, ExperimentReport, Table};
use crate::runner::{measure_workload_on, HarnessConfig};
use crate::Result;
use starfish_core::{ModelKind, PolicyKind};
use starfish_workload::{generate, WorkloadSpec};

/// The models bracketing the design space: fully decomposed (DSM) and
/// fully clustered (DASDBS-NSM).
pub const MODELS: [ModelKind; 2] = [ModelKind::Dsm, ModelKind::DasdbsNsm];

/// The static baseline followed by the three drifting scenarios.
fn scenarios() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::hot_set(),
        WorkloadSpec::drift_gradual(),
        WorkloadSpec::drift_sudden(),
        WorkloadSpec::drift_cycle(),
    ]
}

/// One measured cell of the sweep.
struct Cell {
    scenario: usize,
    model: ModelKind,
    policy: PolicyKind,
    units: u64,
    reads: f64,
}

/// Policies ordered best-to-worst by reads/u for one (scenario, model),
/// ties broken by registry order so the ranking is deterministic.
fn ranking(cells: &[Cell], scenario: usize, model: ModelKind) -> Vec<PolicyKind> {
    let mut of: Vec<&Cell> = cells
        .iter()
        .filter(|c| c.scenario == scenario && c.model == model)
        .collect();
    of.sort_by(|a, b| a.reads.total_cmp(&b.reads));
    of.iter().map(|c| c.policy).collect()
}

fn fmt_ranking(r: &[PolicyKind]) -> String {
    r.iter().map(|p| p.name()).collect::<Vec<_>>().join(" < ")
}

/// Runs the sweep: (static + 3 drift scenarios) × bracket models × every
/// policy, buffer scaled down to the DB ≫ buffer regime.
pub fn run(config: &HarnessConfig) -> Result<ExperimentReport> {
    let config = HarnessConfig {
        buffer_pages: (config.buffer_pages / 8).max(16),
        ..*config
    };
    let config = &config;
    let db = generate(&config.dataset());
    let specs = scenarios();

    let mut cells: Vec<Cell> = Vec::new();
    let mut drifted_shape: Vec<String> = Vec::new();
    for (si, spec) in specs.iter().enumerate() {
        let mut shape: Option<(u64, Vec<u64>, u64, u64)> = None;
        for policy in PolicyKind::all() {
            let cfg = HarnessConfig { policy, ..*config };
            for row in measure_workload_on(&db, &cfg, &MODELS, spec)? {
                let cell = row.cell.expect("both bracket models run navigation plans");
                let got = (row.units, row.nav_seen.clone(), row.scanned, row.updates);
                match &shape {
                    None => shape = Some(got),
                    Some(want) if *want != got => {
                        drifted_shape.push(format!("{}/{}/{}", spec.name, row.model, policy));
                    }
                    _ => {}
                }
                cells.push(Cell {
                    scenario: si,
                    model: row.model,
                    policy,
                    units: row.units,
                    reads: cell.reads,
                });
            }
        }
    }

    let mut table = Table::new(vec![
        "SCENARIO",
        "MODEL",
        "POLICY",
        "units",
        "reads/u",
        "vs static",
        "vs LRU",
    ]);
    let find = |scenario: usize, model: ModelKind, policy: PolicyKind| -> &Cell {
        cells
            .iter()
            .find(|c| c.scenario == scenario && c.model == model && c.policy == policy)
            .expect("every cell measured")
    };
    let pct = |v: f64, base: f64| -> String {
        if base > 0.0 {
            format!("{:+.1}%", 100.0 * (v - base) / base)
        } else {
            "-".to_string()
        }
    };
    for c in &cells {
        let static_base = find(0, c.model, c.policy);
        let lru_base = find(c.scenario, c.model, PolicyKind::Lru);
        table.push_row(vec![
            specs[c.scenario].name.clone(),
            c.model.paper_name().to_string(),
            c.policy.name().to_string(),
            c.units.to_string(),
            fmt_pages(c.reads),
            if c.scenario == 0 {
                "(baseline)".to_string()
            } else {
                pct(c.reads, static_base.reads)
            },
            if c.policy == PolicyKind::Lru {
                "(baseline)".to_string()
            } else {
                pct(c.reads, lru_base.reads)
            },
        ]);
    }

    // Where does drift reorder the policy ranking the static workload
    // would have suggested?
    let mut ranking_changes: Vec<String> = Vec::new();
    for model in MODELS {
        let static_rank = ranking(&cells, 0, model);
        for (si, spec) in specs.iter().enumerate().skip(1) {
            let drift_rank = ranking(&cells, si, model);
            if drift_rank != static_rank {
                ranking_changes.push(format!(
                    "{}/{}: {} (static: {})",
                    spec.name,
                    model.paper_name(),
                    fmt_ranking(&drift_rank),
                    fmt_ranking(&static_rank)
                ));
            }
        }
    }

    let mut notes = vec![
        format!(
            "{} objects, buffer scaled down to {} pages to preserve the \
             paper's DB >> buffer regime (5.1) — at full cache nothing \
             evicts and every policy ties",
            config.n_objects, config.buffer_pages
        ),
        "\"vs static\" compares each policy to itself on the static hot-set \
         baseline (the price of the same skew once it moves); \"vs LRU\" \
         compares policies within a scenario, like ext-policy does"
            .to_string(),
    ];
    notes.push(if ranking_changes.is_empty() {
        "policy rankings under drift match the static hot-set ranking — \
         at this scale drift changes magnitudes, not the choice of policy"
            .to_string()
    } else {
        format!(
            "policy ranking changes under drift (best-to-worst by reads/u): {}",
            ranking_changes.join("; ")
        )
    });
    notes.push(if drifted_shape.is_empty() {
        "determinism check passed: units, per-hop cardinalities, scan and \
         update counts identical across every (model, policy) cell of each \
         scenario — drift changes *which* objects are hot, never how many \
         are accessed"
            .to_string()
    } else {
        format!(
            "WARNING: access sequences drifted across models/policies at {} — \
             the executor's determinism contract is broken",
            drifted_shape.join(", ")
        )
    });

    Ok(ExperimentReport {
        id: "ext-drift".into(),
        title: "Extension — drifting hot sets and phase changes vs the static baseline \
                (policies × bracket models, DB >> buffer)"
            .into(),
        table,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_sweep_covers_scenarios_models_policies() {
        let report = run(&HarnessConfig::fast()).unwrap();
        let want = scenarios().len() * MODELS.len() * PolicyKind::all().len();
        assert_eq!(report.table.rows.len(), want);
        assert!(
            !report.notes.iter().any(|n| n.contains("WARNING")),
            "determinism check failed: {:?}",
            report.notes
        );
    }

    #[test]
    fn drift_reorders_at_least_one_policy_ranking() {
        // The experiment's reason to exist: under a moving hot set the
        // best-to-worst policy order differs from the static baseline's
        // for at least one (scenario, model).
        let report = run(&HarnessConfig::fast()).unwrap();
        assert!(
            report
                .notes
                .iter()
                .any(|n| n.contains("policy ranking changes under drift")),
            "no ranking change found: {:?}",
            report.notes
        );
    }

    #[test]
    fn drift_costs_reads_over_the_static_baseline() {
        // Moving the hot window must cost page reads under at least one
        // policy (the buffer keeps re-learning the working set).
        let report = run(&HarnessConfig::fast()).unwrap();
        let dearer = report
            .table
            .rows
            .iter()
            .filter(|r| r[5].starts_with('+'))
            .count();
        assert!(
            dearer > 0,
            "drift was free everywhere: {:?}",
            report.table.rows
        );
    }
}
