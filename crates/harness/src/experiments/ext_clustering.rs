//! Extension experiment: reference-clustered placement.
//!
//! Load order is placement for the bulk-loaded stores. This ablation
//! permutes the database so that referenced objects sit next to their
//! referers (BFS over the link graph) and reruns the navigation queries.
//! With small objects (the max-sightseeing = 0 variant of §5.3, where many
//! objects share a page) children land on or near their parents' pages and
//! the direct models' navigation gets cheaper — a placement lever the paper
//! holds fixed.

use crate::report::{fmt_pages, ExperimentReport, Table};
use crate::runner::{load_store, HarnessConfig};
use crate::Result;
use starfish_core::ModelKind;
use starfish_cost::QueryId;
use starfish_workload::reorder::{cluster_by_reference, references_consistent};
use starfish_workload::{generate, QueryOutcome};

/// Models measured (direct models benefit; DASDBS-NSM is the control — its
/// per-object tuples are already clustered per relation).
pub const MODELS: [ModelKind; 3] = [ModelKind::Dsm, ModelKind::DasdbsDsm, ModelKind::DasdbsNsm];

/// Runs q2a/q2b with key-ordered vs reference-clustered placement on the
/// small-object database.
///
/// With `max_sightseeing = 0` the database shrinks to a fraction of its
/// normal footprint and would fit entirely inside the paper's 1200-page
/// buffer — the cache would absorb any placement effect. To preserve the
/// paper's DB ≫ buffer regime (§5.1) this experiment scales the buffer down
/// with the data.
pub fn run(config: &HarnessConfig) -> Result<ExperimentReport> {
    let config = HarnessConfig {
        buffer_pages: (config.buffer_pages / 8).max(16),
        ..*config
    };
    let config = &config;
    let params = config.dataset().with_max_sightseeing(0);
    let original = generate(&params);
    let clustered = cluster_by_reference(&original);
    assert!(
        references_consistent(&clustered),
        "permutation must stay consistent"
    );

    let mut table = Table::new(vec![
        "MODEL",
        "2a key-order",
        "2a clustered",
        "2b key-order",
        "2b clustered",
    ]);
    let mut gains = Vec::new();
    for &kind in &MODELS {
        let mut cells = Vec::new();
        for db in [&original, &clustered] {
            for q in [QueryId::Q2a, QueryId::Q2b] {
                let (mut store, runner) = load_store(kind, db, config)?;
                let QueryOutcome::Measured(m) = runner.run(store.as_mut(), q)? else {
                    unreachable!("query 2 supported everywhere");
                };
                cells.push(m.pages_per_unit());
            }
        }
        // cells = [2a orig, 2b orig, 2a clus, 2b clus]
        table.push_row(vec![
            kind.paper_name().to_string(),
            fmt_pages(cells[0]),
            fmt_pages(cells[2]),
            fmt_pages(cells[1]),
            fmt_pages(cells[3]),
        ]);
        gains.push((kind, cells[1] / cells[3].max(1e-9)));
    }

    let mut notes = vec![format!(
        "max sightseeings = 0, so objects are small and share pages (§5.3's \
             regime); buffer scaled down to {} pages to keep DB ≫ buffer; \
             'clustered' loads the database in BFS order over the reference \
             graph with links rewritten accordingly",
        config.buffer_pages
    )];
    for (kind, gain) in &gains {
        notes.push(format!(
            "{}: query 2b speedup from clustering = ×{:.2}",
            kind.paper_name(),
            gain
        ));
    }
    notes.push(
        "reading: the direct models gain when parents and children co-reside on \
         pages; DASDBS-NSM barely moves — its navigation was already one small \
         tuple per object, so placement matters less. Clustering by reference is \
         thus a cheap upgrade for direct storage of small objects — and \
         irrelevant once objects span private extents"
            .into(),
    );

    Ok(ExperimentReport {
        id: "ext-clustering".into(),
        title: "Extension — reference-clustered placement (small objects)".into(),
        table,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustering_never_hurts_navigation_much_and_helps_direct_models() {
        let report = run(&HarnessConfig::fast()).unwrap();
        assert_eq!(report.table.rows.len(), 3);
        for row in &report.table.rows {
            let q2b_orig: f64 = row[3].parse().unwrap();
            let q2b_clus: f64 = row[4].parse().unwrap();
            assert!(
                q2b_clus <= q2b_orig * 1.15 + 0.2,
                "{}: clustering should not hurt ({q2b_orig} -> {q2b_clus})",
                row[0]
            );
        }
        // The direct models gain something.
        let dsm: Vec<f64> = report.table.rows[0][3..5]
            .iter()
            .map(|c| c.parse().unwrap())
            .collect();
        assert!(dsm[1] < dsm[0], "DSM must benefit: {dsm:?}");
    }
}
