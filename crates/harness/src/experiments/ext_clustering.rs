//! Extension experiment: adaptive placement under drifting workloads.
//!
//! The paper fixes physical placement at load time; this testbed closes
//! the loop. Each store runs a drifting workload twice over the identical
//! operation tape: phase A accumulates page heat, then the cost model's
//! plan-walker prices the tape with the hot span *as placed* versus *as
//! packed* ([`starfish_core::PlacementStats`]), and only when the
//! predicted page-read win clears [`REORG_WIN_THRESHOLD`] does the store
//! run its online reorganization pass before phase B replays the tape.
//! Reported per row: measured reads/unit before and after, the measured
//! win, the predicted win, whether the pass fired, and whether prediction
//! and measurement agree in sign — the property the trigger relies on.

use crate::report::{fmt_pages, ExperimentReport, Table};
use crate::runner::HarnessConfig;
use crate::Result;
use starfish_core::{make_store, HeatConfig, ModelKind, PlacementStats, StoreConfig};
use starfish_cost::{estimate_plan, EstimatorInputs, ModelVariant, PlanContext};
use starfish_workload::{generate, lower_spec, Executor, PlanOutcome, WorkloadSpec};

/// Models swept, paired with their cost-model variant. One model per
/// placement family: whole-object extents (DSM), page-sharing relations
/// with direct addresses (NSM+index), nested relations behind the
/// transformation table (DASDBS-NSM).
pub const MODELS: [(ModelKind, ModelVariant); 3] = [
    (ModelKind::Dsm, ModelVariant::Dsm),
    (ModelKind::NsmIndexed, ModelVariant::NsmIndexed),
    (ModelKind::DasdbsNsm, ModelVariant::DasdbsNsm),
];

/// Minimum predicted page-read win (pages per unit) before the
/// reorganization pass is allowed to run. It covers two costs the raw win
/// does not: the pass's own counted I/O (it rewrites every extent once)
/// and the walker's resolution — sub-quarter-page-per-unit predictions
/// are inside the model's noise band, where firing can lose as easily as
/// win. Below it the row replays phase B on the untouched layout, which
/// (deterministic tape, cold start) measures a win of exactly zero.
pub const REORG_WIN_THRESHOLD: f64 = 0.25;

/// One swept cell of the adaptation grid.
struct AdaptCell {
    reads_before: f64,
    reads_after: f64,
    predicted_win: f64,
    reorganized: bool,
    moved: usize,
}

impl AdaptCell {
    fn measured_win(&self) -> f64 {
        self.reads_before - self.reads_after
    }

    /// Sign agreement between prediction and measurement: a fired pass
    /// must not lose pages; a skipped pass replays identically.
    fn agrees(&self) -> bool {
        if self.reorganized {
            self.predicted_win > 0.0 && self.measured_win() > 0.0
        } else {
            self.measured_win().abs() < 1e-9
        }
    }
}

/// Prices `spec`'s tape under `variant` with the hot span at `span` pages,
/// returning expected page reads per unit. `None` where the model cannot
/// price the plan (no such row is swept here, but the walker's contract
/// allows it).
fn predicted_reads(
    variant: ModelVariant,
    inputs: &EstimatorInputs,
    buffer_pages: usize,
    span: u32,
    spec: &WorkloadSpec,
    n_objects: usize,
    units: u64,
) -> Option<f64> {
    let ctx = PlanContext {
        buffer_pages: buffer_pages as f64,
        hot_span_pages: Some(span as f64),
    };
    let ops = lower_spec(spec, n_objects);
    estimate_plan(variant, inputs, &ctx, &ops).map(|est| est.pages_read / units.max(1) as f64)
}

/// Runs one (model, policy, scenario) cell: phase A, trigger decision,
/// optional reorganization, phase B over the identical tape.
fn run_cell(
    kind: ModelKind,
    variant: ModelVariant,
    inputs: &EstimatorInputs,
    config: &HarnessConfig,
    db: &[starfish_nf2::station::Station],
    spec: &WorkloadSpec,
) -> Result<AdaptCell> {
    let mut store = make_store(
        kind,
        StoreConfig::with_buffer_pages(config.buffer_pages)
            .policy(config.policy)
            .heat(HeatConfig::enabled()),
    );
    let refs = store.load(db)?;
    let exec = Executor::new(refs, config.query_seed);

    let PlanOutcome::Measured(before) = exec.run(store.as_mut(), spec)? else {
        unreachable!("drift scenarios avoid model-specific ops");
    };
    let reads_before = before.snapshot.pages_read as f64 / before.units.max(1) as f64;

    let stats: PlacementStats = store.placement_stats()?;
    let pred = |span: u32| {
        predicted_reads(
            variant,
            inputs,
            config.buffer_pages,
            span,
            spec,
            exec.n_objects(),
            before.units,
        )
    };
    let predicted_win = match (pred(stats.hot_pages), pred(stats.hot_packed_pages)) {
        (Some(b), Some(a)) => b - a,
        _ => 0.0,
    };

    let (reorganized, moved) = if predicted_win > REORG_WIN_THRESHOLD {
        let report = store.reorganize()?;
        (true, report.moved)
    } else {
        (false, 0)
    };

    let PlanOutcome::Measured(after) = exec.run(store.as_mut(), spec)? else {
        unreachable!("drift scenarios avoid model-specific ops");
    };
    let reads_after = after.snapshot.pages_read as f64 / after.units.max(1) as f64;

    Ok(AdaptCell {
        reads_before,
        reads_after,
        predicted_win,
        reorganized,
        moved,
    })
}

/// Sweeps the drifting scenarios × models × policies with the adaptive
/// placement loop.
///
/// Runs on the small-object database (`max_sightseeing = 0`, §5.3's
/// page-sharing regime — placement only matters when objects share pages)
/// with the buffer scaled down to preserve the paper's DB ≫ buffer regime
/// (§5.1): a buffer that swallows the whole database would absorb any
/// placement effect.
pub fn run(config: &HarnessConfig) -> Result<ExperimentReport> {
    let config = HarnessConfig {
        buffer_pages: (config.buffer_pages / 8).max(16),
        ..*config
    };
    let params = config.dataset().with_max_sightseeing(0);
    let db = generate(&params);
    let inputs = EstimatorInputs::new(params.profile());
    let scenarios = [
        WorkloadSpec::drift_gradual(),
        WorkloadSpec::drift_sudden(),
        WorkloadSpec::drift_cycle(),
    ];
    let policies = [
        starfish_core::PolicyKind::Lru,
        starfish_core::PolicyKind::Lru2,
    ];

    let mut table = Table::new(vec![
        "SCENARIO",
        "MODEL",
        "POLICY",
        "reads/u A",
        "reads/u B",
        "win meas",
        "win pred",
        "reorg",
        "agree",
    ]);
    let mut fired = 0usize;
    let mut agreed = 0usize;
    let mut total = 0usize;
    for spec in &scenarios {
        for &(kind, variant) in &MODELS {
            for &policy in &policies {
                let cfg = HarnessConfig { policy, ..config };
                let cell = run_cell(kind, variant, &inputs, &cfg, &db, spec)?;
                total += 1;
                fired += cell.reorganized as usize;
                agreed += cell.agrees() as usize;
                table.push_row(vec![
                    spec.name.clone(),
                    kind.paper_name().to_string(),
                    format!("{policy}"),
                    fmt_pages(cell.reads_before),
                    fmt_pages(cell.reads_after),
                    format!("{:+.2}", cell.measured_win()),
                    format!("{:+.2}", cell.predicted_win),
                    if cell.reorganized {
                        format!("yes ({} moved)", cell.moved)
                    } else {
                        "no".into()
                    },
                    if cell.agrees() { "yes" } else { "NO" }.to_string(),
                ]);
            }
        }
    }

    let notes = vec![
        format!(
            "max sightseeings = 0 (small, page-sharing objects) and the buffer \
             scaled down to {} pages to keep DB ≫ buffer; heat tracking on, \
             decaying every {} records",
            config.buffer_pages,
            HeatConfig::enabled().decay_every
        ),
        format!(
            "phase A runs the drift tape and accumulates heat; the plan-walker \
             prices the tape with the hot span as placed vs as packed, and the \
             reorganization pass fires only when the predicted read win exceeds \
             {REORG_WIN_THRESHOLD} pages/unit; phase B replays the identical tape"
        ),
        format!(
            "{fired}/{total} cells fired the pass; {agreed}/{total} agree in sign \
             (fired ⇒ measured win > 0, skipped ⇒ identical replay)"
        ),
        "reading: drift widens the hot set beyond its instantaneous window, so \
         packing it back into contiguous pages shrinks the span the buffer must \
         retain — the models whose navigation touches whole objects (DSM) gain \
         the most; DASDBS-NSM's per-relation tuples gain less but still pack"
            .into(),
    ];

    Ok(ExperimentReport {
        id: "ext-clustering".into(),
        title: "Extension — adaptive placement (heat-tracked online reclustering)".into(),
        table,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptation_helps_and_predictions_have_the_right_sign() {
        let report = run(&HarnessConfig::fast()).unwrap();
        assert_eq!(
            report.table.rows.len(),
            18,
            "3 scenarios × 3 models × 2 policies"
        );
        let mut any_win = false;
        for row in &report.table.rows {
            assert_eq!(row[8], "yes", "sign mismatch in row {row:?}");
            let meas: f64 = row[5].parse().unwrap();
            if row[7].starts_with("yes") && meas > 0.5 {
                any_win = true;
            }
        }
        assert!(
            any_win,
            "at least one drifting cell must show a real page-read reduction"
        );
    }

    #[test]
    fn runs_are_reproducible() {
        let a = run(&HarnessConfig::fast()).unwrap();
        let b = run(&HarnessConfig::fast()).unwrap();
        assert_eq!(a.table.rows, b.table.rows);
    }
}
