//! Extension experiment: estimated response times via Equation 1.
//!
//! The paper measures logical counts and gives a single wall-clock anecdote
//! (§5.2: NSM's query-2b run "took about 2.5 hours, whereas the same query
//! was executed within at most 0.5 hour for the other storage models" on a
//! Sun 3/60). This experiment plugs the measured counts into Equation 1
//! (`C = d1·calls + d2·pages` + a CPU term per fix) under two weight sets:
//! the calibrated 1989-era workstation and a modern NVMe machine — an
//! ablation of which 1993 conclusions survive today's hardware.

use crate::report::{ExperimentReport, Table};
use crate::runner::MeasuredGrid;
use starfish_core::ModelKind;
use starfish_cost::{CostWeights, QueryId};

/// Estimated whole-program time for the loop queries (counts × loops).
fn program_ms(grid: &MeasuredGrid, model: ModelKind, q: QueryId, w: &CostWeights) -> Option<f64> {
    let cell = grid.cell(model, q)?;
    let loops = q.loops(grid.config.n_objects as u64) as f64;
    Some(w.cost_ms(cell.calls * loops, cell.pages * loops, cell.fixes * loops))
}

/// Builds the response-time table from a measured grid.
pub fn run(grid: &MeasuredGrid) -> ExperimentReport {
    let era = CostWeights::sun_3_60_era();
    let nvme = CostWeights::modern_nvme();
    let mut table = Table::new(vec![
        "MODEL",
        "2b 1989-era",
        "3b 1989-era",
        "2b modern",
        "3b modern",
    ]);
    for (model, _) in &grid.rows {
        let fmt = |v: Option<f64>| v.map(CostWeights::human).unwrap_or_else(|| "-".into());
        table.push_row(vec![
            super::table4::label(*model),
            fmt(program_ms(grid, *model, QueryId::Q2b, &era)),
            fmt(program_ms(grid, *model, QueryId::Q3b, &era)),
            fmt(program_ms(grid, *model, QueryId::Q2b, &nvme)),
            fmt(program_ms(grid, *model, QueryId::Q3b, &nvme)),
        ]);
    }

    let mut notes = vec![
        "Equation 1 with weights d1 = 30 ms/call, d2 = 2 ms/page plus 20 ms of CPU \
         per buffer fix (calibrated on the paper's own 2.5-hour anecdote); the \
         modern column uses 0.02 ms/call, 0.002 ms/page, 0.5 µs/fix"
            .into(),
    ];
    if let (Some(nsm), Some(others)) = (
        program_ms(grid, ModelKind::Nsm, QueryId::Q2b, &era),
        program_ms(grid, ModelKind::DasdbsNsm, QueryId::Q2b, &era),
    ) {
        notes.push(format!(
            "1989-era query 2b: NSM ≈ {} vs DASDBS-NSM ≈ {} — the paper's \
             \"about 2.5 hours\" vs \"within at most 0.5 hour\"",
            CostWeights::human(nsm),
            CostWeights::human(others)
        ));
    }
    if let (Some(nsm), Some(dsm)) = (
        program_ms(grid, ModelKind::Nsm, QueryId::Q2b, &nvme),
        program_ms(grid, ModelKind::Dsm, QueryId::Q2b, &nvme),
    ) {
        notes.push(format!(
            "modern hardware ablation: the I/O gap between the models shrinks to \
             milliseconds (NSM {} vs DSM {}), but NSM's CPU blow-up — and hence \
             the paper's ranking — survives: disk counts stop mattering long \
             before page *touches* do",
            CostWeights::human(nsm),
            CostWeights::human(dsm)
        ));
    }

    ExperimentReport {
        id: "ext-timing".into(),
        title: "Extension — estimated response times (Equation 1, two hardware eras)".into(),
        table,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::grid_models;
    use crate::runner::{measure_grid, HarnessConfig};

    #[test]
    fn era_ranking_matches_the_anecdote_shape() {
        let config = HarnessConfig::fast();
        let grid = measure_grid(&config.dataset(), &config, &grid_models()).unwrap();
        let report = run(&grid);
        assert_eq!(report.table.rows.len(), 5);
        let era = CostWeights::sun_3_60_era();
        let nsm = program_ms(&grid, ModelKind::Nsm, QueryId::Q2b, &era).unwrap();
        for m in [ModelKind::Dsm, ModelKind::DasdbsDsm, ModelKind::DasdbsNsm] {
            let other = program_ms(&grid, m, QueryId::Q2b, &era).unwrap();
            assert!(
                nsm > 1.5 * other,
                "NSM ({nsm:.0} ms) must be the slowest; {m} took {other:.0} ms"
            );
        }
    }
}
