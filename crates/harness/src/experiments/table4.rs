//! Table 4 — measured physical page I/Os.

use crate::report::{fmt_pages, ExperimentReport, Table};
use crate::runner::MeasuredGrid;
use starfish_core::ModelKind;
use starfish_cost::QueryId;

/// Renders Table 4 (pages read + written per object / per loop) from a
/// measured grid.
pub fn run(grid: &MeasuredGrid) -> ExperimentReport {
    let mut table = Table::new(vec!["MODEL", "1a", "1b", "1c", "2a", "2b", "3a", "3b"]);
    for (model, cells) in &grid.rows {
        let mut row = vec![label(*model)];
        for c in cells {
            row.push(match c {
                Some(c) => fmt_pages(c.pages),
                None => "-".into(),
            });
        }
        table.push_row(row);
    }

    let mut notes = vec![
        format!(
            "measured on the simulated engine: {} objects, {}-page buffer; \
             writes include the database-disconnect flush",
            grid.config.n_objects, grid.config.buffer_pages
        ),
        "shape checks vs the paper's Table 4: direct models cost several pages per \
         object on query 1; value selection (1b) costs the whole database for \
         DSM/NSM but only the root relation + addresses for DASDBS-NSM; DASDBS-NSM \
         needs the fewest pages on navigation (2a/2b)"
            .into(),
    ];
    // Spell out the query-3 write components (the paper discusses them).
    for model in [
        ModelKind::Dsm,
        ModelKind::DasdbsDsm,
        ModelKind::Nsm,
        ModelKind::DasdbsNsm,
    ] {
        if let Some(c) = grid.cell(model, QueryId::Q3b) {
            notes.push(format!(
                "{}: query 3b = {:.2} reads + {:.2} writes per loop",
                model.paper_name(),
                c.reads,
                c.writes
            ));
        }
    }

    ExperimentReport {
        id: "table4".into(),
        title: "Measured physical page I/Os (X_IO_pages)".into(),
        table,
        notes,
    }
}

pub(super) fn label(model: ModelKind) -> String {
    match model {
        ModelKind::NsmIndexed => "NSM+index (extra)".to_string(),
        m => m.paper_name().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::grid_models;
    use crate::runner::{measure_grid, HarnessConfig};

    #[test]
    fn renders_grid_with_paper_shapes() {
        let config = HarnessConfig::fast();
        let grid = measure_grid(&config.dataset(), &config, &grid_models()).unwrap();
        let report = run(&grid);
        assert_eq!(report.table.rows.len(), 5);

        // Paper shape (i): 1b is whole-database for DSM but near root-relation
        // size for DASDBS-NSM.
        let dsm_1b = grid.cell(ModelKind::Dsm, QueryId::Q1b).unwrap().pages;
        let dnsm_1b = grid.cell(ModelKind::DasdbsNsm, QueryId::Q1b).unwrap().pages;
        assert!(dsm_1b > 10.0 * dnsm_1b, "{dsm_1b} vs {dnsm_1b}");

        // Paper shape (ii): DASDBS-DSM reads fewer pages than DSM on 2a.
        let dsm = grid.cell(ModelKind::Dsm, QueryId::Q2a).unwrap().pages;
        let ddsm = grid.cell(ModelKind::DasdbsDsm, QueryId::Q2a).unwrap().pages;
        assert!(ddsm < dsm, "{ddsm} vs {dsm}");

        // Paper shape (iii): DASDBS-NSM cheapest on 2b.
        let dnsm = grid.cell(ModelKind::DasdbsNsm, QueryId::Q2b).unwrap().pages;
        for m in [ModelKind::Dsm, ModelKind::DasdbsDsm] {
            assert!(dnsm < grid.cell(m, QueryId::Q2b).unwrap().pages, "{m}");
        }
    }
}
