//! Figure 6 — database caching: measured query 2b (pages per loop) against
//! the analytic best/worst-case envelope while the database size varies
//! (§5.4; loops = size/5; the paper's x-axis is logarithmic, 100…1500
//! objects; buffer fixed at 1200 pages).

use crate::paper::FIG6_ANCHORS;
use crate::report::{fmt_pages, ExperimentReport, Table};
use crate::runner::{load_store, HarnessConfig};
use crate::Result;
use starfish_core::ModelKind;
use starfish_cost::{estimate, EstimatorInputs, ModelVariant, QueryId};
use starfish_workload::{generate, QueryOutcome};

/// Models plotted in Figure 6.
pub const FIG6_MODELS: [(ModelKind, ModelVariant); 3] = [
    (ModelKind::Dsm, ModelVariant::Dsm),
    (ModelKind::DasdbsDsm, ModelVariant::DasdbsDsm),
    (ModelKind::DasdbsNsm, ModelVariant::DasdbsNsm),
];

/// One point of the sweep.
#[derive(Clone, Copy, Debug)]
pub struct Fig6Point {
    /// Database size in objects.
    pub n_objects: usize,
    /// Measured pages per loop.
    pub measured: f64,
    /// Analytic best case (query 2b estimate).
    pub best: f64,
    /// Analytic worst case (query 2a estimate).
    pub worst: f64,
}

/// Database sizes for the sweep, scaled from the paper's 100…1500 when the
/// harness runs a smaller overall configuration.
pub fn sweep_sizes(config: &HarnessConfig) -> Vec<usize> {
    [100usize, 200, 400, 800, 1200, 1500]
        .iter()
        .map(|&s| (s * config.n_objects).div_ceil(1500).max(10))
        .collect()
}

/// Runs the sweep for every Figure 6 model.
pub fn sweep(config: &HarnessConfig) -> Result<Vec<(ModelKind, Vec<Fig6Point>)>> {
    let sizes = sweep_sizes(config);
    let mut out = Vec::new();
    for (kind, variant) in FIG6_MODELS {
        let mut points = Vec::new();
        for &n in &sizes {
            let params = config.dataset().with_objects(n);
            let db = generate(&params);
            let (mut store, runner) = load_store(kind, &db, config)?;
            let measured = match runner.run(store.as_mut(), QueryId::Q2b)? {
                QueryOutcome::Measured(m) => m.pages_per_unit(),
                QueryOutcome::Unsupported => f64::NAN,
            };
            let inputs = EstimatorInputs::new(params.profile());
            let best = estimate(variant, QueryId::Q2b, &inputs)
                .expect("2b")
                .total();
            let worst = estimate(variant, QueryId::Q2a, &inputs)
                .expect("2a")
                .total();
            points.push(Fig6Point {
                n_objects: n,
                measured,
                best,
                worst,
            });
        }
        out.push((kind, points));
    }
    Ok(out)
}

/// Regenerates Figure 6 as a table plus shape notes.
pub fn run(config: &HarnessConfig) -> Result<ExperimentReport> {
    let data = sweep(config)?;
    let mut table = Table::new(vec![
        "MODEL",
        "objects",
        "loops",
        "measured",
        "best-case",
        "worst-case",
    ]);
    for (kind, points) in &data {
        for p in points {
            table.push_row(vec![
                kind.paper_name().to_string(),
                p.n_objects.to_string(),
                QueryId::Q2b.loops(p.n_objects as u64).to_string(),
                fmt_pages(p.measured),
                fmt_pages(p.best),
                fmt_pages(p.worst),
            ]);
        }
    }

    let mut notes = vec![format!(
        "buffer fixed at {} pages; for small databases there is no overflow and \
         the measured values sit near the best case; as the database outgrows \
         the buffer they rise towards (but stay below) the worst case — the \
         paper's Figure 6 shape",
        config.buffer_pages
    )];
    // Quantify the shape: small-vs-large measured ratio per model.
    for (kind, points) in &data {
        let first = points.first().expect("nonempty sweep");
        let last = points.last().expect("nonempty sweep");
        notes.push(format!(
            "{}: measured {:.2} pages/loop at {} objects (best-case {:.2}) → {:.2} \
             at {} objects (worst-case {:.2})",
            kind.paper_name(),
            first.measured,
            first.n_objects,
            first.best,
            last.measured,
            last.n_objects,
            last.worst
        ));
    }
    if config.n_objects == 1500 {
        for a in FIG6_ANCHORS {
            notes.push(format!("paper §5.4 narrative: {} ≈ {}", a.what, a.paper));
        }
    }

    Ok(ExperimentReport {
        id: "fig6".into(),
        title: "Query 2b pages/loop vs database size (caching)".into(),
        table,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_sensitivity_ordering_matches_paper() {
        let config = HarnessConfig::fast();
        let data = sweep(&config).unwrap();
        let by_kind =
            |k: ModelKind| -> &Vec<Fig6Point> { &data.iter().find(|(m, _)| *m == k).unwrap().1 };
        let dsm = by_kind(ModelKind::Dsm);
        let dnsm = by_kind(ModelKind::DasdbsNsm);
        // DSM is the most cache-sensitive: its measured value grows much
        // more from the smallest to the largest database than DASDBS-NSM's.
        let dsm_growth = dsm.last().unwrap().measured - dsm.first().unwrap().measured;
        let dnsm_growth = dnsm.last().unwrap().measured - dnsm.first().unwrap().measured;
        assert!(
            dsm_growth > dnsm_growth,
            "DSM growth {dsm_growth} vs DASDBS-NSM {dnsm_growth}"
        );
        // Measured stays within (or near) the analytic envelope.
        for (_, points) in &data {
            for p in points {
                assert!(
                    p.measured <= p.worst * 1.35 + 2.0,
                    "measured {} far above worst case {} at {} objects",
                    p.measured,
                    p.worst,
                    p.n_objects
                );
            }
        }
    }

    #[test]
    fn sizes_scale_with_config() {
        let sizes = sweep_sizes(&HarnessConfig::fast());
        assert_eq!(sizes.len(), 6);
        assert!(sizes[0] >= 10 && *sizes.last().unwrap() == 300);
        let full = sweep_sizes(&HarnessConfig::default());
        assert_eq!(full, vec![100, 200, 400, 800, 1200, 1500]);
    }
}
