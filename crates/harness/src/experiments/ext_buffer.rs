//! Extension experiment: buffer ablation — size *and* replacement policy.
//!
//! Figure 6 varies the database under a fixed 1200-page buffer; this is the
//! dual sweep — fixed database, varying buffer — which pins down each
//! model's working set directly. The crossover points quantify §5.4: DSM
//! needs a buffer on the order of the whole database, DASDBS-DSM of its
//! header+prefix pages, DASDBS-NSM only of its root+connection relations.
//!
//! Two sweeps share the table, distinguished by the POLICY column:
//!
//! * the **capacity sweep** runs the paper's LRU across every buffer
//!   fraction. Fractions ≤ 1 preserve the paper's DB ≫ buffer regime
//!   (every measured table assumes it); the 2× and 4× rows deliberately
//!   leave it to locate each model's saturation point;
//! * the **policy sweep** reruns the other four policies at the starved
//!   (⅛×, deep inside DB ≫ buffer) and paper (1×) capacities — the two
//!   regimes where policy choice can matter. Oversized buffers are
//!   omitted: once the working set fits, every policy stops evicting and
//!   the rows would be identical by construction.

use crate::report::{fmt_pages, ExperimentReport, Table};
use crate::runner::{load_store, HarnessConfig};
use crate::Result;
use starfish_core::{ModelKind, PolicyKind};
use starfish_cost::QueryId;
use starfish_workload::{generate, QueryOutcome};

/// Models swept.
pub const MODELS: [ModelKind; 3] = [ModelKind::Dsm, ModelKind::DasdbsDsm, ModelKind::DasdbsNsm];

/// Buffer sizes as fractions of the default (1200 pages at paper scale).
pub const FRACTIONS: [f64; 6] = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0];

/// Fractions at which the non-LRU policies are swept: the starved buffer
/// (DB ≫ buffer held strongly) and the paper's own size.
pub const POLICY_FRACTIONS: [f64; 2] = [0.125, 1.0];

/// Query 2b pages/loop for one (model, policy, buffer) cell.
fn measure_cell(
    config: &HarnessConfig,
    db: &[starfish_nf2::station::Station],
    kind: ModelKind,
    policy: PolicyKind,
    buffer: usize,
) -> Result<Option<(f64, f64, f64)>> {
    let cfg = HarnessConfig {
        buffer_pages: buffer,
        policy,
        ..*config
    };
    let (mut store, runner) = load_store(kind, db, &cfg)?;
    let QueryOutcome::Measured(m) = runner.run(store.as_mut(), QueryId::Q2b)? else {
        return Ok(None);
    };
    let bs = store.buffer_stats();
    let hit_rate = bs.hits as f64 / (bs.fixes.max(1)) as f64;
    let evictions = bs.evictions as f64 / m.units.max(1) as f64;
    Ok(Some((m.pages_per_unit(), hit_rate, evictions)))
}

/// Runs both sweeps: query 2b pages/loop for each (model, policy, buffer).
pub fn run(config: &HarnessConfig) -> Result<ExperimentReport> {
    let db = generate(&config.dataset());
    let mut table = Table::new(vec![
        "MODEL",
        "POLICY",
        "buffer",
        "2b pages/loop",
        "hit rate",
        "evictions/loop",
    ]);
    let buffer_of = |frac: f64| ((config.buffer_pages as f64 * frac) as usize).max(16);
    let mut summary: Vec<(ModelKind, f64, f64)> = Vec::new();
    let mut best_policy: Vec<(ModelKind, PolicyKind, f64, f64)> = Vec::new();
    for &kind in &MODELS {
        // Capacity sweep under the paper's LRU. Remember each buffer size's
        // LRU result so the policy sweep can compare without re-measuring.
        let mut smallest = f64::NAN;
        let mut largest = f64::NAN;
        let mut lru_pages_at: Vec<(usize, f64)> = Vec::new();
        for &frac in &FRACTIONS {
            let buffer = buffer_of(frac);
            let Some((pages, hit_rate, evictions)) =
                measure_cell(config, &db, kind, PolicyKind::Lru, buffer)?
            else {
                continue;
            };
            lru_pages_at.push((buffer, pages));
            table.push_row(vec![
                kind.paper_name().to_string(),
                PolicyKind::Lru.name().to_string(),
                buffer.to_string(),
                fmt_pages(pages),
                format!("{:.1}%", 100.0 * hit_rate),
                fmt_pages(evictions),
            ]);
            if frac == FRACTIONS[0] {
                smallest = pages;
            }
            if frac == FRACTIONS[FRACTIONS.len() - 1] {
                largest = pages;
            }
        }
        summary.push((kind, smallest, largest));

        // Policy sweep at the starved and paper capacities (both already
        // measured under LRU above — POLICY_FRACTIONS ⊆ FRACTIONS).
        let mut starved_best = (PolicyKind::Lru, f64::NAN, f64::NAN); // (kind, pages, lru pages)
        for &frac in &POLICY_FRACTIONS {
            let buffer = buffer_of(frac);
            let lru_pages = lru_pages_at
                .iter()
                .find(|(b, _)| *b == buffer)
                .map(|(_, p)| *p)
                .unwrap_or(f64::NAN);
            for policy in PolicyKind::all() {
                if policy == PolicyKind::Lru {
                    continue; // already in the capacity sweep
                }
                let Some((pages, hit_rate, evictions)) =
                    measure_cell(config, &db, kind, policy, buffer)?
                else {
                    continue;
                };
                table.push_row(vec![
                    kind.paper_name().to_string(),
                    policy.name().to_string(),
                    buffer.to_string(),
                    fmt_pages(pages),
                    format!("{:.1}%", 100.0 * hit_rate),
                    fmt_pages(evictions),
                ]);
                if frac == POLICY_FRACTIONS[0]
                    && (starved_best.1.is_nan() || pages < starved_best.1)
                {
                    starved_best = (policy, pages, lru_pages);
                }
            }
        }
        best_policy.push((kind, starved_best.0, starved_best.1, starved_best.2));
    }

    let mut notes = vec![format!(
        "database: {} objects; buffer swept from {}×⅛ to {}×4 pages",
        config.n_objects, config.buffer_pages, config.buffer_pages
    )];
    notes.push(
        "regimes: fractions ≤ 1 preserve the paper's DB ≫ buffer regime \
         (all of Tables 4–6 assume it); the 2× and 4× LRU rows deliberately \
         leave it to expose each model's working-set size; the policy sweep \
         stays at ⅛× (starved) and 1× (paper) because an oversized buffer \
         stops evicting and makes every policy identical by construction"
            .into(),
    );
    for (kind, small, large) in &summary {
        notes.push(format!(
            "{} (LRU): {:.2} pages/loop with the starved buffer → {:.2} with the \
             oversized one (×{:.1} sensitivity)",
            kind.paper_name(),
            small,
            large,
            small / large.max(1e-9)
        ));
    }
    for (kind, policy, pages, lru_pages) in &best_policy {
        notes.push(format!(
            "{} starved-buffer best non-LRU policy: {} at {:.2} pages/loop \
             (LRU: {:.2})",
            kind.paper_name(),
            policy.name(),
            pages,
            lru_pages
        ));
    }
    notes.push(
        "shape: DSM's curve keeps falling across the whole sweep (working set ≈ \
         whole database), DASDBS-DSM saturates once headers+prefixes fit, \
         DASDBS-NSM is already saturated at the smallest buffer — the §5.4 \
         sensitivity ordering, seen from the memory side"
            .into(),
    );

    Ok(ExperimentReport {
        id: "ext-buffer".into(),
        title: "Extension — buffer ablation (query 2b, fixed database, size × policy)".into(),
        table,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_sweep_orders_models_by_sensitivity() {
        let report = run(&HarnessConfig::fast()).unwrap();
        let lru_rows = MODELS.len() * FRACTIONS.len();
        let policy_rows = MODELS.len() * POLICY_FRACTIONS.len() * (PolicyKind::all().len() - 1);
        assert_eq!(report.table.rows.len(), lru_rows + policy_rows);
        // Extract the LRU (model, buffer) -> pages mapping back from the rows.
        let pages = |model: &str, idx: usize| -> f64 {
            report
                .table
                .rows
                .iter()
                .filter(|r| r[0] == model && r[1] == "LRU")
                .nth(idx)
                .map(|r| r[3].parse().unwrap())
                .unwrap()
        };
        // More buffer never hurts (weak monotonicity with small tolerance).
        for m in ["DSM", "DASDBS-DSM", "DASDBS-NSM"] {
            for i in 1..FRACTIONS.len() {
                assert!(
                    pages(m, i) <= pages(m, i - 1) * 1.10 + 0.3,
                    "{m}: pages/loop should not grow with buffer (step {i})"
                );
            }
        }
        // DSM gains the most from extra memory; DASDBS-NSM the least.
        let gain = |m: &str| pages(m, 0) / pages(m, FRACTIONS.len() - 1).max(1e-9);
        assert!(gain("DSM") > gain("DASDBS-NSM"));
    }

    #[test]
    fn policy_rows_cover_both_regimes() {
        let report = run(&HarnessConfig::fast()).unwrap();
        let config = HarnessConfig::fast();
        let starved = ((config.buffer_pages as f64 * POLICY_FRACTIONS[0]) as usize).max(16);
        let paper = ((config.buffer_pages as f64 * POLICY_FRACTIONS[1]) as usize).max(16);
        for m in ["DSM", "DASDBS-DSM", "DASDBS-NSM"] {
            for p in ["CLOCK", "MRU", "FIFO", "LRU-2"] {
                for buf in [starved, paper] {
                    assert!(
                        report
                            .table
                            .rows
                            .iter()
                            .any(|r| r[0] == m && r[1] == p && r[2] == buf.to_string()),
                        "missing policy row {m}/{p}/{buf}"
                    );
                }
            }
        }
        // The regime documentation made it into the notes.
        assert!(report.notes.iter().any(|n| n.contains("DB ≫ buffer")));
    }
}
