//! Extension experiment: buffer-size ablation.
//!
//! Figure 6 varies the database under a fixed 1200-page buffer; this is the
//! dual sweep — fixed database, varying buffer — which pins down each
//! model's working set directly. The crossover points quantify §5.4: DSM
//! needs a buffer on the order of the whole database, DASDBS-DSM of its
//! header+prefix pages, DASDBS-NSM only of its root+connection relations.

use crate::report::{fmt_pages, ExperimentReport, Table};
use crate::runner::{load_store, HarnessConfig};
use crate::Result;
use starfish_core::ModelKind;
use starfish_cost::QueryId;
use starfish_workload::{generate, QueryOutcome};

/// Models swept.
pub const MODELS: [ModelKind; 3] = [ModelKind::Dsm, ModelKind::DasdbsDsm, ModelKind::DasdbsNsm];

/// Buffer sizes as fractions of the default (1200 pages at paper scale).
pub const FRACTIONS: [f64; 6] = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0];

/// Runs the sweep: query 2b pages/loop for each (model, buffer size).
pub fn run(config: &HarnessConfig) -> Result<ExperimentReport> {
    let db = generate(&config.dataset());
    let mut table = Table::new(vec![
        "MODEL",
        "buffer",
        "2b pages/loop",
        "hit rate",
        "evictions/loop",
    ]);
    let mut summary: Vec<(ModelKind, f64, f64)> = Vec::new();
    for &kind in &MODELS {
        let mut smallest = f64::NAN;
        let mut largest = f64::NAN;
        for &frac in &FRACTIONS {
            let buffer = ((config.buffer_pages as f64 * frac) as usize).max(16);
            let cfg = HarnessConfig {
                buffer_pages: buffer,
                ..*config
            };
            let (mut store, runner) = load_store(kind, &db, &cfg)?;
            let QueryOutcome::Measured(m) = runner.run(store.as_mut(), QueryId::Q2b)? else {
                continue;
            };
            let bs = store.buffer_stats();
            let hit_rate = bs.hits as f64 / (bs.fixes.max(1)) as f64;
            table.push_row(vec![
                kind.paper_name().to_string(),
                buffer.to_string(),
                fmt_pages(m.pages_per_unit()),
                format!("{:.1}%", 100.0 * hit_rate),
                fmt_pages(bs.evictions as f64 / m.units.max(1) as f64),
            ]);
            if frac == FRACTIONS[0] {
                smallest = m.pages_per_unit();
            }
            if frac == FRACTIONS[FRACTIONS.len() - 1] {
                largest = m.pages_per_unit();
            }
        }
        summary.push((kind, smallest, largest));
    }

    let mut notes = vec![format!(
        "database: {} objects; buffer swept from {}×⅛ to {}×4 pages",
        config.n_objects, config.buffer_pages, config.buffer_pages
    )];
    for (kind, small, large) in &summary {
        notes.push(format!(
            "{}: {:.2} pages/loop with the starved buffer → {:.2} with the \
             oversized one (×{:.1} sensitivity)",
            kind.paper_name(),
            small,
            large,
            small / large.max(1e-9)
        ));
    }
    notes.push(
        "shape: DSM's curve keeps falling across the whole sweep (working set ≈ \
         whole database), DASDBS-DSM saturates once headers+prefixes fit, \
         DASDBS-NSM is already saturated at the smallest buffer — the §5.4 \
         sensitivity ordering, seen from the memory side"
            .into(),
    );

    Ok(ExperimentReport {
        id: "ext-buffer".into(),
        title: "Extension — buffer-size ablation (query 2b, fixed database)".into(),
        table,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_sweep_orders_models_by_sensitivity() {
        let report = run(&HarnessConfig::fast()).unwrap();
        assert_eq!(report.table.rows.len(), MODELS.len() * FRACTIONS.len());
        // Extract the (model, buffer) -> pages mapping back from the rows.
        let pages = |model: &str, idx: usize| -> f64 {
            report
                .table
                .rows
                .iter()
                .filter(|r| r[0] == model)
                .nth(idx)
                .map(|r| r[2].parse().unwrap())
                .unwrap()
        };
        // More buffer never hurts (weak monotonicity with small tolerance).
        for m in ["DSM", "DASDBS-DSM", "DASDBS-NSM"] {
            for i in 1..FRACTIONS.len() {
                assert!(
                    pages(m, i) <= pages(m, i - 1) * 1.10 + 0.3,
                    "{m}: pages/loop should not grow with buffer (step {i})"
                );
            }
        }
        // DSM gains the most from extra memory; DASDBS-NSM the least.
        let gain = |m: &str| pages(m, 0) / pages(m, FRACTIONS.len() - 1).max(1e-9);
        assert!(gain("DSM") > gain("DASDBS-NSM"));
    }
}
