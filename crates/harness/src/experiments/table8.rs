//! Table 8 — the overall qualitative evaluation: rank the four storage
//! models from best (`++`) to worst (`− −`) per cost factor, derived from
//! the measured grid exactly as the paper derives its judgement from its
//! validation tests.

use crate::report::{ExperimentReport, Table};
use crate::runner::MeasuredGrid;
use starfish_core::ModelKind;
use starfish_cost::QueryId;

/// The four ranked models (paper Table 8 order).
pub const RANKED: [ModelKind; 4] = [
    ModelKind::Dsm,
    ModelKind::DasdbsDsm,
    ModelKind::Nsm,
    ModelKind::DasdbsNsm,
];

const SYMBOLS: [&str; 4] = ["++", "+", "-", "--"];

/// Scores (geometric mean of per-query values normalized by the per-query
/// minimum) — lower is better. Queries where a model has no measurement are
/// skipped for all models to keep the comparison fair.
fn scores(grid: &MeasuredGrid, metric: impl Fn(&crate::runner::MeasuredCell) -> f64) -> Vec<f64> {
    let queries: Vec<QueryId> = QueryId::all()
        .into_iter()
        .filter(|&q| RANKED.iter().all(|&m| grid.cell(m, q).is_some()))
        .collect();
    RANKED
        .iter()
        .map(|&m| {
            let mut log_sum = 0.0;
            let mut n = 0usize;
            for &q in &queries {
                let v = metric(&grid.cell(m, q).expect("filtered"));
                let best = RANKED
                    .iter()
                    .map(|&o| metric(&grid.cell(o, q).expect("filtered")))
                    .fold(f64::INFINITY, f64::min)
                    .max(1e-9);
                log_sum += (v.max(1e-9) / best).ln();
                n += 1;
            }
            (log_sum / n.max(1) as f64).exp()
        })
        .collect()
}

/// Maps scores to the paper's `++`/`+`/`-`/`--` symbols by rank.
fn symbols(scores: &[f64]) -> Vec<&'static str> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut out = vec![""; scores.len()];
    for (rank, &idx) in order.iter().enumerate() {
        out[idx] = SYMBOLS[rank.min(SYMBOLS.len() - 1)];
    }
    out
}

/// Regenerates Table 8 from the measured grid.
pub fn run(grid: &MeasuredGrid) -> ExperimentReport {
    let fixes = scores(grid, |c| c.fixes); // CPU-load proxy (§5.2)
    let calls = scores(grid, |c| c.calls);
    let pages = scores(grid, |c| c.pages);
    // The paper's C_join column: the direct models never join; DASDBS-NSM
    // joins with the transformation table's address support; pure NSM's
    // joins are unsupported and scale with the tuples its scans rediscover
    // ("it is clear that the processor costs are unacceptable large with
    // NSM") — charged proportionally to its fix blow-up.
    let join: Vec<f64> = RANKED
        .iter()
        .enumerate()
        .map(|(i, &m)| match m {
            ModelKind::Dsm | ModelKind::DasdbsDsm => 1.0,
            ModelKind::DasdbsNsm => 2.0,
            _ => (fixes[i] * 4.0).max(8.0),
        })
        .collect();
    // Overall: geometric mean over CPU (fixes, join) and disk I/O (calls,
    // pages), as the paper's C_total aggregates C_processing and C_disk_IO.
    let overall: Vec<f64> = (0..RANKED.len())
        .map(|i| ((fixes[i].ln() + join[i].ln() + calls[i].ln() + pages[i].ln()) / 4.0).exp())
        .collect();

    let fixes_sym = symbols(&fixes);
    let join_sym = symbols(&join);
    let calls_sym = symbols(&calls);
    let pages_sym = symbols(&pages);
    let overall_sym = symbols(&overall);

    let mut table = Table::new(vec![
        "MODEL",
        "CPU fixes",
        "CPU join",
        "IO calls",
        "IO pages",
        "C_total",
    ]);
    for (i, &m) in RANKED.iter().enumerate() {
        table.push_row(vec![
            m.paper_name().to_string(),
            fixes_sym[i].to_string(),
            join_sym[i].to_string(),
            calls_sym[i].to_string(),
            pages_sym[i].to_string(),
            overall_sym[i].to_string(),
        ]);
    }

    let best = RANKED[overall
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .expect("nonempty")
        .0];
    let worst = RANKED[overall
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("nonempty")
        .0];
    let notes = vec![
        "ranking derived from the measured Tables 4-6 (geometric mean of per-query \
         values normalized by the best model per query); the paper's qualitative \
         judgement additionally charges NSM for its in-memory join CPU"
            .into(),
        format!(
            "overall: best = {}, worst = {} (paper: \"DASDBS-NSM seems to be the \
             best and NSM the worst. Also, DASDBS-DSM is better than DSM.\")",
            best.paper_name(),
            worst.paper_name()
        ),
    ];

    ExperimentReport {
        id: "table8".into(),
        title: "Overall evaluation of all storage models".into(),
        table,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::grid_models;
    use crate::runner::{measure_grid, HarnessConfig};

    #[test]
    fn overall_ranking_matches_paper_conclusion() {
        let config = HarnessConfig::fast();
        let grid = measure_grid(&config.dataset(), &config, &grid_models()).unwrap();
        let report = run(&grid);
        assert_eq!(report.table.rows.len(), 4);
        // The paper's headline conclusions:
        let row = |m: ModelKind| {
            report
                .table
                .rows
                .iter()
                .find(|r| r[0] == m.paper_name())
                .expect("row")
                .clone()
        };
        assert_eq!(
            row(ModelKind::DasdbsNsm)[5],
            "++",
            "DASDBS-NSM best overall"
        );
        assert_eq!(row(ModelKind::Nsm)[5], "--", "NSM worst overall");
        // DASDBS-DSM better than DSM overall.
        let sym_rank = |s: &str| SYMBOLS.iter().position(|&x| x == s).unwrap();
        assert!(
            sym_rank(&row(ModelKind::DasdbsDsm)[5]) < sym_rank(&row(ModelKind::Dsm)[5]),
            "DASDBS-DSM must rank above DSM"
        );
    }

    #[test]
    fn symbols_are_a_permutation() {
        let s = symbols(&[3.0, 1.0, 2.0, 4.0]);
        assert_eq!(s, vec!["-", "++", "+", "--"]);
    }
}
