//! Table 7 — data skew (§5.5): query 2b with generation probability 20% and
//! fanout 8 instead of 80% / 2, same expected sub-object counts but much
//! wider variance.

use crate::paper::{compare, DATASET_ANCHORS};
use crate::report::{fmt_pages, ExperimentReport, Table};
use crate::runner::{load_store, HarnessConfig};
use crate::Result;
use starfish_core::ModelKind;
use starfish_cost::QueryId;
use starfish_workload::{generate, DatasetParams, DatasetStats, QueryOutcome};

/// Models compared under skew (as in Figure 5, NSM is dropped).
pub const TABLE7_MODELS: [ModelKind; 3] =
    [ModelKind::Dsm, ModelKind::DasdbsDsm, ModelKind::DasdbsNsm];

/// Regenerates Table 7: query 2b per loop under the default and skewed
/// generators.
pub fn run(config: &HarnessConfig) -> Result<ExperimentReport> {
    let default_params = config.dataset();
    let skew_params = DatasetParams {
        n_objects: config.n_objects,
        seed: config.dataset_seed,
        ..DatasetParams::skewed()
    };

    let mut table = Table::new(vec![
        "MODEL",
        "2b default",
        "2b skew",
        "calls default",
        "calls skew",
        "fixes default",
        "fixes skew",
    ]);

    let mut cells = Vec::new();
    for params in [&default_params, &skew_params] {
        let db = generate(params);
        let mut per_model = Vec::new();
        for &kind in &TABLE7_MODELS {
            let (mut store, runner) = load_store(kind, &db, config)?;
            match runner.run(store.as_mut(), QueryId::Q2b)? {
                QueryOutcome::Measured(m) => {
                    per_model.push((m.pages_per_unit(), m.calls_per_unit(), m.fixes_per_unit()))
                }
                QueryOutcome::Unsupported => per_model.push((f64::NAN, f64::NAN, f64::NAN)),
            }
        }
        cells.push(per_model);
    }
    for (i, &kind) in TABLE7_MODELS.iter().enumerate() {
        table.push_row(vec![
            kind.paper_name().to_string(),
            fmt_pages(cells[0][i].0),
            fmt_pages(cells[1][i].0),
            fmt_pages(cells[0][i].1),
            fmt_pages(cells[1][i].1),
            fmt_pages(cells[0][i].2),
            fmt_pages(cells[1][i].2),
        ]);
    }

    let default_stats = DatasetStats::compute(&generate(&default_params));
    let skew_stats = DatasetStats::compute(&generate(&skew_params));
    let mut notes = vec![
        format!(
            "default extension: {:.2} platforms, {:.2} connections per station \
             (max {} platforms / {} connections)",
            default_stats.avg_platforms,
            default_stats.avg_connections,
            default_stats.max_platforms,
            default_stats.max_connections
        ),
        format!(
            "skewed extension:  {:.2} platforms, {:.2} connections per station \
             (max {} platforms / {} connections) — same averages, wider spread, \
             as in §5.5",
            skew_stats.avg_platforms,
            skew_stats.avg_connections,
            skew_stats.max_platforms,
            skew_stats.max_connections
        ),
        "paper conclusion: \"the overall figures are similar to those of the \
         original benchmark\" — the per-loop averages barely move"
            .into(),
    ];
    if config.n_objects == 1500 {
        for a in DATASET_ANCHORS {
            let ours = match a.what {
                "avg platforms/station (default)" => default_stats.avg_platforms,
                "avg connections/station (default)" => default_stats.avg_connections,
                "avg sightseeings/station (default)" => default_stats.avg_sightseeings,
                "avg platforms/station (skew)" => skew_stats.avg_platforms,
                "avg connections/station (skew)" => skew_stats.avg_connections,
                "max platforms/station (skew)" => skew_stats.max_platforms as f64,
                "max connections/station (skew)" => skew_stats.max_connections as f64,
                _ => continue,
            };
            notes.push(compare(a, ours));
        }
    }

    Ok(ExperimentReport {
        id: "table7".into(),
        title: "Query 2b under data skew (probability 20%, fanout 8)".into(),
        table,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_keeps_averages_similar() {
        let report = run(&HarnessConfig::fast()).unwrap();
        assert_eq!(report.table.rows.len(), 3);
        // Parse back the 2b columns: default vs skew within a factor ~2 for
        // every model (the paper found them "similar").
        for row in &report.table.rows {
            let d: f64 = row[1].parse().unwrap();
            let s: f64 = row[2].parse().unwrap();
            assert!(d > 0.0 && s > 0.0);
            let ratio = if d > s { d / s } else { s / d };
            assert!(ratio < 2.5, "{}: default {d} vs skew {s}", row[0]);
        }
    }
}
