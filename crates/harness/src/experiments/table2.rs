//! Table 2 — average stored tuple sizes and page parameters per relation.

use crate::paper::{compare, TABLE2_ANCHORS};
use crate::report::{ExperimentReport, Table};
use crate::runner::{load_store, HarnessConfig};
use crate::Result;
use starfish_core::{ModelKind, RelationInfo};
use starfish_cost::{RelParams, Table2Analytic};
use starfish_workload::{generate, DatasetStats};

/// Regenerates Table 2: measured (from the loaded stores) vs analytic (from
/// the cost model's expectations).
pub fn run(config: &HarnessConfig) -> Result<ExperimentReport> {
    let params = config.dataset();
    let db = generate(&params);
    let stats = DatasetStats::compute(&db);
    let analytic = params.profile().table2();

    let mut measured: Vec<RelationInfo> = Vec::new();
    for kind in [ModelKind::Dsm, ModelKind::Nsm, ModelKind::DasdbsNsm] {
        let (store, _) = load_store(kind, &db, config)?;
        measured.extend(store.relation_info());
    }

    let mut table = Table::new(vec![
        "RELATION", "TUP/OBJ", "TUPLES", "S_tuple", "S_anal", "k", "k_anal", "p", "p_anal", "m",
        "m_anal",
    ]);
    for ri in &measured {
        let a = find_analytic(&analytic, &ri.name);
        table.push_row(vec![
            ri.name.clone(),
            format!("{:.2}", ri.tuples_per_object),
            format!("{}", ri.total_tuples),
            format!("{:.0}", ri.avg_tuple_bytes),
            a.map(|a| format!("{:.0}", a.s_tuple)).unwrap_or_default(),
            ri.k.map(|k| k.to_string()).unwrap_or_else(|| "-".into()),
            a.and_then(|a| a.k)
                .map(|k| k.to_string())
                .unwrap_or_else(|| "-".into()),
            ri.p.map(|p| format!("{p:.2}"))
                .unwrap_or_else(|| "-".into()),
            a.and_then(|a| a.p)
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into()),
            ri.m.to_string(),
            a.map(|a| format!("{:.0}", a.m)).unwrap_or_default(),
        ]);
    }

    let mut notes = vec![format!(
        "generated extension: {:.2} platforms, {:.2} connections, {:.2} sightseeings \
         per station (paper observed 1.59 / 4.04 / 7.64)",
        stats.avg_platforms, stats.avg_connections, stats.avg_sightseeings
    )];
    // Compare against the recoverable anchors using the analytic values
    // (the paper's Table 2 is itself an expectation-level analysis).
    for anchor in TABLE2_ANCHORS {
        let ours = lookup_anchor(&analytic, anchor.what);
        if let Some(ours) = ours {
            notes.push(compare(anchor, ours));
        }
    }
    notes.push(
        "S_anal for DSM-Station counts encoded data only; the paper's 6078 B \
         additionally counts the (partially used) header page in full — with it, \
         ours is 2012 + data ≈ 6502 B, and p = 4 either way"
            .into(),
    );

    Ok(ExperimentReport {
        id: "table2".into(),
        title: "Average stored sizes of benchmark tuples (measured vs analytic)".into(),
        table,
        notes,
    })
}

fn find_analytic<'a>(t2: &'a Table2Analytic, name: &str) -> Option<&'a RelParams> {
    t2.rows().into_iter().find(|r| r.name == name)
}

fn lookup_anchor(t2: &Table2Analytic, what: &str) -> Option<f64> {
    let (rel, field) = what.split_once(' ')?;
    let r = t2.rows().into_iter().find(|r| r.name == rel)?;
    match field {
        "S_tuple [B]" => Some(if r.p.is_some() {
            r.s_tuple + 2012.0
        } else {
            r.s_tuple
        }),
        "k" => r.k.map(|k| k as f64),
        "p" => r.p.map(|p| p as f64),
        "m" => Some(r.m),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_small_scale() {
        let report = run(&HarnessConfig::fast()).unwrap();
        assert_eq!(report.id, "table2");
        // 1 DSM relation + 4 NSM + 4 DASDBS-NSM.
        assert_eq!(report.table.rows.len(), 9);
        assert!(!report.notes.is_empty());
        assert!(report.render().contains("NSM-Connection"));
    }
}
