//! Extension experiment: concurrent query serving over the sharded,
//! latched buffer pool.
//!
//! The paper measures one client behind one 1200-page LRU buffer; a
//! production system serves many, and serves *writes* among the reads.
//! This experiment has two parts:
//!
//! **Read-only sweep** (the PR-3 baseline, kept as the correctness
//! anchor): query 2b with 1/2/4/8 client threads sharing one
//! `SharedBufferPool` (shard count = client count), for every storage
//! model × replacement policy. The one-client LRU row is checked
//! cell-for-cell against the serial `QueryRunner` measurement (same seed ⇒
//! identical counters) — the acceptance gate for the shared pool.
//!
//! **Mixed-workload matrix** (new with the concurrent write path): the
//! same client counts serve a 2b-shaped request stream where a
//! deterministic share of requests also applies the query-3a root patch
//! through the latched `&self` write surface — read-only / 50-50 /
//! update-heavy ([`MixKind`]) — at the harness-selected policy (use
//! `--policy` to re-run the matrix under another one). Reported per row:
//!
//! * **pages/loop** and **fixes/loop** — the paper's per-unit metrics,
//!   now under concurrency. Fixes must not move across client counts
//!   (accesses are scheduling-independent); physical pages may, because
//!   clients race on cache residency;
//! * **queries/s** and the speedup over one client — wall-clock
//!   throughput of the serving phase (hardware-dependent);
//! * **latch sh/ex** — shared/exclusive group-latch acquisitions (equal
//!   across client counts: the access pattern is deterministic) and
//!   **latch waits** — blocked acquisitions plus flush-gate waits, the
//!   contention signal (scheduling-dependent; 0 at one client);
//! * **shard imbalance** — max/mean and cv of per-shard fix counts,
//!   reusing the `ext_distributed` §5.5 load-distribution metrics.
//!
//! **Batched-I/O queue-depth sweep** (new with the submission/completion
//! engine): query 2b again with the pool's batched read engine *enabled*
//! and client count = queue depth (1/2/4/8, capped by `--queue-depth`).
//! Concurrent misses pile into the engine's submission queue; a leader
//! drains and coalesces adjacent page ids into multi-page reads. Reported
//! per row, besides the usual columns: **batch/coalesced** (engine read
//! calls / pages delivered through multi-page runs) and **max qd** (the
//! submission queue's high-water mark). At depth 1 the engine degenerates
//! to solo one-page batches and reproduces the engine-off counters.

use crate::experiments::ext_distributed::{cv, imbalance};
use crate::report::{fmt_pages, ExperimentReport, Table};
use crate::runner::{load_store, HarnessConfig};
use crate::Result;
use starfish_core::{
    make_shared_store, ConcurrentObjectStore, IoEngineConfig, ModelKind, PolicyKind, StoreConfig,
};
use starfish_cost::QueryId;
use starfish_workload::{generate, MixKind, QueryOutcome, QueryRunner};

/// Client counts swept by default.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Queue depths the batched-I/O sweep drives (capped by `--queue-depth`).
pub const DEPTHS: [usize; 4] = [1, 2, 4, 8];

/// Runs the full sweep (1/2/4/8 clients).
pub fn run(config: &HarnessConfig) -> Result<ExperimentReport> {
    run_with(config, &THREADS)
}

/// Runs the sweep for an explicit list of client counts
/// (`starfish_repro --threads N` passes `[N]`).
pub fn run_with(config: &HarnessConfig, threads: &[usize]) -> Result<ExperimentReport> {
    let db = generate(&config.dataset());
    let mut table = Table::new(vec![
        "MODEL",
        "POLICY",
        "MIX",
        "CLIENTS",
        "pages/loop",
        "fixes/loop",
        "queries/s",
        "speedup",
        "latch sh/ex",
        "latch waits",
        "shard max/mean",
        "shard cv",
        "batch/coalesced",
        "max qd",
    ]);

    let mut fixes_diverged: Vec<String> = Vec::new();
    let mut serial_mismatch: Vec<String> = Vec::new();
    let mut serial_checked = false;
    // The anchor compares the shared pool's 1-client LRU row against the
    // serial pipeline, so it must itself run LRU whatever --policy the
    // sweep's caller selected — and it is only worth measuring when the
    // sweep actually contains a 1-client row to compare.
    let want_anchor = threads.iter().any(|&n| n.max(1) == 1);
    let anchor_config = HarnessConfig {
        policy: PolicyKind::Lru,
        ..*config
    };

    let fresh_store = |kind: ModelKind,
                       policy: PolicyKind,
                       shards: usize|
     -> Result<(Box<dyn ConcurrentObjectStore>, QueryRunner)> {
        let mut store = make_shared_store(
            kind,
            StoreConfig::with_buffer_pages(config.buffer_pages).policy(policy),
            shards,
        );
        let refs = store.load(&db)?;
        let runner = QueryRunner::new(refs, config.query_seed);
        Ok((store, runner))
    };

    // ---- Part 1: the read-only 2b sweep, model × policy × clients -------
    for kind in ModelKind::all() {
        // Serial anchor (regular BufferPool store, the paper's pipeline).
        let serial = if want_anchor {
            let (mut serial_store, serial_runner) = load_store(kind, &db, &anchor_config)?;
            match serial_runner.run(serial_store.as_mut(), QueryId::Q2b)? {
                QueryOutcome::Measured(m) => Some(m),
                QueryOutcome::Unsupported => unreachable!("query 2b is supported everywhere"),
            }
        } else {
            None
        };
        for policy in PolicyKind::all() {
            let mut base_qps: Option<f64> = None;
            let mut base_fixes: Option<u64> = None;
            for &n in threads {
                let n = n.max(1);
                let (mut store, runner) = fresh_store(kind, policy, n)?;
                let run = runner.run_concurrent(store.as_mut(), QueryId::Q2b, n)?;
                let m = match run.outcome {
                    QueryOutcome::Measured(m) => m,
                    QueryOutcome::Unsupported => unreachable!("2b supported"),
                };
                // Fixes are access counts: identical across clients.
                match base_fixes {
                    None => base_fixes = Some(m.snapshot.fixes),
                    Some(want) if want != m.snapshot.fixes => {
                        fixes_diverged.push(format!("{kind}/{policy}/2b/{n}"));
                    }
                    _ => {}
                }
                // One client under LRU must reproduce the serial pipeline
                // exactly — physical reads included.
                if n == 1 && policy == PolicyKind::Lru {
                    if let Some(serial) = serial {
                        serial_checked = true;
                        if m != serial {
                            serial_mismatch.push(format!("{kind}: {m:?} vs serial {serial:?}"));
                        }
                    }
                }
                let qps = run.units_per_sec();
                let speedup = match base_qps {
                    None => {
                        base_qps = Some(qps);
                        1.0
                    }
                    Some(base) if base > 0.0 => qps / base,
                    Some(_) => 0.0,
                };
                let shard_fixes: Vec<u64> = store.shard_stats().iter().map(|s| s.fixes).collect();
                table.push_row(vec![
                    kind.paper_name().to_string(),
                    policy.name().to_string(),
                    "2b read-only".to_string(),
                    n.to_string(),
                    fmt_pages(m.pages_per_unit()),
                    fmt_pages(m.fixes_per_unit()),
                    fmt_pages(qps),
                    format!("{speedup:.2}x"),
                    format!("{}/{}", m.snapshot.latch_shared, m.snapshot.latch_exclusive),
                    m.snapshot.latch_waits.to_string(),
                    format!("{:.2}", imbalance(&shard_fixes)),
                    format!("{:.3}", cv(&shard_fixes)),
                    "-".to_string(),
                    "-".to_string(),
                ]);
            }
        }
    }

    // ---- Part 2: the mixed read/write matrix, model × mix × clients -----
    // Runs at the harness-selected policy (--policy re-runs it under
    // another); the read-only mix doubles as the cross-check against the
    // part-1 protocol (different request loop, same access counts).
    for kind in ModelKind::all() {
        for mix in MixKind::all() {
            let mut base_qps: Option<f64> = None;
            let mut base_fixes: Option<u64> = None;
            for &n in threads {
                let n = n.max(1);
                let (mut store, runner) = fresh_store(kind, config.policy, n)?;
                let run = runner.run_mixed(store.as_mut(), mix, n)?;
                match base_fixes {
                    None => base_fixes = Some(run.snapshot.fixes),
                    Some(want) if want != run.snapshot.fixes => {
                        fixes_diverged.push(format!("{kind}/{}/{}/{n}", config.policy, mix.name()));
                    }
                    _ => {}
                }
                let qps = run.requests_per_sec();
                let speedup = match base_qps {
                    None => {
                        base_qps = Some(qps);
                        1.0
                    }
                    Some(base) if base > 0.0 => qps / base,
                    Some(_) => 0.0,
                };
                let loops = run.requests.max(1) as f64;
                let shard_fixes: Vec<u64> = store.shard_stats().iter().map(|s| s.fixes).collect();
                table.push_row(vec![
                    kind.paper_name().to_string(),
                    config.policy.name().to_string(),
                    mix.name().to_string(),
                    n.to_string(),
                    fmt_pages(run.snapshot.pages_io() as f64 / loops),
                    fmt_pages(run.snapshot.fixes as f64 / loops),
                    fmt_pages(qps),
                    format!("{speedup:.2}x"),
                    format!(
                        "{}/{}",
                        run.snapshot.latch_shared, run.snapshot.latch_exclusive
                    ),
                    run.snapshot.latch_waits.to_string(),
                    format!("{:.2}", imbalance(&shard_fixes)),
                    format!("{:.3}", cv(&shard_fixes)),
                    "-".to_string(),
                    "-".to_string(),
                ]);
            }
        }
    }

    // ---- Part 3: the batched-I/O queue-depth sweep ----------------------
    // Query 2b once more, engine ON, client count = queue depth: `d`
    // concurrent clients put up to `d` misses in the engine's submission
    // queue at once, which is exactly the pressure the leader drain
    // coalesces into multi-page reads.
    let depth_cap = config.queue_depth.unwrap_or(8);
    let depths: Vec<usize> = DEPTHS.iter().copied().filter(|&d| d <= depth_cap).collect();
    let mut best_speedup: Option<(ModelKind, usize, f64)> = None;
    // The paper's currency is I/O *calls*: coalescing turns several solo
    // reads into one multi-page call, so the depth-d read-call count vs
    // the depth-1 baseline is the engine's measured (and deterministic
    // enough) win even where wall-clock is not.
    let mut best_call_cut: Option<(ModelKind, usize, f64)> = None;
    for kind in ModelKind::all() {
        let mut base_qps: Option<f64> = None;
        let mut base_reads: Option<u64> = None;
        for &d in &depths {
            let mut store = make_shared_store(
                kind,
                StoreConfig::with_buffer_pages(config.buffer_pages)
                    .policy(config.policy)
                    .io_engine(IoEngineConfig::enabled()),
                d,
            );
            let refs = store.load(&db)?;
            let runner = QueryRunner::new(refs, config.query_seed);
            let run = runner.run_concurrent(store.as_mut(), QueryId::Q2b, d)?;
            let m = match run.outcome {
                QueryOutcome::Measured(m) => m,
                QueryOutcome::Unsupported => unreachable!("2b supported"),
            };
            let qps = run.units_per_sec();
            let speedup = match base_qps {
                None => {
                    base_qps = Some(qps);
                    1.0
                }
                Some(base) if base > 0.0 => qps / base,
                Some(_) => 0.0,
            };
            if d >= 4 && best_speedup.is_none_or(|(_, _, s)| speedup > s) {
                best_speedup = Some((kind, d, speedup));
            }
            let s = &m.snapshot;
            match base_reads {
                None => base_reads = Some(s.read_calls),
                Some(base) if base > 0 && d >= 4 => {
                    let cut = 100.0 * (1.0 - s.read_calls as f64 / base as f64);
                    if best_call_cut.is_none_or(|(_, _, c)| cut > c) {
                        best_call_cut = Some((kind, d, cut));
                    }
                }
                Some(_) => {}
            }
            let shard_fixes: Vec<u64> = store.shard_stats().iter().map(|x| x.fixes).collect();
            table.push_row(vec![
                kind.paper_name().to_string(),
                config.policy.name().to_string(),
                "2b batched-io".to_string(),
                d.to_string(),
                fmt_pages(m.pages_per_unit()),
                fmt_pages(m.fixes_per_unit()),
                fmt_pages(qps),
                format!("{speedup:.2}x"),
                format!("{}/{}", s.latch_shared, s.latch_exclusive),
                s.latch_waits.to_string(),
                format!("{:.2}", imbalance(&shard_fixes)),
                format!("{:.3}", cv(&shard_fixes)),
                format!("{}/{}", s.batched_read_calls, s.coalesced_pages),
                s.max_queue_depth.to_string(),
            ]);
        }
    }

    let mut notes = vec![
        format!(
            "{} objects, {}-page shared buffer split over (clients) lock-striped \
             shards; every cell reloads the store and runs the full protocol \
             (cold start, concurrent serving, writer-quiescing disconnect \
             flush) with that many client threads",
            config.n_objects, config.buffer_pages
        ),
        "the read-only rows sweep every model × policy on query 2b; the \
         mixed matrix (read-only / 50-50 / update-heavy request streams, \
         updates = query-3a root patches through the latched &self write \
         surface) runs at the harness-selected policy — rerun with --policy \
         to cross it with another"
            .to_string(),
        "latch sh/ex counts shared/exclusive group-latch acquisitions \
         (deterministic — they follow the access plan); latch waits counts \
         blocked acquisitions plus flush-gate waits and is the contention \
         signal: 0 at one client, scheduling-dependent above"
            .to_string(),
        "shard imbalance = max/mean and cv of per-shard buffer fixes \
         (the ext-distributed §5.5 metrics applied to shards instead of nodes)"
            .to_string(),
        "fixes/loop is the deterministic column (accesses are \
         scheduling-independent); pages/loop may drift slightly at >1 client \
         as threads race on cache residency; queries/s and speedup are \
         wall-clock and hardware-dependent — on a single core expect ≈1.0x \
         (the experiment then measures locking overhead)"
            .to_string(),
    ];
    notes.push(if !serial_checked {
        "serial anchor not checked (no 1-client LRU row in this sweep); run \
         with --threads 1 to verify the shared pool against the serial \
         pipeline"
            .to_string()
    } else if serial_mismatch.is_empty() {
        "1-client LRU rows verified identical to the serial QueryRunner \
         measurement, counter for counter — the shared pool reproduces the \
         paper's single-client numbers exactly"
            .to_string()
    } else {
        format!(
            "WARNING: 1-client runs diverged from the serial pipeline at {} — \
             the shared pool is not behaviour-preserving",
            serial_mismatch.join("; ")
        )
    });
    notes.push(format!(
        "batched-I/O rows (2b batched-io) rerun the read sweep with the \
         pool's submission/completion engine enabled and client count = \
         queue depth (swept {depths:?}; cap with --queue-depth); \
         batch/coalesced = engine read calls / pages delivered through \
         multi-page coalesced runs, max qd = submission-queue high-water \
         mark; at depth 1 every batch is a solo one-page read and the \
         counters match the engine-off sweep"
    ));
    notes.push(match best_speedup {
        Some((kind, d, s)) => format!(
            "best batched-I/O throughput at depth >= 4: {s:.2}x over depth 1 \
             ({kind}, depth {d}) — wall-clock, hardware-dependent"
        ),
        None => "no depth >= 4 in this sweep (raise --queue-depth to measure \
                 the coalescing throughput win)"
            .to_string(),
    });
    if let Some((kind, d, cut)) = best_call_cut {
        notes.push(format!(
            "best batched-I/O read-call reduction at depth >= 4: {cut:.1}% \
             fewer disk read calls than depth 1 ({kind}, depth {d}) — the \
             coalescing win in the paper's own I/O-call currency (the \
             simulated disk has no seek latency for wall-clock to hide)"
        ));
    }
    notes.push(if fixes_diverged.is_empty() {
        "fix counts verified identical across client counts for every \
         (model, policy, mix) — concurrency changes physical I/O only, never \
         the access pattern"
            .to_string()
    } else {
        format!(
            "WARNING: fix counts diverged across client counts at {} — a \
             scheduling-dependent access path, which should be impossible",
            fixes_diverged.join(", ")
        )
    });

    Ok(ExperimentReport {
        id: "ext-concurrency".into(),
        title: "Extension — concurrent read/write serving over a sharded, latched buffer pool"
            .into(),
        table,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_models_policies_mixes_and_client_counts() {
        // Cap the engine sweep at depth 2 to keep the fast test fast.
        let config = HarnessConfig {
            queue_depth: Some(2),
            ..HarnessConfig::fast()
        };
        let report = run_with(&config, &[1, 2]).unwrap();
        let models = ModelKind::all().len();
        let policies = PolicyKind::all().len();
        let mixes = MixKind::all().len();
        let depths = 2; // DEPTHS capped at --queue-depth 2
        assert_eq!(
            report.table.rows.len(),
            models * policies * 2 + models * mixes * 2 + models * depths,
            "read-only sweep rows + mixed matrix rows + batched-I/O rows"
        );
        // Engine rows carry engine columns; engine-off rows dash them out.
        for row in &report.table.rows {
            if row[2] == "2b batched-io" {
                assert_ne!(row[12], "-");
                assert_ne!(row[13], "-");
                if row[3] == "1" {
                    // Depth 1: solo batches, queue never deeper than 1.
                    assert_eq!(row[13], "1", "depth-1 engine row: {row:?}");
                    assert!(row[12].ends_with("/0"), "nothing to coalesce: {row:?}");
                }
            } else {
                assert_eq!(row[12], "-");
                assert_eq!(row[13], "-");
            }
        }
        // The correctness anchors held: no WARNING notes.
        assert!(
            report
                .notes
                .iter()
                .any(|n| n.contains("single-client numbers exactly"))
                && !report.notes.iter().any(|n| n.contains("WARNING")),
            "anchors failed: {:?}",
            report.notes
        );
        // Speedup column of every 1-client row is exactly 1.00x, and its
        // latch-wait column is 0 (no contention possible).
        for row in report.table.rows.iter().filter(|r| r[3] == "1") {
            assert_eq!(row[7], "1.00x");
            assert_eq!(row[9], "0", "1 client cannot wait on a latch");
        }
        // Update mixes report exclusive-latch work; read-only rows none.
        let has_excl = |r: &Vec<String>| !r[8].ends_with("/0");
        assert!(report
            .table
            .rows
            .iter()
            .filter(|r| r[2] == "update-heavy")
            .all(has_excl));
        assert!(report
            .table
            .rows
            .iter()
            .filter(|r| r[2] == "read-only")
            .all(|r| !has_excl(r)));
    }
}
