//! Extension experiment: concurrent query serving over the sharded pool.
//!
//! The paper measures one client behind one 1200-page LRU buffer; a
//! production system serves many. This experiment reruns the navigation
//! workload (query 2b, the multi-loop query) with 1/2/4/8 client threads
//! sharing one `SharedBufferPool` (shard count = client count), for every
//! storage model × replacement policy, and reports:
//!
//! * **pages/loop** and **fixes/loop** — the paper's per-unit metrics,
//!   now under concurrency. Fixes must not move at all (accesses are
//!   scheduling-independent); physical pages may, because clients race on
//!   cache residency;
//! * **queries/s** and the speedup over one client — wall-clock
//!   throughput of the read phase (hardware-dependent: expect ≈flat on a
//!   single core, scaling with cores otherwise);
//! * **shard imbalance** — max/mean and cv of per-shard fix counts,
//!   reusing the `ext_distributed` §5.5 load-distribution metrics: the
//!   same skew story, one level down the storage stack.
//!
//! The one-client row doubles as a correctness anchor: under LRU it is
//! checked cell-for-cell against the serial `QueryRunner` measurement
//! (same seed ⇒ identical counters), the acceptance gate for the shared
//! pool.

use crate::experiments::ext_distributed::{cv, imbalance};
use crate::report::{fmt_pages, ExperimentReport, Table};
use crate::runner::{load_store, HarnessConfig};
use crate::Result;
use starfish_core::{make_shared_store, ModelKind, PolicyKind, StoreConfig};
use starfish_cost::QueryId;
use starfish_workload::{generate, QueryOutcome, QueryRunner};

/// Client counts swept by default.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Runs the full sweep (1/2/4/8 clients).
pub fn run(config: &HarnessConfig) -> Result<ExperimentReport> {
    run_with(config, &THREADS)
}

/// Runs the sweep for an explicit list of client counts
/// (`starfish_repro --threads N` passes `[N]`).
pub fn run_with(config: &HarnessConfig, threads: &[usize]) -> Result<ExperimentReport> {
    let db = generate(&config.dataset());
    let mut table = Table::new(vec![
        "MODEL",
        "POLICY",
        "CLIENTS",
        "2b pages/loop",
        "fixes/loop",
        "queries/s",
        "speedup",
        "shard max/mean",
        "shard cv",
    ]);

    let mut fixes_diverged: Vec<String> = Vec::new();
    let mut serial_mismatch: Vec<String> = Vec::new();
    let mut serial_checked = false;
    // The anchor compares the shared pool's 1-client LRU row against the
    // serial pipeline, so it must itself run LRU whatever --policy the
    // sweep's caller selected — and it is only worth measuring when the
    // sweep actually contains a 1-client row to compare.
    let want_anchor = threads.iter().any(|&n| n.max(1) == 1);
    let anchor_config = HarnessConfig {
        policy: PolicyKind::Lru,
        ..*config
    };
    for kind in ModelKind::all() {
        // Serial anchor (regular BufferPool store, the paper's pipeline).
        let serial = if want_anchor {
            let (mut serial_store, serial_runner) = load_store(kind, &db, &anchor_config)?;
            match serial_runner.run(serial_store.as_mut(), QueryId::Q2b)? {
                QueryOutcome::Measured(m) => Some(m),
                QueryOutcome::Unsupported => unreachable!("query 2b is supported everywhere"),
            }
        } else {
            None
        };
        for policy in PolicyKind::all() {
            let mut base_qps: Option<f64> = None;
            let mut base_fixes: Option<u64> = None;
            for &n in threads {
                let n = n.max(1);
                let mut store = make_shared_store(
                    kind,
                    StoreConfig::with_buffer_pages(config.buffer_pages).policy(policy),
                    n,
                );
                let refs = store.load(&db)?;
                let runner = QueryRunner::new(refs, config.query_seed);
                let run = runner.run_concurrent(store.as_mut(), QueryId::Q2b, n)?;
                let m = match run.outcome {
                    QueryOutcome::Measured(m) => m,
                    QueryOutcome::Unsupported => unreachable!("2b supported"),
                };
                // Fixes are access counts: identical across clients.
                match base_fixes {
                    None => base_fixes = Some(m.snapshot.fixes),
                    Some(want) if want != m.snapshot.fixes => {
                        fixes_diverged.push(format!("{kind}/{policy}/{n}"));
                    }
                    _ => {}
                }
                // One client under LRU must reproduce the serial pipeline
                // exactly — physical reads included.
                if n == 1 && policy == PolicyKind::Lru {
                    if let Some(serial) = serial {
                        serial_checked = true;
                        if m != serial {
                            serial_mismatch.push(format!("{kind}: {m:?} vs serial {serial:?}"));
                        }
                    }
                }
                let qps = run.units_per_sec();
                let speedup = match base_qps {
                    None => {
                        base_qps = Some(qps);
                        1.0
                    }
                    Some(base) if base > 0.0 => qps / base,
                    Some(_) => 0.0,
                };
                let shard_fixes: Vec<u64> = store.shard_stats().iter().map(|s| s.fixes).collect();
                table.push_row(vec![
                    kind.paper_name().to_string(),
                    policy.name().to_string(),
                    n.to_string(),
                    fmt_pages(m.pages_per_unit()),
                    fmt_pages(m.fixes_per_unit()),
                    fmt_pages(qps),
                    format!("{speedup:.2}x"),
                    format!("{:.2}", imbalance(&shard_fixes)),
                    format!("{:.3}", cv(&shard_fixes)),
                ]);
            }
        }
    }

    let mut notes = vec![
        format!(
            "{} objects, {}-page shared buffer split over (clients) lock-striped \
             shards; every cell reloads the store and runs the full query-2b \
             protocol (cold start, concurrent reads, disconnect flush) with that \
             many client threads",
            config.n_objects, config.buffer_pages
        ),
        "shard imbalance = max/mean and cv of per-shard buffer fixes \
         (the ext-distributed §5.5 metrics applied to shards instead of nodes)"
            .to_string(),
        "fixes/loop is the deterministic column (accesses are \
         scheduling-independent); pages/loop may drift slightly at >1 client \
         as threads race on cache residency; queries/s and speedup are \
         wall-clock and hardware-dependent — on a single core expect ≈1.0x \
         (the experiment then measures locking overhead)"
            .to_string(),
        "updates stay single-writer: query 2b is read-only, and the runner \
         applies query-3 updates from the driver thread only (see ROADMAP \
         for the concurrent-update follow-up)"
            .to_string(),
    ];
    notes.push(if !serial_checked {
        "serial anchor not checked (no 1-client LRU row in this sweep); run \
         with --threads 1 to verify the shared pool against the serial \
         pipeline"
            .to_string()
    } else if serial_mismatch.is_empty() {
        "1-client LRU rows verified identical to the serial QueryRunner \
         measurement, counter for counter — the shared pool reproduces the \
         paper's single-client numbers exactly"
            .to_string()
    } else {
        format!(
            "WARNING: 1-client runs diverged from the serial pipeline at {} — \
             the shared pool is not behaviour-preserving",
            serial_mismatch.join("; ")
        )
    });
    notes.push(if fixes_diverged.is_empty() {
        "fix counts verified identical across client counts for every \
         (model, policy) — concurrency changes physical I/O only, never the \
         access pattern"
            .to_string()
    } else {
        format!(
            "WARNING: fix counts diverged across client counts at {} — a \
             scheduling-dependent access path, which should be impossible",
            fixes_diverged.join(", ")
        )
    });

    Ok(ExperimentReport {
        id: "ext-concurrency".into(),
        title: "Extension — concurrent query serving over a sharded buffer pool".into(),
        table,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_models_policies_and_client_counts() {
        let report = run_with(&HarnessConfig::fast(), &[1, 2]).unwrap();
        let models = ModelKind::all().len();
        let policies = PolicyKind::all().len();
        assert_eq!(report.table.rows.len(), models * policies * 2);
        // The correctness anchors held: no WARNING notes.
        assert!(
            report
                .notes
                .iter()
                .any(|n| n.contains("single-client numbers exactly"))
                && !report.notes.iter().any(|n| n.contains("WARNING")),
            "anchors failed: {:?}",
            report.notes
        );
        // Speedup column of every 1-client row is exactly 1.00x.
        for row in report.table.rows.iter().filter(|r| r[2] == "1") {
            assert_eq!(row[6], "1.00x");
        }
    }
}
