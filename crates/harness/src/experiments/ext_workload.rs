//! Extension experiment: declarative workloads the paper never ran.
//!
//! The AccessPlan redesign makes workloads *data* — so this experiment
//! sweeps the shipped non-paper scenarios ([`WorkloadSpec::shipped`]):
//!
//! * **deep-nav** — 4 reference hops instead of the paper's 2. The
//!   normalized models pay one set-oriented step per hop while the direct
//!   models re-read ever more container pages; the paper's 2-hop ranking
//!   is stress-tested at depth.
//! * **hot-set** — 90% of navigation roots from a 16-object hot set. The
//!   paper's uniform picks keep the buffer cold; skew is where
//!   replacement policies actually differ.
//! * **scan-then-update** — a full scan that floods the buffer, then
//!   single-hop update loops. Adversarial for LRU (the scan evicts the
//!   working set), the classic batch-behind-OLTP shape.
//! * **drift-gradual / drift-sudden / drift-cycle** — the dynamic
//!   scenarios: a sliding hot window, an abrupt hot-spot relocation and a
//!   `phase`-cycled pick distribution. The `ext-drift` experiment studies
//!   these against the static baseline per policy; here they ride in the
//!   same sweep so the determinism contract covers the drift vocabulary
//!   too.
//!
//! … across the five storage models × all replacement policies. Reported
//! per cell: per-unit reads/writes/pages/calls/fixes. The notes verify the
//! spec-level determinism contract: for a given scenario, **units, per-hop
//! navigation cardinalities, scanned-object and update counts are
//! identical for every (model, policy) cell** — only physical I/O may
//! move. This is the paper's "shared database" guarantee lifted to
//! arbitrary declarative plans.
//!
//! The same rendering backs `starfish_repro --workload <file.json>` via
//! [`report_for_spec`], which runs one ad-hoc spec across the models at
//! the harness-selected policy.

use crate::report::{fmt_pages, ExperimentReport, Table};
use crate::runner::{
    measure_workload_cluster_on, measure_workload_concurrent_on, measure_workload_on,
    HarnessConfig, WorkloadRow,
};
use crate::Result;
use starfish_core::{ModelKind, PolicyKind};
use starfish_cost::{estimate_plan, EstimatorInputs, ModelVariant, PlanContext, PlanOp};
use starfish_workload::{generate, lower_spec, WorkloadSpec};

/// The cost-model variant that prices each measured model. The primed
/// (no-waste) variants don't arise: the walker prices the layouts the
/// harness builds.
fn variant_of(kind: ModelKind) -> ModelVariant {
    match kind {
        ModelKind::Dsm => ModelVariant::Dsm,
        ModelKind::DasdbsDsm => ModelVariant::DasdbsDsm,
        ModelKind::Nsm => ModelVariant::Nsm,
        ModelKind::NsmIndexed => ModelVariant::NsmIndexed,
        ModelKind::DasdbsNsm => ModelVariant::DasdbsNsm,
    }
}

/// The plan's own unit count (summed top-level loop counts), mirroring
/// `Executor::units_of` so predicted and measured cells share the
/// denominator even on rows the model cannot execute.
fn plan_units(ops: &[PlanOp]) -> u64 {
    ops.iter()
        .map(|op| match op {
            PlanOp::Loop { count, .. } => *count,
            _ => 0,
        })
        .sum::<u64>()
        .max(1)
}

/// Expected page I/Os per unit for `spec` under `kind` from the cost
/// model's plan-walker (uniform Table 3 pricing — no placement feedback),
/// or `None` where the model cannot price an op of the plan, the same
/// rows the executor reports as unsupported.
fn predicted_pages(config: &HarnessConfig, spec: &WorkloadSpec, kind: ModelKind) -> Option<f64> {
    let inputs = EstimatorInputs::new(config.dataset().profile());
    let ctx = PlanContext {
        buffer_pages: config.buffer_pages as f64,
        hot_span_pages: None,
    };
    let ops = lower_spec(spec, config.n_objects);
    estimate_plan(variant_of(kind), &inputs, &ctx, &ops)
        .map(|est| est.total() / plan_units(&ops) as f64)
}

/// Pushes one measured row; returns the model-invariant shape for the
/// determinism check.
fn push_row(
    table: &mut Table,
    scenario: &str,
    policy: PolicyKind,
    row: &WorkloadRow,
    predicted: Option<f64>,
) -> (u64, Vec<u64>, u64, u64) {
    let pred_cell = predicted.map(fmt_pages).unwrap_or_else(|| "-".to_string());
    match &row.cell {
        Some(cell) => {
            table.push_row(vec![
                scenario.to_string(),
                row.model.paper_name().to_string(),
                policy.name().to_string(),
                row.units.to_string(),
                fmt_pages(cell.reads),
                fmt_pages(cell.writes),
                fmt_pages(cell.pages),
                fmt_pages(cell.calls),
                fmt_pages(cell.fixes),
                pred_cell,
            ]);
        }
        None => {
            table.push_row(vec![
                scenario.to_string(),
                row.model.paper_name().to_string(),
                policy.name().to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                pred_cell,
            ]);
        }
    }
    (row.units, row.nav_seen.clone(), row.scanned, row.updates)
}

fn headers() -> Vec<&'static str> {
    vec![
        "SCENARIO",
        "MODEL",
        "POLICY",
        "units",
        "reads/u",
        "writes/u",
        "pages/u",
        "calls/u",
        "fixes/u",
        "pred pg/u",
    ]
}

/// Runs the shipped-scenario sweep: scenarios × models × policies.
pub fn run(config: &HarnessConfig) -> Result<ExperimentReport> {
    let db = generate(&config.dataset());
    let mut table = Table::new(headers());
    let mut drifted: Vec<String> = Vec::new();

    for spec in WorkloadSpec::shipped() {
        let mut shape: Option<(u64, Vec<u64>, u64, u64)> = None;
        for policy in PolicyKind::all() {
            let cfg = HarnessConfig { policy, ..*config };
            let rows = measure_workload_on(&db, &cfg, &ModelKind::all(), &spec)?;
            for row in &rows {
                let predicted = predicted_pages(config, &spec, row.model);
                let got = push_row(&mut table, &spec.name, policy, row, predicted);
                if row.cell.is_none() {
                    continue;
                }
                match &shape {
                    None => shape = Some(got),
                    Some(want) if *want != got => {
                        drifted.push(format!("{}/{}/{}", spec.name, row.model, policy));
                    }
                    _ => {}
                }
            }
        }
    }

    let mut notes = vec![
        format!(
            "{} objects, {}-page buffer; every cell reloads the store and runs \
             the full protocol (cold start, plan execution, counted disconnect \
             flush), normalized per plan unit",
            config.n_objects, config.buffer_pages
        ),
        "scenarios come from WorkloadSpec::shipped() — the static trio \
         (deep-nav, hot-set, scan-then-update) plus the drifting trio \
         (drift-gradual, drift-sudden, drift-cycle — see ext-drift for the \
         policy study); run any of them, or an ad-hoc JSON plan, with \
         starfish_repro --workload (add --threads N for the concurrent \
         surface)"
            .to_string(),
        "deep-nav compounds the per-hop cost difference the paper measured \
         at 2 hops; hot-set is where replacement policies separate (compare \
         the LRU and MRU fixes/u columns at equal access counts); \
         scan-then-update shows the scan-flood regime LRU-2 was built for"
            .to_string(),
        "pred pg/u is the cost plan-walker's expected page I/Os per unit \
         (lower_spec → estimate_plan, uniform Table 3 pricing, no placement \
         feedback) — compare against the measured pages/u column; '-' marks \
         plans the model cannot price, the same rows the executor reports \
         as unsupported"
            .to_string(),
    ];
    notes.push(if drifted.is_empty() {
        "determinism check passed: units, per-hop navigation cardinalities, \
         scanned-object and update counts are identical across every (model, \
         policy) cell of each scenario — declarative plans inherit the \
         paper's shared-access-sequence guarantee"
            .to_string()
    } else {
        format!(
            "WARNING: access sequences drifted across models/policies at {} — \
             the executor's determinism contract is broken",
            drifted.join(", ")
        )
    });

    Ok(ExperimentReport {
        id: "ext-workload".into(),
        title: "Extension — declarative non-paper workloads (deep navigation, hot-set skew, \
                scan-then-update) across models × policies"
            .into(),
        table,
        notes,
    })
}

/// Runs one declarative spec across the five models at the
/// harness-selected policy — the report behind
/// `starfish_repro --workload <file.json>`.
pub fn report_for_spec(config: &HarnessConfig, spec: &WorkloadSpec) -> Result<ExperimentReport> {
    let db = generate(&config.dataset());
    let rows = measure_workload_on(&db, config, &ModelKind::all(), spec)?;
    spec_report(config, spec, &rows, None)
}

/// [`report_for_spec`] over the concurrent surface — the report behind
/// `starfish_repro --workload <spec> --threads N`. Counters must match the
/// serial report (the executor's thread-count invariance); with 1 thread
/// they match exactly, physical reads included.
pub fn report_for_spec_concurrent(
    config: &HarnessConfig,
    spec: &WorkloadSpec,
    threads: usize,
) -> Result<ExperimentReport> {
    let db = generate(&config.dataset());
    let rows = measure_workload_concurrent_on(&db, config, &ModelKind::all(), spec, threads)?;
    spec_report(config, spec, &rows, Some(threads))
}

/// The `--workload <spec> --sweep` report: one declarative spec crossed
/// with every replacement policy and every client count in `threads`,
/// through one reporting path shared by the concurrency, cluster and
/// drift scenarios. Without `nodes` each cell serves the spec from the
/// shared surface (`threads[i]` clients over `threads[i]` shards); with
/// `--nodes N` each cell serves it from a routed N-node cluster
/// (`threads[i]` clients, `threads[i]` reactor workers per node). The
/// model-invariant shape (units, per-hop navigation, scanned and update
/// counts) must agree across **every** cell — policy, client count and
/// cluster shape may move physical I/O only.
pub fn report_for_spec_sweep(
    config: &HarnessConfig,
    spec: &WorkloadSpec,
    threads: &[usize],
    nodes: Option<usize>,
) -> Result<ExperimentReport> {
    let db = generate(&config.dataset());
    let mut table = Table::new(vec![
        "SCENARIO", "MODEL", "POLICY", "CLIENTS", "NODES", "units", "reads/u", "writes/u",
        "pages/u", "calls/u", "fixes/u",
    ]);
    let mut shape: Option<(u64, Vec<u64>, u64, u64)> = None;
    let mut drifted: Vec<String> = Vec::new();
    for policy in PolicyKind::all() {
        let cfg = HarnessConfig { policy, ..*config };
        for &n in threads {
            let n = n.max(1);
            let rows = match nodes {
                Some(k) => {
                    measure_workload_cluster_on(&db, &cfg, &ModelKind::all(), spec, k, n, n)?
                }
                None => measure_workload_concurrent_on(&db, &cfg, &ModelKind::all(), spec, n)?,
            };
            for row in &rows {
                match &row.cell {
                    Some(cell) => table.push_row(vec![
                        spec.name.clone(),
                        row.model.paper_name().to_string(),
                        policy.name().to_string(),
                        n.to_string(),
                        nodes.unwrap_or(1).to_string(),
                        row.units.to_string(),
                        fmt_pages(cell.reads),
                        fmt_pages(cell.writes),
                        fmt_pages(cell.pages),
                        fmt_pages(cell.calls),
                        fmt_pages(cell.fixes),
                    ]),
                    None => table.push_row(vec![
                        spec.name.clone(),
                        row.model.paper_name().to_string(),
                        policy.name().to_string(),
                        n.to_string(),
                        nodes.unwrap_or(1).to_string(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]),
                }
                if row.cell.is_none() {
                    continue;
                }
                let got = (row.units, row.nav_seen.clone(), row.scanned, row.updates);
                match &shape {
                    None => shape = Some(got),
                    Some(want) if *want != got => {
                        drifted.push(format!("{}/{}/{}c", row.model, policy, n));
                    }
                    _ => {}
                }
            }
        }
    }

    let mut notes = vec![
        format!(
            "{} objects, {}-page buffer; spec '{}' crossed with every \
             replacement policy × client counts {threads:?}, served {}",
            config.n_objects,
            config.buffer_pages,
            spec.name,
            match nodes {
                Some(k) => format!(
                    "by a routed {k}-node cluster (clients = reactor workers \
                     per node = the swept count, proportional buffer share \
                     per node)"
                ),
                None => "from the shared surface (shards = clients)".to_string(),
            }
        ),
        format!("spec JSON: {}", spec.to_json()),
    ];
    notes.push(if drifted.is_empty() {
        "determinism check passed: units, per-hop navigation cardinalities, \
         scanned-object and update counts are identical across every \
         (model, policy, clients) cell — policy, concurrency and cluster \
         shape move physical I/O only"
            .to_string()
    } else {
        format!(
            "WARNING: access sequences drifted across cells at {} — the \
             executor's determinism contract is broken",
            drifted.join(", ")
        )
    });

    Ok(ExperimentReport {
        id: format!("workload-sweep-{}", spec.name),
        title: format!(
            "Declarative workload sweep — {} × policies × clients{}",
            spec.name,
            match nodes {
                Some(k) => format!(" on a {k}-node cluster"),
                None => String::new(),
            }
        ),
        table,
        notes,
    })
}

fn spec_report(
    config: &HarnessConfig,
    spec: &WorkloadSpec,
    rows: &[WorkloadRow],
    threads: Option<usize>,
) -> Result<ExperimentReport> {
    let mut table = Table::new(headers());
    let mut shape: Option<(u64, Vec<u64>, u64, u64)> = None;
    let mut drifted = false;
    for row in rows {
        let predicted = predicted_pages(config, spec, row.model);
        let got = push_row(&mut table, &spec.name, config.policy, row, predicted);
        if row.cell.is_none() {
            continue;
        }
        match &shape {
            None => shape = Some(got),
            Some(want) if *want != got => drifted = true,
            _ => {}
        }
    }

    let mut notes = vec![
        match threads {
            Some(n) => format!(
                "{} objects, {}-page buffer ({} shards), {} replacement; \
                 {n} client threads over the shared surface — counters are \
                 thread-count invariant, and a 1-thread run reproduces the \
                 serial measurement exactly",
                config.n_objects, config.buffer_pages, n, config.policy
            ),
            None => format!(
                "{} objects, {}-page buffer, {} replacement; per-unit counters \
                 over the paper's measurement protocol",
                config.n_objects, config.buffer_pages, config.policy
            ),
        },
        if spec.description.is_empty() {
            format!("spec: {}", spec.name)
        } else {
            format!("spec: {} — {}", spec.name, spec.description)
        },
        format!("spec JSON: {}", spec.to_json()),
    ];
    if let Some((units, nav, scanned, updates)) = &shape {
        notes.push(format!(
            "model-invariant shape: {units} units, nav hops {nav:?}, {scanned} scanned, \
             {updates} updates{}",
            if drifted {
                " — WARNING: some models disagreed (determinism contract broken)"
            } else {
                " (identical for every supporting model)"
            }
        ));
    }

    Ok(ExperimentReport {
        id: format!("workload-{}", spec.name),
        title: format!("Declarative workload — {}", spec.name),
        table,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_sweep_covers_scenarios_models_policies() {
        let report = run(&HarnessConfig::fast()).unwrap();
        let want = WorkloadSpec::shipped().len() * ModelKind::all().len() * PolicyKind::all().len();
        assert_eq!(report.table.rows.len(), want);
        assert!(
            !report.notes.iter().any(|n| n.contains("WARNING")),
            "determinism check failed: {:?}",
            report.notes
        );
        // scan-then-update rows must write; deep-nav rows must not.
        for row in &report.table.rows {
            if row[0] == "deep-nav" {
                assert_eq!(row[5], "0", "deep-nav never writes: {row:?}");
            }
            if row[0] == "scan-then-update" {
                assert_ne!(row[5], "0", "scan-then-update must write: {row:?}");
            }
            // The predicted column prices exactly the plans the executor
            // can run: '-' in one means '-' in the other.
            assert_eq!(row.len(), headers().len());
            assert_eq!(
                row[9] == "-",
                row[4] == "-",
                "predicted/measured support must agree: {row:?}"
            );
            if row[9] != "-" {
                let pred: f64 = row[9].parse().unwrap();
                assert!(pred.is_finite() && pred >= 0.0, "bad prediction: {row:?}");
            }
        }
    }

    #[test]
    fn spec_report_runs_an_adhoc_plan() {
        let json = r#"{
            "name": "tiny-probe",
            "description": "three cold key lookups",
            "stream": 40,
            "ops": [
                {"op": "loop", "count": 3, "body": [
                    {"op": "pick_random", "n": 1},
                    {"op": "get_by_key", "proj": "all"},
                    {"op": "cold_restart"}
                ]}
            ]
        }"#;
        let spec = WorkloadSpec::from_json(json).unwrap();
        let report = report_for_spec(&HarnessConfig::fast(), &spec).unwrap();
        assert_eq!(report.table.rows.len(), ModelKind::all().len());
        assert!(report.id.contains("tiny-probe"));
        assert!(report.notes.iter().any(|n| n.contains("spec JSON")));
        // Every model supports key lookups; all cells measured.
        assert!(report.table.rows.iter().all(|r| r[3] == "3"));
    }

    #[test]
    fn sweep_report_shares_one_path_across_surfaces() {
        // --sweep: policies × client counts; without --nodes the shared
        // surface serves, with --nodes a routed cluster does. The
        // model-invariant shape must agree across every cell of both.
        let config = HarnessConfig::fast();
        let spec = WorkloadSpec::for_query(starfish_cost::QueryId::Q2b);
        for nodes in [None, Some(3)] {
            let report = report_for_spec_sweep(&config, &spec, &[1, 2], nodes).unwrap();
            let want = PolicyKind::all().len() * 2 * ModelKind::all().len();
            assert_eq!(report.table.rows.len(), want);
            assert!(
                !report.notes.iter().any(|n| n.contains("WARNING")),
                "determinism failed ({nodes:?} nodes): {:?}",
                report.notes
            );
            let want_nodes = nodes.unwrap_or(1).to_string();
            assert!(report.table.rows.iter().all(|r| r[4] == want_nodes));
            // Units are cell-invariant wherever the model supports the plan.
            let units: Vec<&String> = report
                .table
                .rows
                .iter()
                .map(|r| &r[5])
                .filter(|u| *u != "-")
                .collect();
            assert!(!units.is_empty());
            assert!(units.iter().all(|u| *u == units[0]));
        }
    }

    #[test]
    fn concurrent_spec_report_matches_serial_counters() {
        // --workload --threads N: units and fix counts (access counts) are
        // thread-count invariant, so the 4-thread report's cells agree
        // with the serial report's.
        let config = HarnessConfig::fast();
        let spec = WorkloadSpec::drift_gradual();
        let serial = report_for_spec(&config, &spec).unwrap();
        let conc = report_for_spec_concurrent(&config, &spec, 4).unwrap();
        assert_eq!(serial.table.rows.len(), conc.table.rows.len());
        for (s, c) in serial.table.rows.iter().zip(&conc.table.rows) {
            assert_eq!(s[1], c[1], "model order");
            assert_eq!(s[3], c[3], "units moved across thread counts");
            assert_eq!(s[8], c[8], "fixes/u moved across thread counts");
        }
        assert!(conc.notes.iter().any(|n| n.contains("4 client threads")));
    }
}
