//! Extension experiment: commit durability under the write-ahead log.
//!
//! The paper's protocol flushes deferred pages at "database disconnect" —
//! a crash before that point silently loses every applied update. With the
//! WAL under the shared pool, each root update commits a checksummed
//! after-image batch to the log before the call returns, so a kill at any
//! op boundary preserves exactly the committed prefix.
//!
//! This experiment measures what that durability costs and what group
//! commit buys back: query-3a-shaped root updates (one commit per object)
//! through `shared_update_roots`, swept over **fsync mode × writer
//! count** for every storage model. Reported per row:
//!
//! * **commits** — durably logged ops (deterministic: one per object);
//! * **log flushes / log pages** — device write calls and pages the log
//!   absorbed. Per-commit mode pays one flush per commit; group commit
//!   lets concurrent writers share a leader's flush, so flushes ≤ commits
//!   and the ratio improves with writer count (scheduling-dependent);
//! * **commits/flush** — the amortization factor, the headline number;
//! * **commits/s** — wall-clock commit throughput (hardware-dependent);
//! * **recovered pages** — after the timed phase the store is crashed
//!   (volatile state dropped, no flush) and recovered from the log; the
//!   row reports how many pages the redo scan replayed. A cold scan then
//!   verifies every root carries the patched name — updates survived the
//!   kill through the log alone.

use crate::report::{fmt_pages, ExperimentReport, Table};
use crate::runner::HarnessConfig;
use crate::Result;
use starfish_core::{make_shared_store, FsyncMode, ModelKind, RootPatch, StoreConfig, WalConfig};
use starfish_nf2::station::Station;
use starfish_workload::generate;
use std::thread;
use std::time::Instant;

/// Writer counts swept by default.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Runs the full sweep (1/2/4/8 writers, both fsync modes).
pub fn run(config: &HarnessConfig) -> Result<ExperimentReport> {
    run_with(config, &THREADS)
}

/// Runs the sweep for an explicit list of writer counts
/// (`starfish_repro --threads N` passes `[N]`); `config.fsync` restricts
/// the mode dimension (`--fsync per|group`), default both.
pub fn run_with(config: &HarnessConfig, threads: &[usize]) -> Result<ExperimentReport> {
    let db = generate(&config.dataset());
    let modes: &[FsyncMode] = match config.fsync {
        Some(FsyncMode::PerCommit) => &[FsyncMode::PerCommit],
        Some(FsyncMode::Group) => &[FsyncMode::Group],
        None => &[FsyncMode::PerCommit, FsyncMode::Group],
    };
    // Names are fixed-width 100 bytes (the paper's Station.Name), so the
    // patch below fits every object.
    let patch = RootPatch {
        new_name: "W".repeat(100),
    };
    let mut table = Table::new(vec![
        "MODEL",
        "FSYNC",
        "WRITERS",
        "commits",
        "log flushes",
        "commits/flush",
        "log pages",
        "commits/s",
        "recovered pages",
    ]);
    let mut lost_updates: Vec<String> = Vec::new();
    let mut over_flushed: Vec<String> = Vec::new();

    for kind in ModelKind::all() {
        for &mode in modes {
            for &n in threads {
                let n = n.max(1);
                let mut store = make_shared_store(
                    kind,
                    StoreConfig::with_buffer_pages(config.buffer_pages)
                        .policy(config.policy)
                        .wal(WalConfig::enabled(mode)),
                    n,
                );
                let refs = store.load(&db)?;
                // Checkpoint away the load phase: the timed window measures
                // update commits only, from a clean log.
                store.shared_flush()?;
                store.reset_stats();

                let started = Instant::now();
                thread::scope(|s| {
                    for w in 0..n {
                        let part: Vec<_> = refs.iter().copied().skip(w).step_by(n).collect();
                        let (store, patch) = (&store, &patch);
                        s.spawn(move || {
                            for r in part {
                                store.shared_update_roots(&[r], patch).expect("update");
                            }
                        });
                    }
                });
                let secs = started.elapsed().as_secs_f64();

                let snap = store.snapshot();
                if snap.log_write_calls > snap.commits {
                    over_flushed.push(format!("{kind}/{}/{n}", mode.name()));
                }
                // The durability anchor: kill the store at the last op
                // boundary, recover from the log alone, and verify no
                // committed update was lost.
                store.simulate_crash();
                let recovered = store.recover()?;
                let mut names = Vec::new();
                store.scan_all(&mut |t| names.push(Station::from_tuple(t).unwrap().name))?;
                if !names.iter().all(|name| name == &patch.new_name) {
                    lost_updates.push(format!("{kind}/{}/{n}", mode.name()));
                }
                let amortization = snap.commits as f64 / snap.log_write_calls.max(1) as f64;
                table.push_row(vec![
                    kind.paper_name().to_string(),
                    mode.name().to_string(),
                    n.to_string(),
                    snap.commits.to_string(),
                    snap.log_write_calls.to_string(),
                    format!("{amortization:.2}"),
                    snap.log_pages_written.to_string(),
                    fmt_pages(snap.commits as f64 / secs.max(1e-9)),
                    recovered.to_string(),
                ]);
            }
        }
    }

    let mut notes = vec![
        format!(
            "{} objects, {}-page shared buffer over (writers) shards; each cell \
             reloads the store with the WAL on, checkpoints away the load, then \
             commits one query-3a root patch per object from that many writer \
             threads over disjoint partitions",
            config.n_objects, config.buffer_pages
        ),
        "commits is deterministic (one per object); per-commit mode flushes \
         the log once per commit, group commit lets concurrent writers ride a \
         leader's flush — commits/flush is the amortization factor and grows \
         with writer count (scheduling-dependent, 1.0 at one writer); \
         commits/s is wall-clock and hardware-dependent"
            .to_string(),
        "after the timed phase the store is crashed (cache and unflushed WAL \
         state dropped, no data flush) and recovered from the durable log; \
         recovered pages counts the redo scan's replayed page images"
            .to_string(),
        "rerun with --fsync per|group to restrict the mode dimension and \
         --threads N to pin the writer count"
            .to_string(),
    ];
    notes.push(if lost_updates.is_empty() {
        "crash-recovery anchor held in every cell: a cold scan after \
         crash+recover saw every committed patch — no lost writes"
            .to_string()
    } else {
        format!(
            "WARNING: committed updates lost after crash+recover at {} — the \
             log is not durable",
            lost_updates.join(", ")
        )
    });
    notes.push(if over_flushed.is_empty() {
        "log flushes never exceeded commits in any cell (group commit only \
         amortizes, never inflates)"
            .to_string()
    } else {
        format!(
            "WARNING: more log flushes than commits at {} — the group-commit \
             path regressed",
            over_flushed.join(", ")
        )
    });

    Ok(ExperimentReport {
        id: "ext-durability".into(),
        title: "Extension — WAL commit durability: fsync mode × writer count".into(),
        table,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_models_modes_and_writer_counts() {
        let report = run_with(&HarnessConfig::fast(), &[1, 2]).unwrap();
        let models = ModelKind::all().len();
        assert_eq!(report.table.rows.len(), models * 2 * 2, "model × mode × n");
        assert!(
            !report.notes.iter().any(|n| n.contains("WARNING")),
            "anchors failed: {:?}",
            report.notes
        );
        for row in &report.table.rows {
            // One commit per object, in every cell.
            assert_eq!(row[3], "300", "commits: {row:?}");
            // The crash+recover anchor replayed the committed images.
            assert_ne!(row[8], "0", "nothing recovered: {row:?}");
        }
        // Per-commit mode pays exactly one flush per commit.
        for row in report.table.rows.iter().filter(|r| r[1] == "per") {
            assert_eq!(row[4], "300", "per-commit flushes: {row:?}");
            assert_eq!(row[5], "1.00", "per-commit amortization: {row:?}");
        }
    }

    #[test]
    fn fsync_restriction_halves_the_sweep() {
        let config = HarnessConfig {
            fsync: Some(FsyncMode::Group),
            ..HarnessConfig::fast()
        };
        let report = run_with(&config, &[1]).unwrap();
        assert_eq!(report.table.rows.len(), ModelKind::all().len());
        assert!(report.table.rows.iter().all(|r| r[1] == "group"));
    }
}
