//! Extension experiment: packed vs sub-tuple-aligned data pages.
//!
//! DASDBS kept addressable sub-tuples whole on a page, which costs
//! *alignment waste*: the paper's average station occupies `p = 4` allocated
//! pages of which only ≈3 hold data, and DSM reads the waste while
//! DASDBS-DSM's header-guided reads dodge it (the 4.00-vs-3.00 query-1 gap
//! between the unprimed and primed rows of Table 3). Our engine defaults to
//! packed pages (the primed behaviour); this ablation turns the DASDBS
//! layout on and measures what the waste costs each model.

use crate::report::{fmt_pages, ExperimentReport, Table};
use crate::runner::HarnessConfig;
use crate::Result;
use starfish_core::{make_store, ModelKind, StoreConfig};
use starfish_cost::QueryId;
use starfish_workload::{generate, QueryOutcome, QueryRunner};

/// Models affected by direct-layout alignment.
pub const MODELS: [ModelKind; 2] = [ModelKind::Dsm, ModelKind::DasdbsDsm];

/// Queries measured.
pub const QUERIES: [QueryId; 3] = [QueryId::Q1a, QueryId::Q1c, QueryId::Q2b];

/// Runs the ablation.
pub fn run(config: &HarnessConfig) -> Result<ExperimentReport> {
    let db = generate(&config.dataset());
    let mut table = Table::new(vec![
        "MODEL", "layout", "DB pages", "p (avg)", "1a", "1c", "2b",
    ]);
    let mut q1a = [[0.0f64; 2]; 2]; // [model][layout]
    for (mi, &kind) in MODELS.iter().enumerate() {
        for (li, aligned) in [(0, false), (1, true)] {
            let store_config = if aligned {
                StoreConfig::with_buffer_pages(config.buffer_pages).aligned()
            } else {
                StoreConfig::with_buffer_pages(config.buffer_pages)
            };
            let mut store = make_store(kind, store_config);
            let refs = store.load(&db)?;
            let runner = QueryRunner::new(refs, config.query_seed);
            let mut cells = Vec::new();
            for q in QUERIES {
                let QueryOutcome::Measured(m) = runner.run(store.as_mut(), q)? else {
                    unreachable!("direct models support all queries");
                };
                cells.push(m.pages_per_unit());
            }
            q1a[mi][li] = cells[0];
            let p = store.relation_info()[0].p.unwrap_or(1.0);
            table.push_row(vec![
                kind.paper_name().to_string(),
                if aligned {
                    "aligned".into()
                } else {
                    "packed".to_string()
                },
                store.database_pages().to_string(),
                format!("{p:.2}"),
                fmt_pages(cells[0]),
                fmt_pages(cells[1]),
                fmt_pages(cells[2]),
            ]);
        }
    }

    let notes = vec![
        "packed = data cut every 2012 bytes (our default, the paper's primed \
         rows); aligned = sub-tuples kept whole per page (DASDBS's layout, the \
         unprimed rows)"
            .into(),
        format!(
            "DSM query 1a: {:.2} packed → {:.2} aligned — the waste is read; \
             DASDBS-DSM: {:.2} → {:.2} — full retrievals still touch every \
             data-carrying page, but its *projected* reads (queries 2/3) dodge \
             the waste entirely",
            q1a[0][0], q1a[0][1], q1a[1][0], q1a[1][1]
        ),
        "the paper's Table 2 'S_tuple = 6078 B / p = 4' for an object whose data \
         is ~3 pages is exactly this effect plus a fully-counted header page"
            .into(),
    ];

    Ok(ExperimentReport {
        id: "ext-alignment".into(),
        title: "Extension — packed vs sub-tuple-aligned direct layout".into(),
        table,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_costs_pages_and_never_helps_reads() {
        let report = run(&HarnessConfig::fast()).unwrap();
        assert_eq!(report.table.rows.len(), 4);
        // DB pages: aligned > packed for both models.
        for mi in 0..2 {
            let packed: f64 = report.table.rows[mi * 2][2].parse().unwrap();
            let aligned: f64 = report.table.rows[mi * 2 + 1][2].parse().unwrap();
            assert!(aligned > packed, "row {mi}: {aligned} vs {packed}");
            // And the measured p grows.
            let pp: f64 = report.table.rows[mi * 2][3].parse().unwrap();
            let pa: f64 = report.table.rows[mi * 2 + 1][3].parse().unwrap();
            assert!(pa > pp);
        }
    }
}
