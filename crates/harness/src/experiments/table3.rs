//! Table 3 — analytical estimates of the number of page I/Os.

use crate::paper::{compare, TABLE3_ANCHORS};
use crate::report::{fmt_pages, ExperimentReport, Table};
use crate::runner::HarnessConfig;
use starfish_cost::{estimate, table3, EstimatorInputs, ModelVariant, QueryId};

/// Regenerates Table 3 from the analytical cost model (Equations 1–8).
pub fn run(config: &HarnessConfig) -> ExperimentReport {
    let inputs = EstimatorInputs::new(config.dataset().profile());
    let rows = table3(&inputs);
    let mut table = Table::new(vec!["MODEL", "1a", "1b", "1c", "2a", "2b", "3a", "3b"]);
    for row in &rows {
        let mut cells = vec![row.variant.label().to_string()];
        for cell in &row.cells {
            cells.push(match cell {
                Some(c) => fmt_pages(c.total()),
                None => "-".into(),
            });
        }
        table.push_row(cells);
    }

    let mut notes = vec![
        "best-case estimates (large cache), pages per object (query 1) or per loop \
         (queries 2/3), exactly as in the paper"
            .into(),
    ];
    for anchor in TABLE3_ANCHORS {
        if let Some(ours) = lookup(anchor.what, &inputs) {
            notes.push(compare(anchor, ours));
        }
    }

    ExperimentReport {
        id: "table3".into(),
        title: "Analytical estimates of the number of page I/Os".into(),
        table,
        notes,
    }
}

fn lookup(what: &str, inputs: &EstimatorInputs) -> Option<f64> {
    let (model, query) = what.rsplit_once(' ')?;
    let variant = ModelVariant::all()
        .into_iter()
        .find(|v| v.label() == model)?;
    let q = QueryId::all()
        .into_iter()
        .find(|q| format!("q{q}") == query)?;
    estimate(variant, q, inputs).map(|c| c.total())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_eight_rows() {
        let report = run(&HarnessConfig::default());
        assert_eq!(report.table.rows.len(), 8);
        // NSM q1a is "-".
        let nsm = report.table.rows.iter().find(|r| r[0] == "NSM").unwrap();
        assert_eq!(nsm[1], "-");
        // All anchors resolve (notes beyond the header note).
        assert!(report.notes.len() > TABLE3_ANCHORS.len() / 2);
    }

    #[test]
    fn anchor_lookup_resolves_labels() {
        let inputs = EstimatorInputs::new(HarnessConfig::default().dataset().profile());
        assert!((lookup("DSM q1a", &inputs).unwrap() - 4.0).abs() < 1e-9);
        assert!(lookup("NSM q1a", &inputs).is_none());
        assert!(lookup("DASDBS-NSM' q1b", &inputs).is_some());
    }
}
