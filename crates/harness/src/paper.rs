//! Paper anchor values.
//!
//! The source text we reproduce from is an OCR of the ICDE 1993 paper; only
//! part of each numeric table survived. This module records the cells we
//! could recover (cross-checked against the prose), so experiment reports
//! can print "paper vs ours" for exactly those.

/// One recoverable paper value.
#[derive(Clone, Copy, Debug)]
pub struct Anchor {
    /// What the value is.
    pub what: &'static str,
    /// The paper's number.
    pub paper: f64,
}

/// Recoverable cells of Table 2 (average DASDBS sizes).
pub const TABLE2_ANCHORS: &[Anchor] = &[
    Anchor {
        what: "DSM-Station S_tuple [B]",
        paper: 6078.0,
    },
    Anchor {
        what: "DSM-Station p",
        paper: 4.0,
    },
    Anchor {
        what: "DSM-Station m",
        paper: 6000.0,
    },
    Anchor {
        what: "NSM-Station k",
        paper: 13.0,
    },
    Anchor {
        what: "NSM-Station m",
        paper: 116.0,
    },
    Anchor {
        what: "NSM-Connection S_tuple [B]",
        paper: 170.0,
    },
    Anchor {
        what: "NSM-Connection k",
        paper: 11.0,
    },
    Anchor {
        what: "NSM-Connection m",
        paper: 559.0,
    },
    Anchor {
        what: "NSM-Sightseeing S_tuple [B]",
        paper: 456.0,
    },
    Anchor {
        what: "NSM-Sightseeing k",
        paper: 4.0,
    },
    Anchor {
        what: "NSM-Sightseeing m",
        paper: 2813.0,
    },
];

/// Recoverable cells of Table 3 (analytical estimates, pages per
/// object/loop).
pub const TABLE3_ANCHORS: &[Anchor] = &[
    Anchor {
        what: "DSM q1a",
        paper: 4.0,
    },
    Anchor {
        what: "DSM q1b",
        paper: 6000.0,
    },
    Anchor {
        what: "DSM q1c",
        paper: 4.0,
    },
    Anchor {
        what: "DSM q2a",
        paper: 86.9,
    },
    Anchor {
        what: "DSM q2b",
        paper: 19.7,
    },
    Anchor {
        what: "DSM q3a",
        paper: 154.0,
    },
    Anchor {
        what: "DSM q3b",
        paper: 39.1,
    },
    Anchor {
        what: "DSM' q1a",
        paper: 3.0,
    },
    Anchor {
        what: "DSM' q1b",
        paper: 4500.0,
    },
    Anchor {
        what: "DSM' q2a",
        paper: 65.2,
    },
    Anchor {
        what: "NSM q2b",
        paper: 2.25,
    },
    Anchor {
        what: "NSM q3a",
        paper: 692.0,
    },
    Anchor {
        what: "NSM q3b",
        paper: 2.64,
    },
    Anchor {
        what: "NSM+index q1a",
        paper: 5.96,
    },
    Anchor {
        what: "NSM+index q1b",
        paper: 121.0,
    },
    Anchor {
        what: "NSM+index q1c",
        paper: 2.47,
    },
    Anchor {
        what: "NSM+index q2a",
        paper: 23.2,
    },
    Anchor {
        what: "DASDBS-NSM' q1a",
        paper: 5.0,
    },
    Anchor {
        what: "DASDBS-NSM' q1b",
        paper: 120.0,
    },
    Anchor {
        what: "DASDBS-NSM q1c",
        paper: 2.55,
    },
    Anchor {
        what: "DASDBS-NSM q2a",
        paper: 21.8,
    },
];

/// Recoverable cells of Table 5 (measured I/O calls).
pub const TABLE5_ANCHORS: &[Anchor] = &[
    Anchor {
        what: "DASDBS-DSM q1a calls",
        paper: 3.0,
    },
    Anchor {
        what: "DASDBS-DSM q2a calls",
        paper: 34.0,
    },
    Anchor {
        what: "NSM q1b calls",
        paper: 3820.0,
    },
    Anchor {
        what: "NSM q2a calls",
        paper: 700.0,
    },
    Anchor {
        what: "NSM q2b calls/loop",
        paper: 2.33,
    },
    Anchor {
        what: "DASDBS-NSM q1a calls",
        paper: 9.0,
    },
    Anchor {
        what: "DASDBS-NSM q1b calls",
        paper: 144.0,
    },
    Anchor {
        what: "DASDBS-NSM q2a calls",
        paper: 18.0,
    },
    Anchor {
        what: "DASDBS-NSM q2b calls/loop",
        paper: 2.05,
    },
];

/// Recoverable cells of Table 6 (buffer fixes).
pub const TABLE6_ANCHORS: &[Anchor] = &[
    Anchor {
        what: "NSM q2b fixes/loop",
        paper: 1240.0,
    },
    Anchor {
        what: "NSM q3b fixes/loop",
        paper: 1260.0,
    },
    Anchor {
        what: "DASDBS-NSM q2b fixes/loop",
        paper: 21.6,
    },
    Anchor {
        what: "DASDBS-DSM q2b fixes/loop",
        paper: 39.9,
    },
];

/// §5.4 narrative values for Figure 6 (pages per loop at 1500 objects).
pub const FIG6_ANCHORS: &[Anchor] = &[
    Anchor {
        what: "DASDBS-NSM q2b, no overflow",
        paper: 2.0,
    },
    Anchor {
        what: "DASDBS-DSM q2b, overflow",
        paper: 8.5,
    },
    Anchor {
        what: "DSM q2b, overflow",
        paper: 16.5,
    },
    Anchor {
        what: "DSM q2b worst case (3 pages/object)",
        paper: 65.2,
    },
];

/// §5.1/§5.5 dataset statistics.
pub const DATASET_ANCHORS: &[Anchor] = &[
    Anchor {
        what: "avg platforms/station (default)",
        paper: 1.59,
    },
    Anchor {
        what: "avg connections/station (default)",
        paper: 4.04,
    },
    Anchor {
        what: "avg sightseeings/station (default)",
        paper: 7.64,
    },
    Anchor {
        what: "avg platforms/station (skew)",
        paper: 1.57,
    },
    Anchor {
        what: "avg connections/station (skew)",
        paper: 3.99,
    },
    Anchor {
        what: "max platforms/station (skew)",
        paper: 6.0,
    },
    Anchor {
        what: "max connections/station (skew)",
        paper: 34.0,
    },
];

/// Formats an anchor comparison line.
pub fn compare(anchor: &Anchor, ours: f64) -> String {
    let rel = if anchor.paper.abs() > 1e-12 {
        format!(" ({:+.0}%)", 100.0 * (ours - anchor.paper) / anchor.paper)
    } else {
        String::new()
    };
    format!(
        "{}: paper {} vs ours {:.2}{}",
        anchor.what, anchor.paper, ours, rel
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_are_nonempty_and_positive() {
        for set in [
            TABLE2_ANCHORS,
            TABLE3_ANCHORS,
            TABLE5_ANCHORS,
            TABLE6_ANCHORS,
            FIG6_ANCHORS,
            DATASET_ANCHORS,
        ] {
            assert!(!set.is_empty());
            for a in set {
                assert!(a.paper > 0.0, "{}", a.what);
            }
        }
    }

    #[test]
    fn compare_formats() {
        let a = Anchor {
            what: "x",
            paper: 10.0,
        };
        let s = compare(&a, 11.0);
        assert!(s.contains("paper 10"));
        assert!(s.contains("11.00"));
        assert!(s.contains("+10%"));
    }
}
