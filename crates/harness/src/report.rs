//! Plain-text table rendering for experiment reports.

use serde::Serialize;

/// A rendered table: headers plus string rows.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Builds a table from headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn push_row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Renders as an aligned plain-text table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Left-align the first column, right-align the rest.
                let pad = widths[i].saturating_sub(c.chars().count());
                if i == 0 {
                    line.push_str(c);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(c);
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.headers.join(" | "));
        out.push_str(" |\n|");
        for i in 0..self.headers.len() {
            out.push_str(if i == 0 { "---|" } else { "---:|" });
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }
}

/// A complete experiment report.
#[derive(Clone, Debug, Serialize)]
pub struct ExperimentReport {
    /// Short id (`"table4"`, `"fig6"`, …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// The regenerated table.
    pub table: Table,
    /// Comparison notes against the paper (anchors, deviations,
    /// explanations).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Renders the full report as plain text.
    pub fn render(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.title);
        out.push_str(&self.table.render());
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str("  * ");
                out.push_str(n);
                out.push('\n');
            }
        }
        out
    }

    /// Renders the full report as markdown.
    pub fn render_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        out.push_str(&self.table.render_markdown());
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str("* ");
                out.push_str(n);
                out.push('\n');
            }
        }
        out
    }
}

impl ExperimentReport {
    /// Renders the report as a self-contained JSON object. The structure is
    /// emitted by hand (it is one flat object); string escaping is the
    /// local [`json_str`], and the `serde` derives remain available for
    /// downstream serializers.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"id\":{},", json_str(&self.id)));
        out.push_str(&format!("\"title\":{},", json_str(&self.title)));
        out.push_str("\"headers\":[");
        out.push_str(
            &self
                .table
                .headers
                .iter()
                .map(|h| json_str(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str("],\"rows\":[");
        out.push_str(
            &self
                .table
                .rows
                .iter()
                .map(|row| {
                    format!(
                        "[{}]",
                        row.iter()
                            .map(|c| json_str(c))
                            .collect::<Vec<_>>()
                            .join(",")
                    )
                })
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str("],\"notes\":[");
        out.push_str(
            &self
                .notes
                .iter()
                .map(|n| json_str(n))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str("]}");
        out
    }
}

/// Escapes a string as a quoted JSON string literal (RFC 8259 §7): `"` and
/// `\` get a backslash, the common control characters get their short
/// escapes, and every other control byte below 0x20 becomes a lowercase
/// `\u00xx` sequence. Previously delegated to the vendored stub's
/// `escape_str`; the harness owns its escaping so report output does not
/// depend on a stub's implementation details.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float the way the paper's tables do: up to three significant
/// decimals for small values, no decimals for large ones.
pub fn fmt_pages(v: f64) -> String {
    if !v.is_finite() {
        "-".into()
    } else if v == 0.0 {
        "0".into()
    } else if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["MODEL", "Q1", "Q2"]);
        t.push_row(vec!["DSM", "4.00", "86.9"]);
        t.push_row(vec!["DASDBS-NSM", "5.00", "21.8"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("MODEL"));
        assert!(lines[2].starts_with("DSM"));
        // Right-aligned numeric columns line up.
        let c1 = lines[2].rfind("86.9").unwrap();
        let c2 = lines[3].rfind("21.8").unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["A", "B", "C"]);
        t.push_row(vec!["x"]);
        assert_eq!(t.rows[0].len(), 3);
    }

    #[test]
    fn markdown_renders() {
        let mut t = Table::new(vec!["A", "B"]);
        t.push_row(vec!["1", "2"]);
        let md = t.render_markdown();
        assert!(md.contains("| A | B |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn json_escapes_and_structures() {
        let mut t = Table::new(vec!["A\"x", "B"]);
        t.push_row(vec!["line\nbreak", "tab\there"]);
        let r = ExperimentReport {
            id: "t".into(),
            title: "a \\ title".into(),
            table: t,
            notes: vec!["n1".into()],
        };
        let j = r.render_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"A\\\"x\""));
        assert!(j.contains("line\\nbreak"));
        assert!(j.contains("tab\\there"));
        assert!(j.contains("a \\\\ title"));
        assert!(j.contains("\"notes\":[\"n1\"]"));
        // Balanced brackets as a cheap well-formedness check.
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn json_str_escapes_every_special_class() {
        assert_eq!(json_str("plain"), r#""plain""#);
        assert_eq!(json_str(r#"a"b"#), r#""a\"b""#);
        assert_eq!(json_str(r"back\slash"), r#""back\\slash""#);
        assert_eq!(json_str("n\nl r\r t\t"), r#""n\nl r\r t\t""#);
        // Other control bytes become lowercase \u00xx.
        assert_eq!(json_str("\u{1}\u{1f}"), "\"\\u0001\\u001f\"");
        // Non-ASCII passes through unescaped (JSON strings are UTF-8).
        assert_eq!(json_str("héllo"), r#""héllo""#);
        // Identical to the vendored stub's escaper on its own test vector,
        // so swapping the implementation changed no report byte.
        assert_eq!(json_str("a\"b"), serde_json::escape_str("a\"b"));
    }

    #[test]
    fn fmt_pages_scales() {
        assert_eq!(fmt_pages(4.0), "4.00");
        assert_eq!(fmt_pages(86.93), "86.93");
        assert_eq!(fmt_pages(154.23), "154.2");
        assert_eq!(fmt_pages(6000.2), "6000");
        assert_eq!(fmt_pages(0.0), "0");
        assert_eq!(fmt_pages(f64::NAN), "-");
    }
}
